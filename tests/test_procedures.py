"""Tests for procedures and call inlining (the interprocedural extension)."""

import pytest

from repro.api import InitialVerdict, Pipeline
from repro.lang import (
    ParseError,
    parse_module,
    parse_program,
    run_program,
)

CLAMP = """
proc clamp(lo, hi, v) {
  var r;
  r = v;
  if (r < lo) { r = lo; }
  if (r > hi) { r = hi; }
  return r;
}

program main(x) {
  var y;
  y = call clamp(0, 10, x);
  assert(y >= 0 && y <= 10);
}
"""


class TestParsing:
    def test_module_structure(self):
        module = parse_module(CLAMP)
        assert len(module.procs) == 1
        proc = module.procs[0]
        assert proc.name == "clamp"
        assert proc.params == ("lo", "hi", "v")
        assert proc.locals == ("r",)

    def test_inlined_program_is_core_language(self):
        from repro.lang import CallStmt

        program = parse_program(CLAMP)
        assert not any(
            isinstance(s, CallStmt) for s in program.body.walk()
        )
        # the callee's local got a fresh name among the locals
        assert any("r$clamp" in name for name in program.locals)

    def test_missing_return_rejected(self):
        with pytest.raises(ParseError, match="return"):
            parse_program("""
            proc nope(x) { var y; y = x; }
            program main(a) { var b; b = call nope(a); assert(b == a); }
            """)

    def test_undefined_procedure_rejected(self):
        with pytest.raises(ParseError, match="undefined procedure"):
            parse_program("""
            program main(a) { var b; b = call ghost(a); assert(b == a); }
            """)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ParseError, match="expects 3 arguments"):
            parse_program("""
            proc f(a, b, c) { return a; }
            program main(x) { var y; y = call f(x); assert(y == x); }
            """)

    def test_recursion_rejected(self):
        with pytest.raises(ParseError, match="recursive"):
            parse_program("""
            proc f(x) { var y; y = call f(x); return y; }
            program main(a) { var b; b = call f(a); assert(b == a); }
            """)

    def test_mutual_recursion_rejected(self):
        with pytest.raises(ParseError, match="recursive"):
            parse_program("""
            proc f(x) { var y; y = call g(x); return y; }
            proc g(x) { var y; y = call f(x); return y; }
            program main(a) { var b; b = call f(a); assert(b == a); }
            """)


class TestSemantics:
    def test_clamp_execution(self):
        program = parse_program(CLAMP)
        for x, expected in [(-5, 0), (3, 3), (42, 10)]:
            result = run_program(program, [x])
            assert result.ok
            assert result.env["y"] == expected

    def test_nested_calls(self):
        source = """
        proc double(v) { var r; r = v + v; return r; }
        proc quad(v) { var r; r = call double(v); r = call double(r);
                       return r; }
        program main(x) {
          var y;
          y = call quad(x);
          assert(y == 4 * x);
        }
        """
        program = parse_program(source)
        for x in (-3, 0, 7):
            assert run_program(program, [x]).ok

    def test_two_calls_get_distinct_locals(self):
        source = """
        proc inc(v) { var r; r = v + 1; return r; }
        program main(x) {
          var a, b;
          a = call inc(x);
          b = call inc(a);
          assert(b == x + 2);
        }
        """
        program = parse_program(source)
        assert run_program(program, [5]).ok
        inc_locals = [n for n in program.locals if "$inc" in n]
        assert len(set(inc_locals)) == len(inc_locals) >= 4

    def test_loop_in_procedure_relabeled(self):
        source = """
        proc sum_to(n) {
          var i, s;
          while (i < n) { i = i + 1; s = s + i; }
          return s;
        }
        program main(unsigned k) {
          var a, b;
          a = call sum_to(k);
          b = call sum_to(k);
          assert(a == b);
        }
        """
        program = parse_program(source)
        labels = [l.label for l in program.loops()]
        assert len(labels) == len(set(labels)) == 2
        assert run_program(program, [4]).ok


class TestAnalysisIntegration:
    def test_analysis_sees_through_calls(self):
        outcome = Pipeline().analyze(CLAMP)
        # clamp's postcondition is fully visible after inlining:
        # loop-free, so the analysis is exact and verifies outright
        assert outcome.verdict is InitialVerdict.VERIFIED

    def test_procedure_with_loop_analyzed(self):
        source = """
        proc count(n) {
          var i;
          while (i < n) { i = i + 1; }
          return i;
        }
        program main(unsigned k) {
          var c;
          c = call count(k);
          assert(c >= 0);
        }
        """
        outcome = Pipeline().analyze(source)
        assert outcome.verdict is InitialVerdict.VERIFIED
