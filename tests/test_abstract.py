"""Tests for the interval and zone abstract interpreters and auto-annotation.

Soundness is the non-negotiable property: every inferred @post fact must
hold on every concrete execution — checked by running the interpreter.
"""

import random

import pytest

from repro.abstract import (
    Interval,
    Zone,
    annotate_program,
    infer_loop_posts,
)
from repro.lang import eval_pred, parse_program, run_program


class TestIntervalLattice:
    def test_join(self):
        a = Interval(0, 5)
        b = Interval(3, None)
        assert a.join(b) == Interval(0, None)

    def test_meet(self):
        assert Interval(0, 10).meet(Interval(5, 20)) == Interval(5, 10)

    def test_bottom(self):
        assert Interval(3, 2).is_bottom
        assert Interval(0, 10).meet(Interval(11, 20)).is_bottom

    def test_widen_unstable_bounds(self):
        assert Interval(0, 5).widen(Interval(0, 6)) == Interval(0, None)
        assert Interval(0, 5).widen(Interval(-1, 5)) == Interval(None, 5)
        assert Interval(0, 5).widen(Interval(0, 5)) == Interval(0, 5)

    def test_arithmetic(self):
        assert Interval(1, 2).add(Interval(10, 20)) == Interval(11, 22)
        assert Interval(1, 2).sub(Interval(0, 1)) == Interval(0, 2)
        assert Interval(-2, 3).mul(Interval(4, 5)) == Interval(-10, 15)

    def test_mul_preserves_nonnegativity_when_unbounded(self):
        result = Interval(0, None).mul(Interval(0, None))
        assert result.lo == 0 and result.hi is None


class TestZone:
    def test_assign_constant(self):
        zone = Zone.top(("x", "y"))
        from repro.lang.ast import Const

        zone.assign("x", Const(5))
        facts = [str(f) for f in zone.facts()]
        assert "x <= 5" in facts and "x >= 5" in facts

    def test_assign_shift(self):
        zone = Zone.top(("x",))
        from repro.lang.ast import BinOp, Const, Name

        zone.assign("x", Const(3))
        zone.assign("x", BinOp("+", Name("x"), Const(2)))
        facts = [str(f) for f in zone.facts()]
        assert "x <= 5" in facts and "x >= 5" in facts

    def test_difference_tracking(self):
        zone = Zone.top(("x", "y"))
        from repro.lang.ast import BinOp, Const, Name, Cmp

        zone.assume(Cmp("<=", Name("x"), Name("y")))
        zone.assign("x", BinOp("+", Name("x"), Const(1)))
        # now x <= y + 1
        facts = [str(f) for f in zone.facts()]
        assert any("x <= (y + 1)" in f for f in facts)

    def test_infeasible_detected(self):
        zone = Zone.top(("x",))
        from repro.lang.ast import Cmp, Const, Name

        zone.assume(Cmp(">=", Name("x"), Const(5)))
        zone.assume(Cmp("<=", Name("x"), Const(4)))
        zone.close()
        assert zone.bottom


SOUNDNESS_PROGRAMS = [
    '''
    program sum(unsigned n) {
      var i, j;
      while (i <= n) { i = i + 1; j = j + i; }
      assert(j >= 0);
    }
    ''',
    '''
    program countdown(unsigned n) {
      var i;
      i = n;
      while (i > 0) { i = i - 1; }
      assert(i == 0);
    }
    ''',
    '''
    program nested(unsigned n) {
      var i, j, t;
      while (i < n) {
        j = 0;
        while (j < i) { j = j + 1; t = t + 1; }
        i = i + 1;
      }
      assert(t >= 0);
    }
    ''',
    '''
    program branchy(a, unsigned n) {
      var i, s;
      while (i < n) {
        if (a > 0) { s = s + 1; } else { s = s + 2; }
        i = i + 1;
      }
      assert(s >= 0);
    }
    ''',
]


class TestSoundness:
    @pytest.mark.parametrize("src", SOUNDNESS_PROGRAMS)
    @pytest.mark.parametrize("domains", [("interval",), ("zone",),
                                         ("octagon",),
                                         ("interval", "zone", "octagon")])
    def test_posts_hold_on_executions(self, src, domains):
        program = parse_program(src)
        annotated = annotate_program(program, domains)
        rng = random.Random(11)
        for trial in range(40):
            inputs = {}
            for p in program.params:
                low = 0 if p.unsigned else -6
                inputs[p.name] = rng.randint(low, 6)
            result = run_program(annotated, inputs)
            for loop in annotated.loops():
                if loop.post is None:
                    continue
                for env in result.loop_exit_envs.get(loop.label, []):
                    assert eval_pred(loop.post, env), (
                        f"unsound post {loop.post} at exit env {env} "
                        f"inputs {inputs} domains {domains}"
                    )


class TestAnnotationQuality:
    def test_zone_finds_relational_exit_fact(self):
        """The paper's Section 1.1 fact i > n must come out of zones."""
        program = parse_program('''
        program p(unsigned n) {
          var i, j;
          while (i <= n) { i = i + 1; j = j + i; }
          assert(j >= 0);
        }
        ''')
        posts = infer_loop_posts(program, ("zone",))
        rendered = [str(f) for f in posts[1]]
        assert any("n <= (i + -1)" in f or "n <= (i - 1)" in f
                   for f in rendered), rendered

    def test_interval_finds_bounds(self):
        program = parse_program('''
        program p(unsigned n) {
          var i, j;
          while (i <= n) { i = i + 1; j = j + i; }
          assert(j >= 0);
        }
        ''')
        posts = infer_loop_posts(program, ("interval",))
        rendered = [str(f) for f in posts[1]]
        assert "j >= 0" in rendered
        assert "i >= 1" in rendered

    def test_manual_annotation_preserved(self):
        program = parse_program('''
        program p(unsigned n) {
          var i;
          while (i < n) { i = i + 1; } @post(i >= 0)
          assert(i >= 0);
        }
        ''')
        annotated = annotate_program(program)
        assert str(annotated.loops()[0].post) == "i >= 0"

    def test_unknown_domain_rejected(self):
        program = parse_program(
            "program p(x) { assert(x == x); }"
        )
        with pytest.raises(ValueError):
            infer_loop_posts(program, ("polyhedra",))

    def test_havoc_handled(self):
        program = parse_program('''
        program p(unsigned n) {
          var i, x;
          while (i < n) {
            havoc x @assume(x >= 0 && x <= 9);
            i = i + 1;
          }
          assert(i >= 0);
        }
        ''')
        annotated = annotate_program(program, ("interval",))
        post = annotated.loops()[0].post
        assert post is not None
        # x's assumed bounds must survive into the post (or x be absent)
        rng = random.Random(3)
        for _ in range(20):
            result = run_program(annotated, {"n": rng.randint(0, 6)})
            for env in result.loop_exit_envs.get(1, []):
                assert eval_pred(post, env)
