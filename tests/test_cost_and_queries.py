"""Unit tests for the cost models (Definitions 2/9) and query rendering
details not covered by the engine-level tests."""

import pytest

from repro.analysis import analyze_program
from repro.diagnosis import (
    QueryRenderer,
    decompose_invariant,
    decompose_witness,
    formula_cost,
    pi_p,
    pi_w,
    uniform,
)
from repro.diagnosis.cost import total_vars
from repro.lang import parse_program
from repro.logic import (
    LinTerm,
    Var,
    VarKind,
    conj,
    disj,
    dvd,
    ge,
    le,
    parse_formula,
)

ALPHA = Var("a", VarKind.ABSTRACTION)
NU = Var("v", VarKind.INPUT)
INV = parse_formula("x >= 0 && y >= 0")
PHI = parse_formula("x >= 0 || z <= 1")


class TestCostModels:
    def test_total_vars_union(self):
        assert total_vars(INV, PHI) == 3

    def test_pi_p_charges_inputs(self):
        cost = pi_p(INV, PHI)
        assert cost(ALPHA) == 1
        assert cost(NU) == 3

    def test_pi_w_charges_abstractions(self):
        cost = pi_w(INV, PHI)
        assert cost(NU) == 1
        assert cost(ALPHA) == 3

    def test_uniform(self):
        cost = uniform(INV, PHI)
        assert cost(ALPHA) == cost(NU) == 1

    def test_formula_cost_sums_distinct_vars(self):
        cost = pi_p(INV, PHI)
        gamma = conj(ge(ALPHA, 0), le(LinTerm.var(ALPHA), LinTerm.var(NU)))
        # alpha counted once (1) + nu once (3)
        assert formula_cost(gamma, cost) == 4

    def test_expensive_tier_never_below_one(self):
        from repro.logic import TRUE

        cost = pi_p(TRUE, TRUE)
        assert cost(NU) >= 1


class TestDecomposition:
    def test_invariant_cnf_with_shared_literal(self):
        gamma = parse_formula("(x >= 0 || y >= 0) && (x >= 0 || z >= 0)")
        clauses = decompose_invariant(gamma)
        assert len(clauses) == 2

    def test_witness_dnf_cube(self):
        upsilon = parse_formula("(x < 0 && y < 0) || z < 0")
        clauses = decompose_witness(upsilon)
        assert len(clauses) == 2

    def test_true_invariant_has_no_clauses(self):
        from repro.logic import TRUE

        assert decompose_invariant(TRUE) == []

    def test_false_witness_has_no_clauses(self):
        from repro.logic import FALSE

        assert decompose_witness(FALSE) == []


@pytest.fixture(scope="module")
def renderer():
    program = parse_program("""
    program demo(unsigned n, m) {
      var i, j, p;
      while (i < n) { i = i + 1; j = j + m; } @post(i >= 0)
      p = m * m;
      havoc j @assume(j >= -1);
      assert(p + i + j >= 0);
    }
    """)
    analysis = analyze_program(program)
    return analysis, QueryRenderer(analysis)


class TestRenderer:
    def test_display_names_collapse_to_program_names(self, renderer):
        analysis, r = renderer
        for v, info in analysis.info.items():
            if info.kind in ("loop", "havoc"):
                # internal names like j@loop1 must not leak to the user
                assert "@" not in r.display_name(v)

    def test_name_collision_disambiguated(self, renderer):
        analysis, r = renderer
        # j appears both as a loop abstraction and a havoc abstraction:
        # the two must not render to the same string
        j_vars = [v for v, info in analysis.info.items()
                  if info.program_var == "j"]
        names = {r.display_name(v) for v in j_vars}
        assert len(names) == len(j_vars)

    def test_dvd_atom_renders(self, renderer):
        _, r = renderer
        x = Var("x")
        text = r.format_atom(dvd(3, LinTerm.var(x) + 1))
        assert "divides" in text

    def test_negated_dvd_renders(self, renderer):
        _, r = renderer
        x = Var("x")
        text = r.format_atom(dvd(3, LinTerm.var(x), negated=True))
        assert "does not divide" in text

    def test_notes_mention_locations(self, renderer):
        analysis, r = renderer
        loop_var = next(v for v, info in analysis.info.items()
                        if info.kind == "loop")
        query = r.invariant_query(ge(LinTerm.var(loop_var), 0))
        assert any("after the loop" in note for note in query.notes)

    def test_input_vars_get_no_notes(self, renderer):
        analysis, r = renderer
        nu = analysis.input_vars["n"]
        query = r.invariant_query(ge(LinTerm.var(nu), 0))
        assert query.notes == ()

    def test_formula_with_mixed_connectives(self, renderer):
        _, r = renderer
        phi = parse_formula("(x >= 0 && y >= 0) || z == 1")
        text = r.format_formula(phi)
        assert " or " in text and " and " in text
