"""Focused unit tests for the interval domain internals."""

from repro.abstract.intervals import (
    Interval,
    IntervalEnv,
    _negate,
    assume,
    eval_interval,
)
from repro.lang.ast import BinOp, BoolConst, BoolOp, Cmp, Const, Name, \
    NotPred


def env(**bounds):
    e = IntervalEnv()
    for name, (lo, hi) in bounds.items():
        e[name] = Interval(lo, hi)
    return e


class TestNegatePredicate:
    def test_cmp_flips(self):
        assert _negate(Cmp("<", Name("x"), Const(3))).op == ">="
        assert _negate(Cmp("==", Name("x"), Const(3))).op == "!="

    def test_de_morgan(self):
        pred = BoolOp("&&", (Cmp("<", Name("x"), Const(1)),
                             Cmp(">", Name("x"), Const(5))))
        negated = _negate(pred)
        assert isinstance(negated, BoolOp) and negated.op == "||"

    def test_double_negation(self):
        pred = NotPred(Cmp("<", Name("x"), Const(1)))
        assert _negate(pred) == pred.arg

    def test_bool_const(self):
        assert _negate(BoolConst(True)).value is False


class TestAssume:
    def test_upper_refinement(self):
        e = assume(Cmp("<", Name("x"), Const(5)), env(x=(None, None)))
        assert e["x"].hi == 4

    def test_lower_refinement_via_mirror(self):
        # 3 <= x puts a lower bound on the variable on the right side
        e = assume(Cmp("<=", Const(3), Name("x")), env(x=(None, None)))
        assert e["x"].lo == 3

    def test_equality_refinement(self):
        e = assume(Cmp("==", Name("x"), Const(7)), env(x=(0, 100)))
        assert e["x"] == Interval(7, 7)

    def test_conjunction_refines_both_sides(self):
        pred = BoolOp("&&", (Cmp(">=", Name("x"), Const(1)),
                             Cmp("<=", Name("x"), Const(4))))
        e = assume(pred, env(x=(None, None)))
        assert e["x"] == Interval(1, 4)

    def test_disjunction_joins(self):
        pred = BoolOp("||", (Cmp("==", Name("x"), Const(1)),
                             Cmp("==", Name("x"), Const(9))))
        e = assume(pred, env(x=(None, None)))
        assert e["x"] == Interval(1, 9)

    def test_contradiction_bottoms(self):
        pred = BoolOp("&&", (Cmp(">=", Name("x"), Const(5)),
                             Cmp("<=", Name("x"), Const(4))))
        e = assume(pred, env(x=(None, None)))
        assert e.is_bottom

    def test_false_constant_bottoms(self):
        e = assume(BoolConst(False), env(x=(0, 1)))
        assert e.is_bottom

    def test_disequality_is_noop(self):
        e = assume(Cmp("!=", Name("x"), Const(3)), env(x=(0, 5)))
        assert e["x"] == Interval(0, 5)


class TestEval:
    def test_linear_expression(self):
        e = env(x=(1, 2), y=(10, 20))
        expr = BinOp("+", BinOp("*", Const(3), Name("x")), Name("y"))
        assert eval_interval(expr, e) == Interval(13, 26)

    def test_subtraction_swaps_bounds(self):
        e = env(x=(1, 2))
        expr = BinOp("-", Const(0), Name("x"))
        assert eval_interval(expr, e) == Interval(-2, -1)

    def test_mixed_sign_multiplication(self):
        e = env(x=(-2, 3), y=(-5, 1))
        expr = BinOp("*", Name("x"), Name("y"))
        result = eval_interval(expr, e)
        products = [a * b for a in (-2, 3) for b in (-5, 1)]
        assert result == Interval(min(products), max(products))

    def test_unbounded_times_zero_crossing(self):
        e = env(x=(None, None), y=(0, 1))
        expr = BinOp("*", Name("x"), Name("y"))
        assert eval_interval(expr, e) == Interval.TOP
