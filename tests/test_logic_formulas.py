"""Unit tests for formula construction, normalization and evaluation."""

import pytest

from repro.logic import (
    FALSE,
    TRUE,
    And,
    Atom,
    Dvd,
    LinTerm,
    Or,
    Rel,
    Var,
    atom,
    conj,
    disj,
    dvd,
    eq,
    exists,
    forall,
    ge,
    gt,
    implies,
    le,
    lt,
    ne,
    neg,
    parse_formula,
)

x = Var("x")
y = Var("y")


class TestAtomNormalization:
    def test_ground_atoms_fold(self):
        assert le(1, 2) is TRUE
        assert le(3, 2) is FALSE
        assert eq(2, 2) is TRUE
        assert ne(2, 2) is FALSE

    def test_strict_tightening(self):
        # x < 3 over integers is x <= 2, i.e. x - 2 <= 0
        f = lt(LinTerm.var(x), 3)
        assert isinstance(f, Atom)
        assert f.rel is Rel.LE
        assert f.term == LinTerm.make([(x, 1)], -2)

    def test_gcd_tightening_le(self):
        # 2x - 3 <= 0  <=>  x <= 1
        f = atom(Rel.LE, LinTerm.make([(x, 2)], -3))
        assert f == atom(Rel.LE, LinTerm.make([(x, 1)], -1))

    def test_gcd_infeasible_equality(self):
        # 2x = 3 has no integer solution
        assert atom(Rel.EQ, LinTerm.make([(x, 2)], -3)) is FALSE

    def test_gcd_trivial_disequality(self):
        assert atom(Rel.NE, LinTerm.make([(x, 2)], -3)) is TRUE

    def test_eq_canonical_sign(self):
        f1 = eq(LinTerm.var(x), LinTerm.var(y))
        f2 = eq(LinTerm.var(y), LinTerm.var(x))
        assert f1 == f2

    def test_negation_roundtrip(self):
        f = le(LinTerm.var(x), 3)
        assert neg(neg(f)) == f

    def test_atom_negation_semantics(self):
        f = le(LinTerm.var(x), 3)
        g = neg(f)
        for value in range(-5, 6):
            assert f.evaluate({x: value}) != g.evaluate({x: value})


class TestDvdNormalization:
    def test_unit_divisor_folds(self):
        assert dvd(1, LinTerm.var(x)) is TRUE
        assert dvd(1, LinTerm.var(x), negated=True) is FALSE

    def test_coefficients_reduced_mod_divisor(self):
        f = dvd(4, LinTerm.make([(x, 6)], 10))
        assert isinstance(f, Dvd)
        # 4 | 6x + 10  <=>  4 | 2x + 2  <=>  2 | x + 1
        assert f.divisor == 2
        assert f.term == LinTerm.make([(x, 1)], 1)

    def test_ground_folds(self):
        assert dvd(3, LinTerm.constant(6)) is TRUE
        assert dvd(3, LinTerm.constant(7)) is FALSE

    def test_semantics_preserved_by_normalization(self):
        f = dvd(4, LinTerm.make([(x, 6)], 10))
        for value in range(-8, 9):
            assert f.evaluate({x: value}) == ((6 * value + 10) % 4 == 0)

    def test_zero_divisor_rejected(self):
        with pytest.raises(ValueError):
            dvd(0, LinTerm.var(x))


class TestConnectives:
    def test_conj_flattens(self):
        f = conj(le(x, 1), conj(le(y, 2), le(x, 0)))
        assert isinstance(f, And)
        assert len(f.args) == 3

    def test_conj_unit_and_absorbing(self):
        assert conj() is TRUE
        assert conj(TRUE, le(x, 1)) == le(x, 1)
        assert conj(le(x, 1), FALSE) is FALSE

    def test_disj_unit_and_absorbing(self):
        assert disj() is FALSE
        assert disj(FALSE, le(x, 1)) == le(x, 1)
        assert disj(le(x, 1), TRUE) is TRUE

    def test_dedup(self):
        f = conj(le(x, 1), le(x, 1))
        assert f == le(x, 1)

    def test_complementary_literals_fold(self):
        f = conj(le(x, 1), neg(le(x, 1)))
        assert f is FALSE
        g = disj(le(x, 1), neg(le(x, 1)))
        assert g is TRUE

    def test_operators(self):
        f = le(x, 1) & le(y, 2)
        assert isinstance(f, And)
        g = le(x, 1) | le(y, 2)
        assert isinstance(g, Or)
        assert ~TRUE is FALSE

    def test_implies(self):
        f = implies(le(x, 1), le(x, 5))
        assert f.evaluate({x: 0}) and f.evaluate({x: 10})
        assert not implies(le(x, 5), le(x, 1)).evaluate({x: 3})


class TestQuantifiers:
    def test_binder_drops_unused_vars(self):
        assert exists([y], le(x, 1)) == le(x, 1)

    def test_nested_binders_merge(self):
        f = exists([x], exists([y], lt(x, y)))
        assert f == exists([x, y], lt(x, y))

    def test_free_vars(self):
        f = forall([x], lt(x, y))
        assert f.free_vars() == frozenset([y])

    def test_capture_is_rejected(self):
        f = exists([x], lt(x, y))
        with pytest.raises(ValueError):
            f.substitute({y: LinTerm.var(x)})

    def test_evaluate_quantified_raises(self):
        with pytest.raises(ValueError):
            forall([x], le(x, 1)).evaluate({})


class TestComparisonHelpers:
    @pytest.mark.parametrize(
        "builder,op",
        [
            (le, lambda a, b: a <= b),
            (lt, lambda a, b: a < b),
            (ge, lambda a, b: a >= b),
            (gt, lambda a, b: a > b),
            (eq, lambda a, b: a == b),
            (ne, lambda a, b: a != b),
        ],
    )
    def test_semantics(self, builder, op):
        f = builder(LinTerm.var(x), LinTerm.var(y, 2) + 1)
        for vx in range(-4, 5):
            for vy in range(-4, 5):
                assert f.evaluate({x: vx, y: vy}) == op(vx, 2 * vy + 1), (
                    f, vx, vy
                )


class TestSizeAndAtoms:
    def test_size_counts_nodes(self):
        f = parse_formula("x < 1 && (y > 2 || x == y)")
        assert f.size() >= 5

    def test_atoms_iteration(self):
        f = parse_formula("x < 1 && (y > 2 || x == y)")
        assert len(list(f.atoms())) == 3
