"""Snapshot-style tests pinning the *content* of the headline benchmark
queries (the paper's anecdotes), not just their counts."""

import pytest

from repro.diagnosis import ExhaustiveOracle, diagnose_error
from repro.suite import benchmark_by_name, load_analysis

_RESULTS: dict[str, object] = {}


def session(name):
    if name not in _RESULTS:
        bench = benchmark_by_name(name)
        program, analysis = load_analysis(bench)
        oracle = ExhaustiveOracle(program, analysis,
                                  radius=bench.oracle_radius)
        _RESULTS[name] = diagnose_error(analysis, oracle)
    return _RESULTS[name]


class TestChrootAnecdote:
    """Section 6: 'the user only needs to answer one simple query asking
    whether the value of optind is always greater than zero after a
    while loop'."""

    def test_single_query(self):
        result = session("p06_chroot")
        assert result.num_queries == 1

    def test_query_is_about_optind_positivity(self):
        result = session("p06_chroot")
        query = result.interactions[0].query
        assert query.kind == "invariant"
        assert "optind" in query.text
        assert "1 <= optind" in query.text or "optind >= 1" in query.text

    def test_note_points_at_the_loop(self):
        result = session("p06_chroot")
        query = result.interactions[0].query
        assert any("after the loop" in note for note in query.notes)


class TestEnvironmentWitness:
    """Problem 4's bug is validated by a witness about the execution
    environment (argc), which Pi_w makes the cheapest question."""

    def test_witness_query_about_argc(self):
        result = session("p04_options")
        assert result.classification == "real bug"
        query = result.interactions[-1].query
        assert query.kind == "witness"
        assert "argc" in query.text

    def test_witness_mentions_no_abstraction_vars(self):
        result = session("p04_options")
        query = result.interactions[-1].query
        assert all(v.is_input for v in query.formula.free_vars())


class TestRelationalObligation:
    """Problem 2's false alarm needs the relational fact chars >= lines."""

    def test_final_query_relates_counters(self):
        result = session("p02_wordcount")
        assert result.classification == "false alarm"
        final = result.interactions[-1]
        assert final.answer.value == "yes"
        text = final.query.text
        assert "lines" in text and "chars" in text


class TestQueriesAreLocal:
    """Across the whole set of asked queries on these three problems, no
    query may mention more than 3 facts — the locality the cost model is
    designed to produce."""

    @pytest.mark.parametrize("name", ["p06_chroot", "p04_options",
                                      "p02_wordcount"])
    def test_locality(self, name):
        result = session(name)
        for interaction in result.interactions:
            assert len(interaction.query.formula.free_vars()) <= 3
