"""Seed robustness: the user-study headline must not depend on the seed.

Runs a reduced study (3 problems, 14 recruited) under multiple seeds and
checks the qualitative Figure 7 shape every time.
"""

import pytest

from repro.diagnosis import EngineConfig
from repro.suite import BENCHMARKS
from repro.userstudy import UserStudy

SUBSET = tuple(
    b for b in BENCHMARKS
    if b.name in ("p03_square", "p06_chroot", "p10_toggle")
)


@pytest.mark.parametrize("seed", [1, 7, 2012])
def test_shape_holds_across_seeds(seed):
    study = UserStudy(
        num_recruited=14,
        seed=seed,
        benchmarks=SUBSET,
        engine_config=EngineConfig(max_rounds=6),
    ).run()
    manual = study.average_cell("manual")
    technique = study.average_cell("technique")
    # the orderings the paper's conclusions rest on
    assert technique.pct_correct > manual.pct_correct
    assert technique.pct_wrong < manual.pct_wrong
    assert technique.avg_seconds < manual.avg_seconds / 2
    # and the coarse bands
    assert manual.pct_correct < 65.0
    assert technique.pct_correct > 70.0
