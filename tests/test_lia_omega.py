"""Tests for the Omega-test integer feasibility solver.

The key property test cross-checks the solver against brute-force
enumeration: with coefficients in [-3,3] and constants in [-4,4] most
satisfiable systems have witnesses in a small box, and everything the
solver claims is checked by evaluating the literals under the model.
"""

from hypothesis import given, settings

from repro.lia import OmegaSolver, solve_literals, unsat_core
from repro.logic import (
    FALSE,
    TRUE,
    LinTerm,
    Var,
    conj,
    dvd,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
    parse_formula,
)
from .helpers import assert_model, brute_force_sat
from .strategies import VARS, literal_lists

x, y, z = Var("x"), Var("y"), Var("z")


def check(literals, expect_sat=None):
    model = solve_literals(literals)
    if model is not None:
        assert_model(conj(*literals), model)
    if expect_sat is not None:
        assert (model is not None) == expect_sat, (literals, model)
    return model


class TestBasics:
    def test_empty_is_sat(self):
        assert check([], expect_sat=True) == {}

    def test_true_false(self):
        check([TRUE], expect_sat=True)
        check([FALSE], expect_sat=False)

    def test_simple_bounds(self):
        check([ge(x, 1), le(x, 3)], expect_sat=True)
        check([ge(x, 4), le(x, 3)], expect_sat=False)

    def test_equality_chain(self):
        model = check([eq(x, y), eq(y, z), ge(x, 5)], expect_sat=True)
        assert model[x] == model[y] == model[z] >= 5

    def test_disequality(self):
        check([eq(x, 3), ne(x, 3)], expect_sat=False)
        model = check([ge(x, 0), le(x, 1), ne(x, 0)], expect_sat=True)
        assert model[x] == 1

    def test_many_disequalities_pigeonhole(self):
        # x in [0,2] but x != 0,1,2: unsat
        lits = [ge(x, 0), le(x, 2), ne(x, 0), ne(x, 1), ne(x, 2)]
        check(lits, expect_sat=False)


class TestIntegrality:
    def test_tight_gap_has_no_integer(self):
        # 1 <= 3x - 3y <= 2: feasible over rationals, infeasible over Z
        t = LinTerm.make([(x, 3), (y, -3)])
        check([ge(t, 1), le(t, 2)], expect_sat=False)

    def test_parity_conflict(self):
        # 2x = 2y + 1 is unsat
        check([eq(LinTerm.var(x, 2), LinTerm.var(y, 2) + 1)],
              expect_sat=False)

    def test_dark_shadow_needs_splinters(self):
        # classic omega example: 0 <= 3x - 2y, 2y - 3x >= -1 and y bounds
        # force reasoning beyond the dark shadow
        lits = [
            le(LinTerm.var(y, 2) - LinTerm.var(x, 3), 0),
            le(LinTerm.var(x, 3) - LinTerm.var(y, 2), 1),
            ge(y, 1),
            le(y, 10),
        ]
        model = check(lits, expect_sat=True)
        assert 1 <= model[y] <= 10

    def test_non_unit_equality(self):
        # 7x + 12y = 17 has integer solutions
        model = check(
            [eq(LinTerm.make([(x, 7), (y, 12)]), 17)], expect_sat=True
        )
        assert 7 * model[x] + 12 * model[y] == 17

    def test_non_unit_equality_unsat(self):
        # 6x + 9y = 5: gcd 3 does not divide 5
        check([eq(LinTerm.make([(x, 6), (y, 9)]), 5)], expect_sat=False)


class TestDivisibility:
    def test_dvd_sat(self):
        model = check(
            [dvd(4, LinTerm.var(x) + 1), ge(x, 10), le(x, 14)],
            expect_sat=True,
        )
        assert (model[x] + 1) % 4 == 0

    def test_dvd_unsat(self):
        check(
            [dvd(4, LinTerm.var(x)), dvd(4, LinTerm.var(x) + 2),
             ge(x, 0), le(x, 100)],
            expect_sat=False,
        )

    def test_negated_dvd(self):
        model = check(
            [dvd(2, LinTerm.var(x), negated=True), ge(x, 0), le(x, 1)],
            expect_sat=True,
        )
        assert model[x] == 1

    def test_dvd_combination(self):
        # x = 1 mod 2 and x = 2 mod 3 -> x = 5 mod 6
        model = check(
            [dvd(2, LinTerm.var(x) - 1), dvd(3, LinTerm.var(x) - 2),
             ge(x, 0), le(x, 20)],
            expect_sat=True,
        )
        assert model[x] % 6 == 5


class TestLargerSystems:
    def test_triangular(self):
        lits = [
            ge(x, 0), ge(y, 0), ge(z, 0),
            le(LinTerm.var(x) + LinTerm.var(y) + LinTerm.var(z), 10),
            ge(LinTerm.var(x) + LinTerm.var(y), 7),
            ge(LinTerm.var(y) + LinTerm.var(z), 7),
        ]
        check(lits, expect_sat=True)

    def test_infeasible_triangle(self):
        lits = [
            gt(x, y), gt(y, z), gt(z, x),
        ]
        check(lits, expect_sat=False)

    def test_scaled_system(self):
        lits = [
            ge(LinTerm.make([(x, 5), (y, -3)]), 2),
            le(LinTerm.make([(x, 5), (y, -3)]), 4),
            ge(LinTerm.make([(x, 2), (y, 7)]), 10),
            le(x, 50), ge(x, -50), le(y, 50), ge(y, -50),
        ]
        model = solve_literals(lits)
        if model is not None:
            assert_model(conj(*lits), model)


class TestUnsatCore:
    def test_core_is_minimal_and_unsat(self):
        lits = [ge(x, 5), le(y, 100), le(x, 3), ge(z, 0)]
        core = unsat_core(lits)
        assert set(core) == {ge(x, 5), le(x, 3)}

    def test_core_on_sat_raises(self):
        import pytest

        with pytest.raises(ValueError):
            unsat_core([ge(x, 0)])


class TestPaperFormulas:
    def test_running_example_invariant_consistent(self):
        kinds = {}
        inv = parse_formula(
            "a_nn >= 0 && a_i >= 0 && a_i > n && n >= 0", kinds
        )
        lits = [lit for lit in inv.args]
        check(lits, expect_sat=True)


@settings(max_examples=300, deadline=None)
@given(literal_lists())
def test_omega_agrees_with_brute_force(literals):
    """Inside a radius-4 box the brute force is exact; the solver must find
    a model whenever brute force does, and any model must check out."""
    phi = conj(*literals)
    solver = OmegaSolver()
    model = solver.solve_literals(literals)
    if model is not None:
        assert_model(phi, model)
    else:
        witness = brute_force_sat(phi, VARS, 4)
        assert witness is None, (
            f"solver said UNSAT but {witness} satisfies {phi}"
        )


@settings(max_examples=150, deadline=None)
@given(literal_lists(min_size=2, max_size=5, with_dvd=False))
def test_omega_model_minimal_per_bounds(literals):
    """Whatever the solver returns must satisfy every individual literal."""
    model = solve_literals(literals)
    if model is None:
        return
    for lit in literals:
        env = {v: model.get(v, 0) for v in lit.free_vars()}
        assert lit.evaluate(env)
