"""The resource-governance layer: the Limits dataclass, the cooperative
Governor, fault-spec parsing, deprecated knob aliases and the
``repro.result/2`` envelope reader."""

from __future__ import annotations

import time

import pytest

from repro import limits as limits_mod
from repro.limits import (
    STAGES,
    CancellationToken,
    Governor,
    Limits,
    ResourceExhausted,
    current_governor,
    governed,
    tick,
)
from repro.limits.faults import (
    FaultInjected,
    FaultSpec,
    install,
    parse_fault,
)


@pytest.fixture(autouse=True)
def _no_installed_fault():
    """Every test starts and ends with no programmatic fault installed."""
    install(None)
    # clearing via install(None) re-enables the REPRO_FAULT env route;
    # tests that need full isolation monkeypatch the env var themselves
    yield
    install(None)


class TestLimits:
    def test_default_is_unlimited(self):
        limits = Limits()
        assert limits.unlimited
        assert all(limits.step_limit(s) is None for s in STAGES)

    def test_any_bound_clears_unlimited(self):
        assert not Limits(deadline=1.0).unlimited
        assert not Limits(max_steps=10).unlimited
        assert not Limits(msa_steps=10).unlimited
        assert not Limits(max_nodes=10).unlimited
        assert not Limits(token=CancellationToken()).unlimited
        # retries/backoff are recovery policy, not resource bounds
        assert Limits(retries=5, backoff=0.5).unlimited

    def test_step_limit_precedence(self):
        limits = Limits(max_steps=100, smt_steps=7, max_nodes=50)
        assert limits.step_limit("smt") == 7          # specific wins
        assert limits.step_limit("qe") == 50          # nodes ceiling
        assert limits.step_limit("sat") == 100        # the default
        qe_specific = Limits(max_nodes=50, qe_steps=9)
        assert qe_specific.step_limit("qe") == 9      # specific beats nodes

    def test_tightened_halves_deadline(self):
        limits = Limits(deadline=8.0)
        assert limits.tightened(0) is limits
        assert limits.tightened(1).deadline == pytest.approx(4.0)
        assert limits.tightened(2).deadline == pytest.approx(2.0)
        # floor keeps retries meaningful
        assert Limits(deadline=0.01).tightened(3).deadline == \
            pytest.approx(0.05)
        assert Limits().tightened(3) == Limits()      # nothing to tighten

    def test_backoff_is_exponential_and_capped(self):
        limits = Limits(backoff=0.1)
        assert limits.backoff_for(1) == pytest.approx(0.1)
        assert limits.backoff_for(2) == pytest.approx(0.2)
        assert limits.backoff_for(3) == pytest.approx(0.4)
        assert limits.backoff_for(20) == pytest.approx(2.0)

    def test_to_dict_roundtrip(self):
        limits = Limits(deadline=2.5, max_steps=100, smt_steps=7,
                        retries=3)
        payload = limits.to_dict()
        assert payload == {"deadline": 2.5, "max_steps": 100,
                           "smt_steps": 7, "retries": 3}
        assert Limits.from_dict(payload) == limits

    def test_to_dict_renders_token_as_flag(self):
        payload = Limits(token=CancellationToken()).to_dict()
        assert payload["cancellable"] is True
        # the flag does not round-trip into a token (tokens are local)
        assert Limits.from_dict(payload).token is None


class TestResourceExhausted:
    def test_attributes_and_message(self):
        exc = ResourceExhausted("msa", 11, 10)
        assert (exc.stage, exc.spent, exc.limit, exc.kind) == \
            ("msa", 11, 10, "steps")
        assert "msa" in str(exc) and "11" in str(exc)

    def test_is_a_runtime_error(self):
        # pre-governance callers caught RuntimeError for budget blowups
        assert issubclass(ResourceExhausted, RuntimeError)

    def test_budget_exceeded_aliases(self):
        from repro.lia import BudgetExceeded
        from repro.qe.cooper import QeBudgetExceeded
        assert BudgetExceeded is ResourceExhausted
        assert QeBudgetExceeded is ResourceExhausted


class TestGovernor:
    def test_tick_is_noop_without_governor(self):
        assert current_governor() is None
        for _ in range(10):
            tick("smt")                   # must not raise or accumulate

    def test_step_budget_raises_with_stage(self):
        with governed(Limits(smt_steps=3)) as governor:
            for _ in range(3):
                tick("smt")
            tick("sat")                   # other stages are unbounded
            with pytest.raises(ResourceExhausted) as err:
                tick("smt")
        assert err.value.stage == "smt"
        assert err.value.kind == "steps"
        assert (err.value.spent, err.value.limit) == (4, 3)
        assert governor.spend_snapshot() == {"smt": 4, "sat": 1}

    def test_qe_counts_nodes(self):
        with governed(Limits(max_nodes=10)):
            with pytest.raises(ResourceExhausted) as err:
                tick("qe", amount=11)
        assert err.value.kind == "nodes"

    def test_deadline_raises_at_next_checkpoint(self):
        with governed(Limits(deadline=0.005)):
            time.sleep(0.02)
            with pytest.raises(ResourceExhausted) as err:
                tick("omega")
        assert err.value.stage == "omega"     # attribution: who noticed
        assert err.value.kind == "deadline"

    def test_cancellation_token(self):
        token = CancellationToken()
        with governed(Limits(token=token)):
            tick("msa")
            token.cancel()
            with pytest.raises(ResourceExhausted) as err:
                tick("msa")
        assert err.value.kind == "cancelled"
        assert token.cancelled

    def test_governed_nesting_restores_outer(self):
        with governed(Limits(smt_steps=100)) as outer:
            with governed(Limits(smt_steps=1)) as inner:
                assert current_governor() is inner
                tick("smt")
            assert current_governor() is outer
            tick("smt")
        assert current_governor() is None
        assert outer.spend_snapshot() == {"smt": 1}

    def test_governor_restored_after_exhaustion(self):
        with pytest.raises(ResourceExhausted):
            with governed(Limits(sat_steps=0)):
                tick("sat")
        assert current_governor() is None


class TestFaultSpecs:
    def test_parse_simple(self):
        spec = parse_fault("raise@qe")
        assert spec == FaultSpec(action="raise", stage="qe")
        assert str(spec) == "raise@qe"

    def test_parse_sleep_with_report(self):
        spec = parse_fault("sleep:2.5@smt@p03_square")
        assert spec.action == "sleep"
        assert spec.seconds == pytest.approx(2.5)
        assert spec.report == "p03_square"
        assert str(spec) == "sleep:2.5@smt@p03_square"

    @pytest.mark.parametrize("bad", [
        "explode@qe",          # unknown action
        "raise",               # no stage
        "sleep@qe",            # sleep without duration
        "raise:3@qe",          # raise takes no argument
        "@qe",                 # empty action
        "raise@@p03",          # empty stage
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_fault(bad)

    def test_env_var_activates(self, monkeypatch):
        from repro.limits import faults
        monkeypatch.setenv("REPRO_FAULT", "exhaust@msa")
        assert faults.active() == FaultSpec(action="exhaust", stage="msa")
        install("raise@sat")              # programmatic install wins
        assert faults.active().action == "raise"

    def test_exhaust_fault_fires_once_per_governor(self):
        install("exhaust@smt")
        with governed(Limits()):
            with pytest.raises(ResourceExhausted) as err:
                tick("smt")
            tick("smt")                   # same governor: fired already
        assert err.value.kind == "injected"
        with governed(Limits()):          # fresh governor: fires again
            with pytest.raises(ResourceExhausted):
                tick("smt")

    def test_raise_fault_is_not_resource_exhausted(self):
        install("raise@sat")
        with governed(Limits()):
            with pytest.raises(FaultInjected) as err:
                tick("sat")
        assert err.value.stage == "sat"
        assert not isinstance(err.value, ResourceExhausted)

    def test_report_scoped_fault_skips_other_reports(self):
        from repro.limits import faults
        install("exhaust@smt@only_this_one")
        try:
            faults.set_report("some_other_report")
            with governed(Limits()):
                tick("smt")               # not our report: no fault
            faults.set_report("only_this_one")
            with governed(Limits()):
                with pytest.raises(ResourceExhausted):
                    tick("smt")
        finally:
            faults.set_report(None)

    def test_kill_downgrades_outside_workers(self):
        install("kill@omega")
        with governed(Limits()):
            with pytest.raises(FaultInjected):
                tick("omega")             # we are not a marked worker

    def test_sleep_fault_yields_deadline_attribution(self):
        install("sleep:30@msa")
        start = time.monotonic()
        with governed(Limits(deadline=0.05)):
            with pytest.raises(ResourceExhausted) as err:
                tick("msa")
        assert time.monotonic() - start < 5.0     # sliced, not 30s
        assert err.value.stage == "msa"
        assert err.value.kind == "deadline"


class TestDeprecatedKnobs:
    def test_omega_budget_param_warns(self):
        from repro.lia import OmegaSolver
        with pytest.warns(DeprecationWarning, match="budget") as records:
            OmegaSolver(budget=100)
        # stacklevel=2: the warning must point at this caller, not at
        # omega.py, so `-W error::DeprecationWarning` blames user code
        assert records[0].filename == __file__

    def test_pipeline_triage_timeout_removed(self):
        from repro.api import Pipeline
        with pytest.raises(TypeError, match="timeout"):
            Pipeline().triage(["d01_plus_one"], jobs=1, timeout=30.0)


class TestEngineIntegration:
    def test_diagnosis_converts_exhaustion_to_verdict(self):
        from repro.api import Pipeline
        from repro.diagnosis import ScriptedOracle, Verdict
        from repro.schema import TriageVerdict
        from tests.test_api_cli import FOO
        pipe = Pipeline(limits=Limits(smt_steps=1))
        result = pipe.diagnose(FOO, ScriptedOracle(["yes"]))
        assert result.verdict is Verdict.RESOURCE_EXHAUSTED
        assert result.triage_verdict is TriageVerdict.UNKNOWN_RESOURCE
        assert result.exhausted_stage == "smt"
        assert result.exhausted_kind == "steps"
        assert result.resource_spend["smt"] >= 1
        payload = result.to_dict()
        assert payload["verdict"] == "unknown resource"
        assert payload["limits"] == {"smt_steps": 1, "retries": 1}

    def test_ungoverned_diagnosis_reports_no_spend(self):
        from repro.api import Pipeline
        from repro.diagnosis import ScriptedOracle, Verdict
        from tests.test_api_cli import FOO
        result = Pipeline().diagnose(FOO, ScriptedOracle(["yes"]))
        assert result.verdict is Verdict.DISCHARGED
        assert result.resource_spend is None
        assert result.exhausted_stage is None


class TestEnvelopeV2:
    def test_read_current_version_passthrough(self):
        from repro.schema import SCHEMA_VERSION, read_envelope
        payload = {"schema": SCHEMA_VERSION, "kind": "triage_outcome",
                   "verdict": "false alarm", "degraded": False}
        assert read_envelope(payload) == payload

    def test_read_upgrades_v1_batch(self):
        from repro.schema import SCHEMA_VERSION, read_envelope
        legacy = {"schema": "repro.result/1", "kind": "batch",
                  "verdict": "unknown", "outcomes": []}
        upgraded = read_envelope(legacy)
        assert upgraded["schema"] == SCHEMA_VERSION
        assert upgraded["degraded"] == []
        assert legacy["schema"] == "repro.result/1"   # input not mutated

    def test_read_upgrades_v1_outcome(self):
        from repro.schema import read_envelope
        legacy = {"schema": "repro.result/1", "kind": "triage_outcome",
                  "verdict": "real bug"}
        assert read_envelope(legacy)["degraded"] is False

    def test_read_rejects_unknown_version(self):
        from repro.schema import read_envelope
        with pytest.raises(ValueError, match="unsupported"):
            read_envelope({"schema": "repro.result/99", "kind": "batch",
                           "verdict": "unknown"})

    def test_read_rejects_missing_keys(self):
        from repro.schema import read_envelope
        with pytest.raises(ValueError, match="missing"):
            read_envelope({"kind": "batch", "verdict": "unknown"})

    def test_read_rejects_bad_verdict(self):
        from repro.schema import SCHEMA_VERSION, read_envelope
        with pytest.raises(ValueError):
            read_envelope({"schema": SCHEMA_VERSION, "kind": "batch",
                           "verdict": "maybe"})

    def test_batch_payload_reads_back(self):
        from repro.batch import triage_many
        from repro.schema import read_envelope
        result = triage_many(["d01_plus_one"], jobs=1,
                             limits=Limits(deadline=60.0, retries=0))
        payload = read_envelope(result.to_dict())
        assert payload["limits"]["deadline"] == pytest.approx(60.0)
        assert payload["degraded"] == []
        assert "resource_spend" in payload
