"""Tests for contextual simplification."""

from hypothesis import given, settings

from repro.logic import (
    TRUE,
    Var,
    conj,
    disj,
    ge,
    le,
    lt,
    neg,
    parse_formula,
)
from repro.simplify import Simplifier, simplify
from repro.smt import SmtSolver
from .helpers import enumerate_box
from .strategies import VARS, formulas

x, y, z = Var("x"), Var("y"), Var("z")


class TestBasic:
    def test_implied_conjunct_dropped(self):
        phi = conj(ge(x, 0), ge(x, -5))
        assert simplify(phi) == ge(x, 0)

    def test_context_drops_conjunct(self):
        phi = conj(ge(x, 0), le(x, 10))
        assert simplify(phi, critical=ge(x, 3)) == le(x, 10)

    def test_contradicted_disjunct_dropped(self):
        phi = disj(lt(x, 0), ge(x, 10))
        assert simplify(phi, critical=ge(x, 0)) == ge(x, 10)

    def test_whole_formula_decided(self):
        phi = ge(x, 0)
        assert simplify(phi, critical=ge(x, 5)).is_true
        assert simplify(phi, critical=le(x, -5)).is_false

    def test_unsat_context_gives_true(self):
        phi = ge(x, 0)
        assert simplify(phi, critical=conj(ge(x, 1), le(x, 0))).is_true

    def test_idempotent_without_context(self):
        phi = parse_formula("x >= 0 && y < x")
        assert simplify(phi) == phi

    def test_paper_example2_redundancy(self):
        """Lemma 3's remark: QE output may repeat facts implied by I and
        must be simplified with I as the critical constraint."""
        inv = parse_formula("ai >= 0 && ai > n2")
        redundant = parse_formula("aj >= 0 && ai >= 0")
        assert simplify(redundant, critical=inv) == parse_formula("aj >= 0")


class TestNested:
    def test_nested_or_in_and(self):
        phi = parse_formula("(x < 0 || y >= 0) && y >= 0")
        # first conjunct is implied by the second
        assert simplify(phi) == parse_formula("y >= 0")

    def test_sibling_context_used(self):
        phi = parse_formula("x >= 5 && (x >= 3 || y == 1)")
        assert simplify(phi) == parse_formula("x >= 5")


@settings(max_examples=60, deadline=None)
@given(formulas(max_depth=2), formulas(max_depth=1))
def test_simplify_equivalent_under_context(phi, critical):
    engine = Simplifier()
    result = engine.simplify(phi, critical)
    # critical |= (phi <-> result): check on the box
    for env in enumerate_box(VARS, 3):
        if critical.evaluate(env):
            assert phi.evaluate(env) == result.evaluate(env), (
                phi, critical, result, env
            )


@settings(max_examples=40, deadline=None)
@given(formulas(max_depth=2))
def test_simplify_never_grows(phi):
    result = simplify(phi)
    assert result.size() <= phi.size()
