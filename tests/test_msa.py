"""Tests for minimum satisfying assignments."""

import pytest
from hypothesis import given, settings

from repro.logic import (
    LinTerm,
    Var,
    VarKind,
    conj,
    disj,
    eq,
    ge,
    gt,
    le,
    lt,
    parse_formula,
)
from repro.msa import MsaSolver, find_msa
from repro.qe import eliminate_forall
from repro.smt import SmtSolver
from .strategies import formulas

x, y, z = Var("x"), Var("y"), Var("z")
UNIT = {x: 1, y: 1, z: 1}


def unit_costs(v):
    return 1


class TestBasics:
    def test_valid_formula_needs_nothing(self):
        result = find_msa(ge(LinTerm.var(x) + 1, LinTerm.var(x)), unit_costs)
        assert result is not None
        assert result.cost == 0
        assert result.assignment == ()

    def test_unsat_formula_has_no_msa(self):
        phi = conj(ge(x, 1), le(x, 0))
        assert find_msa(phi, unit_costs) is None

    def test_single_variable(self):
        # x >= 5 requires assigning x
        result = find_msa(ge(x, 5), unit_costs)
        assert result is not None
        assert result.variables == {x}
        assert result.as_dict()[x] >= 5

    def test_one_of_two_suffices(self):
        # x >= 0 || y >= 0: either variable alone suffices
        result = find_msa(disj(ge(x, 0), ge(y, 0)), unit_costs)
        assert result is not None
        assert result.cost == 1

    def test_both_needed(self):
        phi = conj(ge(x, 0), ge(y, 0))
        result = find_msa(phi, unit_costs)
        assert result is not None
        assert result.cost == 2
        assert result.variables == {x, y}

    def test_costs_steer_choice(self):
        phi = disj(ge(x, 0), ge(y, 0))
        result = find_msa(phi, {x: 10, y: 1, z: 1})
        assert result is not None
        assert result.variables == {y}

    def test_implication_prefers_antecedent_falsification(self):
        # (x >= 0) -> (y >= 0): assigning x = -1 makes it valid at cost 1
        phi = ge(x, 0).implies(ge(y, 0))
        result = find_msa(phi, unit_costs)
        assert result is not None
        assert result.cost == 1


class TestConsistency:
    def test_consistency_blocks_cheap_assignment(self):
        # (x >= 0) -> (y >= 0) again, but assignments must stay consistent
        # with x >= 5, ruling out the "falsify the antecedent" trick.
        phi = ge(x, 0).implies(ge(y, 0))
        result = find_msa(phi, unit_costs, consistency=[ge(x, 5)])
        assert result is not None
        sigma = result.as_formula()
        solver = SmtSolver()
        assert solver.is_sat(conj(sigma, ge(x, 5)))
        assert solver.is_valid(phi.substitute(
            {v: LinTerm.constant(c) for v, c in result.assignment}
        ))

    def test_each_consistency_formula_checked_separately(self):
        phi = disj(eq(x, 0), eq(x, 1))
        # witnesses x=0 and x=1 are mutually exclusive but individually fine
        result = find_msa(
            phi, unit_costs, consistency=[eq(x, 0), eq(x, 1)]
        )
        # no single assignment of x is consistent with both
        assert result is None

    def test_inconsistent_side_formula(self):
        result = find_msa(
            ge(x, 0), unit_costs,
            consistency=[conj(ge(x, 1), le(x, 0))],
        )
        assert result is None


class TestDefinition:
    """Every MSA must satisfy Definition 5 exactly."""

    @settings(max_examples=40, deadline=None)
    @given(formulas(max_depth=2, with_dvd=False))
    def test_msa_satisfies_definition(self, phi):
        solver = SmtSolver()
        result = find_msa(phi, unit_costs)
        if result is None:
            assert not solver.is_sat(phi)
            return
        sub = {v: LinTerm.constant(c) for v, c in result.assignment}
        assert solver.is_valid(phi.substitute(sub))

    @settings(max_examples=25, deadline=None)
    @given(formulas(max_depth=2, with_dvd=False))
    def test_strategies_agree_on_cost(self, phi):
        a = find_msa(phi, unit_costs, strategy="subsets")
        b = find_msa(phi, unit_costs, strategy="branch_bound")
        if a is None or b is None:
            assert a is None and b is None
        else:
            assert a.cost == b.cost

    @settings(max_examples=20, deadline=None)
    @given(formulas(max_depth=1, with_dvd=False))
    def test_minimality_against_exhaustive(self, phi):
        """No strictly cheaper variable subset may be feasible."""
        solver = SmtSolver()
        result = find_msa(phi, unit_costs)
        if result is None:
            return
        variables = sorted(phi.free_vars(), key=lambda v: v.name)
        for mask in range(1 << len(variables)):
            include = [variables[i] for i in range(len(variables))
                       if mask >> i & 1]
            if len(include) >= result.cost:
                continue
            exclude = [v for v in variables if v not in include]
            residual = eliminate_forall(exclude, phi)
            assert not solver.is_sat(residual), (
                f"subset {include} (cost {len(include)}) beats claimed "
                f"MSA cost {result.cost} for {phi}"
            )


class TestPaperExample:
    def test_example2_msa_is_alpha_j(self):
        """Example 2: the MSA of I => phi consistent with I assigns only
        alpha_j (cost 1 under Pi_p), with value 0 admissible."""
        kinds = {
            "ai": VarKind.ABSTRACTION, "aj": VarKind.ABSTRACTION,
            "n1": VarKind.INPUT, "n2": VarKind.INPUT,
        }
        inv = parse_formula("ai >= 0 && ai > n2", kinds)
        phi = parse_formula(
            "(n2 + ai + aj > 2*n2 && n2 > 0 && n1 > 0) ||"
            " (1 + ai + aj > 2*n2 && n2 <= 0 && n1 > 0) ||"
            " (2*n2 + 1 > 2*n2 && n1 <= 0)",
            kinds,
        )
        imp = inv.implies(phi)
        # Pi_p: abstraction vars cost 1, inputs cost |vars| = 4
        costs = {v: (1 if v.is_abstraction else 4)
                 for v in imp.free_vars()}
        result = find_msa(imp, costs, consistency=[inv])
        assert result is not None
        assert result.variables == {Var("aj", VarKind.ABSTRACTION)}
        assert result.cost == 1


class TestValidation:
    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            find_msa(ge(x, 0), {x: -1})

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            find_msa(ge(x, 0), unit_costs, strategy="magic")
