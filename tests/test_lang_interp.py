"""Tests for the concrete interpreter (Figure 1 semantics)."""

import pytest

from repro.lang import (
    FixedHavocPolicy,
    Interpreter,
    OutOfFuel,
    parse_program,
    run_program,
)


def make(src):
    return parse_program(src)


class TestBasics:
    def test_locals_start_at_zero(self):
        p = make("program p(x) { var y; assert(y == 0); }")
        assert run_program(p, [99]).ok

    def test_inputs_bound(self):
        p = make("program p(x, y) { assert(x + y == 7); }")
        assert run_program(p, [3, 4]).ok
        assert not run_program(p, [3, 5]).ok
        assert run_program(p, {"x": 2, "y": 5}).ok

    def test_unsigned_rejects_negative(self):
        p = make("program p(unsigned n) { assert(n >= 0); }")
        with pytest.raises(ValueError):
            run_program(p, [-1])

    def test_missing_input(self):
        p = make("program p(x) { assert(x == 0); }")
        with pytest.raises(ValueError):
            run_program(p, {})
        with pytest.raises(ValueError):
            run_program(p, [1, 2])

    def test_if_else(self):
        p = make('''
        program p(x) {
          var y;
          if (x > 0) { y = 1; } else { y = -1; }
          assert(y * x >= 0);
        }
        ''')
        assert run_program(p, [5]).ok
        assert run_program(p, [-5]).ok
        assert run_program(p, [0]).ok  # else branch: y=-1, y*x = 0

    def test_if_else_zero_case(self):
        p = make('''
        program p(x) {
          var y;
          if (x > 0) { y = 1; } else { y = -1; }
          assert(y * x > 0);
        }
        ''')
        assert not run_program(p, [0]).ok

    def test_loop_sum(self):
        p = make('''
        program p(unsigned n) {
          var i, s;
          while (i < n) { i = i + 1; s = s + i; }
          assert(2 * s == n * n + n);
        }
        ''')
        for n in range(8):
            assert run_program(p, [n]).ok

    def test_loop_exit_env_recorded(self):
        p = make('''
        program p(unsigned n) {
          var i;
          while (i < n) { i = i + 1; }
          assert(i == n);
        }
        ''')
        result = run_program(p, [4])
        assert result.ok
        assert result.loop_exit_envs[1][-1]["i"] == 4

    def test_nonlinear_site_recorded(self):
        p = make('''
        program p(x) {
          var y;
          y = x * x;
          assert(y >= 0);
        }
        ''')
        result = run_program(p, [7])
        assert result.ok
        assert 49 in result.site_values.values()

    def test_fuel_exhaustion(self):
        p = make('''
        program p(x) {
          var i;
          while (i >= 0) { i = i + 1; }
          assert(i < 0);
        }
        ''')
        with pytest.raises(OutOfFuel):
            Interpreter(fuel=1000).run(p, [0])


class TestHavoc:
    def test_fixed_policy(self):
        p = make('''
        program p(x) {
          var y;
          havoc y;
          assert(y == 42);
        }
        ''')
        result = Interpreter(
            havoc_policy=FixedHavocPolicy([42])
        ).run(p, [0])
        assert result.ok
        assert result.havoc_values == [42]

    def test_assume_respected(self):
        p = make('''
        program p(x) {
          var y;
          havoc y @assume(y >= 10 && y <= 20);
          assert(y >= 10);
        }
        ''')
        for seed in range(5):
            import random

            from repro.lang import HavocPolicy

            result = Interpreter(
                havoc_policy=HavocPolicy(random.Random(seed))
            ).run(p, [0])
            assert result.ok
            assert 10 <= result.env["y"] <= 20

    def test_fixed_policy_rejects_violating_value(self):
        p = make('''
        program p(x) {
          var y;
          havoc y @assume(y > 100);
          assert(y > 100);
        }
        ''')
        # 5 violates the assumption; the policy must repair it
        result = Interpreter(
            havoc_policy=FixedHavocPolicy([5])
        ).run(p, [0])
        assert result.ok

    def test_narrow_assumption_via_solver(self):
        # random probing in [-64, 64] cannot hit y == 1000000
        p = make('''
        program p(x) {
          var y;
          havoc y @assume(y == 1000000);
          assert(y == 1000000);
        }
        ''')
        assert run_program(p, [0]).ok
