"""Soundness property tests for the whole analysis pipeline (Lemmas 1–2).

Random programs *with loops* are auto-annotated and analyzed; then:

* if the analysis claims VERIFIED (Lemma 1), no concrete execution in
  the input box may fail;
* if it claims REFUTED (Lemma 2), every concrete execution must fail.

This exercises parser + abstract interpretation + symbolic analysis +
SMT end to end with adversarial inputs.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.api import InitialVerdict, Pipeline
from repro.lang import run_program


def _random_loop_program(rng: random.Random) -> str:
    """A random terminating program with one or two loops."""
    bound = rng.choice(["n", "n + 1", "2 * n"])
    incr1 = rng.randint(1, 3)
    incr2 = rng.randint(0, 3)
    init_acc = rng.randint(0, 2)
    cmp_op = rng.choice(["<", "<="])
    second_loop = rng.random() < 0.4
    claim = rng.choice([
        "acc >= 0",
        "i >= 0",
        "acc >= i",
        f"acc + i >= {rng.randint(-3, 3)}",
        f"acc > n - {rng.randint(0, 3)}",
        "acc < 0",
    ])
    lines = [
        "program rnd(unsigned n, m) {",
        f"  var i = 0, acc = {init_acc}, extra = 0;",
        f"  while (i {cmp_op} {bound}) {{",
        f"    i = i + {incr1};",
        f"    acc = acc + {incr2};",
        "  }",
    ]
    if second_loop:
        lines += [
            "  var j = 0;",
            "  while (j < i) {",
            "    j = j + 1;",
            "    extra = extra + 1;",
            "  }",
        ]
    lines += [
        f"  assert({claim});",
        "}",
    ]
    return "\n".join(lines)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 100_000))
def test_lemma1_lemma2_sound_on_random_programs(seed):
    rng = random.Random(seed)
    source = _random_loop_program(rng)
    outcome = Pipeline().analyze(source)
    program = outcome.program

    failures, successes = 0, 0
    for n in range(0, 6):
        for m in range(-3, 4):
            result = run_program(program, {"n": n, "m": m})
            if result.ok:
                successes += 1
            else:
                failures += 1

    if outcome.verdict is InitialVerdict.VERIFIED:
        assert failures == 0, (
            f"Lemma 1 violated: analysis verified but {failures} "
            f"executions fail\n{source}"
        )
    elif outcome.verdict is InitialVerdict.REFUTED:
        assert successes == 0, (
            f"Lemma 2 violated: analysis refuted but {successes} "
            f"executions succeed\n{source}"
        )


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 100_000))
def test_posts_always_sound_on_random_programs(seed):
    """Every auto-inferred @post must hold at every loop exit."""
    from repro.lang import eval_pred

    rng = random.Random(seed)
    source = _random_loop_program(rng)
    outcome = Pipeline().analyze(source)
    program = outcome.program
    for n in range(0, 5):
        for m in (-2, 0, 2):
            result = run_program(program, {"n": n, "m": m})
            for loop in program.loops():
                if loop.post is None:
                    continue
                for env in result.loop_exit_envs.get(loop.label, []):
                    assert eval_pred(loop.post, env), (
                        f"unsound post {loop.post} for inputs n={n} m={m}"
                        f"\n{source}"
                    )
