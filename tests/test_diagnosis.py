"""Tests for abduction, query formation, oracles and the Figure 6 engine."""

import pytest

from repro.abstract import annotate_program
from repro.analysis import analyze_program
from repro.diagnosis import (
    Abducer,
    Answer,
    ChainOracle,
    DiagnosisEngine,
    EngineConfig,
    ExhaustiveOracle,
    FunctionOracle,
    InteractiveOracle,
    QueryRenderer,
    SamplingOracle,
    ScriptedOracle,
    Verdict,
    decompose_invariant,
    decompose_witness,
    diagnose_error,
    pi_p,
    pi_w,
)
from repro.lang import parse_program
from repro.logic import (
    Var,
    VarKind,
    conj,
    ge,
    neg,
    parse_formula,
)
from repro.smt import SmtSolver

FOO = '''
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) {
    i = i + 1;
    j = j + i;
  } @post(i >= 0 && i > n)
  var z = k + i + j;
  assert(z > 2 * n);
}
'''


@pytest.fixture(scope="module")
def foo_analysis():
    return analyze_program(parse_program(FOO))


class TestAbductionDefinitions:
    """Every abduction must satisfy Definitions 1/8 exactly."""

    def test_proof_obligation_definition(self, foo_analysis):
        inv, phi = foo_analysis.invariants, foo_analysis.success
        abducer = Abducer()
        gamma = abducer.proof_obligation(inv, phi, pi_p(inv, phi))
        assert gamma is not None
        solver = SmtSolver()
        assert solver.entails(conj(gamma.formula, inv), phi)
        assert solver.is_sat(conj(gamma.formula, inv))
        assert not gamma.is_trivial

    def test_failure_witness_definition(self, foo_analysis):
        inv, phi = foo_analysis.invariants, foo_analysis.success
        abducer = Abducer()
        upsilon = abducer.failure_witness(inv, phi, pi_w(inv, phi))
        assert upsilon is not None
        solver = SmtSolver()
        assert solver.entails(conj(upsilon.formula, inv), neg(phi))
        assert solver.is_sat(conj(upsilon.formula, inv))

    def test_obligation_prefers_abstraction_vars(self, foo_analysis):
        """Pi_p makes input-variable queries expensive, so the obligation
        should avoid inputs when an abstraction-only obligation exists."""
        inv, phi = foo_analysis.invariants, foo_analysis.success
        gamma = Abducer().proof_obligation(inv, phi, pi_p(inv, phi))
        assert all(v.is_abstraction for v in gamma.formula.free_vars())

    def test_witness_consistency_with_learned_witnesses(self, foo_analysis):
        """A proof obligation must stay consistent with learned witnesses:
        if we already know !flag executions with i+j < 0 exist... the MSA
        must not propose an obligation those witnesses refute."""
        inv, phi = foo_analysis.invariants, foo_analysis.success
        abducer = Abducer()
        first = abducer.proof_obligation(inv, phi, pi_p(inv, phi))
        witness = neg(first.formula)
        second = abducer.proof_obligation(
            inv, phi, pi_p(inv, phi), witnesses=[witness]
        )
        if second is not None:
            solver = SmtSolver()
            # the new obligation must be satisfiable together with the
            # witness (individually)
            assert solver.is_sat(conj(second.formula, witness)) or \
                solver.is_sat(conj(second.formula, inv))

    def test_simplification_removes_known_facts(self, foo_analysis):
        inv, phi = foo_analysis.invariants, foo_analysis.success
        with_simp = Abducer(use_simplification=True).proof_obligation(
            inv, phi, pi_p(inv, phi)
        )
        without = Abducer(use_simplification=False).proof_obligation(
            inv, phi, pi_p(inv, phi)
        )
        assert with_simp.formula.size() <= without.formula.size()


class TestDecomposition:
    def test_invariant_splits_on_cnf(self):
        gamma = parse_formula("x >= 0 && y >= 0")
        clauses = decompose_invariant(gamma)
        assert len(clauses) == 2

    def test_witness_splits_on_dnf(self):
        upsilon = parse_formula("x < 0 || y < 0")
        clauses = decompose_witness(upsilon)
        assert len(clauses) == 2

    def test_atomic_passthrough(self):
        gamma = parse_formula("x >= 0")
        assert decompose_invariant(gamma) == [gamma]


class TestRendering:
    def test_query_uses_program_names(self, foo_analysis):
        renderer = QueryRenderer(foo_analysis)
        alpha_j = next(v for v in foo_analysis.all_vars
                       if v.name == "j@loop1")
        nu_n = foo_analysis.input_vars["n"]
        from repro.logic import LinTerm

        query = renderer.invariant_query(
            ge(LinTerm.var(alpha_j), LinTerm.var(nu_n))
        )
        assert "j" in query.text and "n" in query.text
        assert "j@loop1" not in query.text
        assert any("after the loop" in note for note in query.notes)

    def test_witness_chain_subquestions(self, foo_analysis):
        renderer = QueryRenderer(foo_analysis)
        clause = parse_formula("a < 0 && b < 0")
        query = renderer.witness_query(clause)
        assert len(query.subquestions) == 2
        assert "same execution" in query.subquestions[1]

    def test_atom_formatting_moves_negatives(self, foo_analysis):
        renderer = QueryRenderer(foo_analysis)
        formula = parse_formula("x - y <= 0")
        text = renderer.format_formula(formula)
        assert text == "x <= y"


class TestEngine:
    def test_paper_flow_single_yes(self, foo_analysis):
        oracle = ScriptedOracle(["yes"])
        result = diagnose_error(foo_analysis, oracle)
        assert result.verdict is Verdict.DISCHARGED
        assert result.classification == "false alarm"
        assert result.num_queries == 1

    def test_no_answers_strengthen_and_continue(self, foo_analysis):
        # answer no to everything: the engine keeps going and eventually
        # degenerates toward the success condition; with all-no answers
        # on a correct program, it must not mis-validate
        oracle = ScriptedOracle([], default=Answer.NO)
        result = diagnose_error(
            foo_analysis, oracle, EngineConfig(max_rounds=6)
        )
        # all-no answers are *invalid* for a correct program; the engine
        # may validate (garbage in) but must terminate
        assert result.verdict in (Verdict.VALIDATED, Verdict.UNRESOLVED,
                                  Verdict.DISCHARGED)

    def test_unknown_answers_lead_to_unresolved(self, foo_analysis):
        oracle = ScriptedOracle([], default=Answer.UNKNOWN)
        result = diagnose_error(
            foo_analysis, oracle, EngineConfig(max_rounds=5)
        )
        assert result.verdict is Verdict.UNRESOLVED
        assert result.classification == "unknown"

    def test_ground_truth_discharges_foo(self, foo_analysis):
        program = parse_program(FOO)
        oracle = ExhaustiveOracle(program, foo_analysis, radius=5)
        result = diagnose_error(foo_analysis, oracle)
        assert result.verdict is Verdict.DISCHARGED

    def test_ground_truth_validates_buggy_variant(self):
        src = FOO.replace("assert(z > 2 * n);", "assert(z > 2 * n + 3);")
        program = annotate_program(parse_program(src))
        analysis = analyze_program(program)
        oracle = ExhaustiveOracle(program, analysis, radius=5)
        result = diagnose_error(analysis, oracle)
        assert result.verdict is Verdict.VALIDATED
        assert result.classification == "real bug"

    def test_immediate_discharge_without_queries(self):
        src = '''
        program safe(unsigned n) {
          var i;
          while (i < n) { i = i + 1; } @post(i >= 0)
          assert(i >= 0);
        }
        '''
        analysis = analyze_program(parse_program(src))
        result = diagnose_error(analysis, ScriptedOracle([]))
        assert result.verdict is Verdict.DISCHARGED
        assert result.immediate
        assert result.num_queries == 0

    def test_immediate_validation_without_queries(self):
        src = '''
        program doomed(unsigned n) {
          var i;
          while (i < n) { i = i + 1; } @post(i >= 0)
          assert(i < 0);
        }
        '''
        analysis = analyze_program(parse_program(src))
        result = diagnose_error(analysis, ScriptedOracle([]))
        assert result.verdict is Verdict.VALIDATED
        assert result.immediate

    def test_queries_do_not_repeat(self, foo_analysis):
        seen = []

        def answer(query):
            assert query.formula not in seen, "query repeated"
            seen.append(query.formula)
            return Answer.NO

        result = diagnose_error(
            foo_analysis, FunctionOracle(answer), EngineConfig(max_rounds=4)
        )
        assert result.rounds <= 4

    def test_trivial_abduction_ablation(self, foo_analysis):
        """A2: with abduction disabled the query is the success condition
        itself — massively more complex."""
        clever = diagnose_error(
            foo_analysis, ScriptedOracle(["yes"], default=Answer.UNKNOWN),
            EngineConfig(max_rounds=1),
        )
        trivial = diagnose_error(
            foo_analysis, ScriptedOracle([], default=Answer.UNKNOWN),
            EngineConfig(use_abduction=False, max_rounds=1),
        )
        clever_size = max(
            (i.query.formula.size() for i in clever.interactions), default=0
        )
        trivial_size = max(
            (i.query.formula.size() for i in trivial.interactions), default=0
        )
        assert clever_size < trivial_size


class TestOracles:
    def test_sampling_oracle_confirms_witness(self):
        src = '''
        program buggy(x) {
          var y = x + 1;
          assert(y != 0);
        }
        '''
        program = parse_program(src)
        analysis = analyze_program(program)
        result = diagnose_error(
            analysis, SamplingOracle(program, analysis, samples=300)
        )
        # x = -1 refutes the assertion; sampling finds it and validates
        assert result.verdict is Verdict.VALIDATED

    def test_chain_oracle_falls_through(self):
        always_unknown = FunctionOracle(lambda q: Answer.UNKNOWN)
        always_yes = FunctionOracle(lambda q: Answer.YES)
        chain = ChainOracle([always_unknown, always_yes])

        class Dummy:
            pass

        assert chain.answer(Dummy()) is Answer.YES

    def test_interactive_oracle_parses(self):
        answers = iter(["banana", "YES"])
        printed = []
        oracle = InteractiveOracle(
            input_fn=lambda prompt: next(answers),
            print_fn=lambda *args: printed.append(" ".join(map(str, args))),
        )
        from repro.diagnosis.queries import Query
        from repro.logic import parse_formula

        query = Query("invariant", parse_formula("x >= 0"), "Is x >= 0?")
        assert oracle.answer(query) is Answer.YES
        assert any("please answer" in str(p) for p in printed)

    def test_answer_parsing(self):
        assert Answer.parse("Y") is Answer.YES
        assert Answer.parse("no") is Answer.NO
        assert Answer.parse("don't know") is Answer.UNKNOWN
        with pytest.raises(ValueError):
            Answer.parse("maybe")
