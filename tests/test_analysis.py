"""Tests for the Section 3 symbolic analysis.

The marquee property (and the paper's central claim about the analysis):
on loop-free programs the analysis is *exact* — the success condition
``phi``, evaluated on the input variables, must coincide with the
concrete interpreter's outcome on every input.  This is differentially
tested on a corpus of hand-written programs and on randomly generated
loop-free programs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_program, ValueSet
from repro.lang import parse_program, run_program
from repro.logic import TRUE, LinTerm, Var, conj, ge, le, neg
from repro.smt import SmtSolver


def outcome_formula(analysis, inputs: dict[str, int]):
    """phi with input variables substituted by concrete inputs."""
    sub = {
        nu: LinTerm.constant(inputs[name])
        for name, nu in analysis.input_vars.items()
    }
    return analysis.success.substitute(sub)


class TestValueSets:
    def test_constant(self):
        vs = ValueSet.constant(5)
        assert len(vs) == 1

    def test_add_cross_product(self):
        x, y = Var("x"), Var("y")
        a = ValueSet.of([(LinTerm.constant(1), ge(x, 0)),
                         (LinTerm.constant(2), neg(ge(x, 0)))])
        b = ValueSet.of([(LinTerm.constant(10), ge(y, 0)),
                         (LinTerm.constant(20), neg(ge(y, 0)))])
        result = a.add(b)
        assert len(result) == 4

    def test_join_merges_equal_terms(self):
        x = Var("x")
        a = ValueSet.of([(LinTerm.constant(1), ge(x, 0))])
        b = ValueSet.of([(LinTerm.constant(1), neg(ge(x, 0)))])
        joined = a.join(b)
        assert len(joined) == 1
        assert joined.entries[0][1] is TRUE or joined.entries[0][1].is_true

    def test_guard_false_empties(self):
        from repro.logic import FALSE

        vs = ValueSet.constant(3).guard(FALSE)
        assert len(vs) == 0


class TestLoopFreeExactness:
    """phi must exactly predict the interpreter on loop-free programs."""

    PROGRAMS = [
        ("program p(x) { var y = x + 1; assert(y > x); }", True),
        ("program p(x) { var y = x - 1; assert(y > x); }", False),
        ('''
        program p(a, b) {
          var m;
          if (a > b) { m = a; } else { m = b; }
          assert(m >= a && m >= b);
        }
        ''', True),
        ('''
        program p(a, b) {
          var m;
          if (a > b) { m = a; } else { m = b; }
          assert(m > a);
        }
        ''', False),
        ('''
        program p(x) {
          var s;
          if (x > 0) { s = 1; } else { if (x < 0) { s = -1; } }
          assert(s * x >= 0);
        }
        ''', True),
    ]

    @pytest.mark.parametrize("src,always", PROGRAMS)
    def test_phi_matches_interpreter(self, src, always):
        program = parse_program(src)
        analysis = analyze_program(program)
        solver = SmtSolver()
        mismatch = []
        for trial in range(60):
            rng = random.Random(trial)
            inputs = {p.name: rng.randint(-8, 8)
                      for p in program.params}
            concrete = run_program(program, inputs).ok
            grounded = outcome_formula(analysis, inputs)
            # the grounded phi may mention abstraction vars (nonlinear);
            # on these loop-free linear programs it must be ground
            symbolic = solver.is_valid(grounded)
            if concrete != symbolic:
                mismatch.append(inputs)
        assert not mismatch, f"exactness violated on {mismatch}"

    def test_valid_assertion_discharged_outright(self):
        program = parse_program(self.PROGRAMS[0][0])
        analysis = analyze_program(program)
        solver = SmtSolver()
        assert solver.entails(analysis.invariants, analysis.success)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_random_loop_free_programs_exact(data):
    """Generate random loop-free programs; phi must match the interpreter."""
    rng_seed = data.draw(st.integers(0, 10_000))
    rng = random.Random(rng_seed)
    source = _random_program(rng)
    program = parse_program(source)
    analysis = analyze_program(program)
    solver = SmtSolver()
    for _ in range(10):
        inputs = {p.name: rng.randint(-5, 5) for p in program.params}
        concrete = run_program(program, inputs).ok
        grounded = analysis.success.substitute({
            nu: LinTerm.constant(inputs[name])
            for name, nu in analysis.input_vars.items()
        })
        assert solver.is_valid(grounded) == concrete, (
            source, inputs
        )


def _random_program(rng: random.Random) -> str:
    """A random loop-free, linear program over inputs a, b."""
    names = ["a", "b", "u", "v", "w"]

    def expr(depth=2) -> str:
        if depth == 0 or rng.random() < 0.4:
            if rng.random() < 0.5:
                return rng.choice(names)
            return str(rng.randint(-4, 4))
        op = rng.choice(["+", "-", "+"])
        return f"({expr(depth - 1)} {op} {expr(depth - 1)})"

    def cond() -> str:
        op = rng.choice(["<", ">", "<=", ">=", "==", "!="])
        return f"{expr(1)} {op} {expr(1)}"

    def stmt(depth) -> list[str]:
        choice = rng.random()
        target = rng.choice(names[2:])
        if choice < 0.5 or depth == 0:
            return [f"{target} = {expr()};"]
        then_body = "\n".join(stmt(depth - 1))
        else_body = "\n".join(stmt(depth - 1))
        return [
            f"if ({cond()}) {{ {then_body} }} else {{ {else_body} }}"
        ]

    body = "\n".join(
        line for _ in range(rng.randint(1, 4)) for line in stmt(2)
    )
    return f'''
    program rnd(a, b) {{
      var u, v, w;
      {body}
      assert({cond()});
    }}
    '''


class TestAbstractions:
    def test_loop_creates_abstractions(self):
        program = parse_program('''
        program p(n) {
          var i, j;
          while (i < n) { i = i + 1; j = j + 2; } @post(i >= 0)
          assert(j >= 0);
        }
        ''')
        analysis = analyze_program(program)
        alphas = [v for v in analysis.all_vars if v.is_abstraction]
        names = {v.name for v in alphas}
        assert "i@loop1" in names or "j@loop1" in names

    def test_nonlinear_square_fact(self):
        program = parse_program('''
        program p(x) {
          var y = x * x;
          assert(y >= 0);
        }
        ''')
        analysis = analyze_program(program)
        solver = SmtSolver()
        # x*x >= 0 is exactly what I records: error discharged outright
        assert solver.entails(analysis.invariants, analysis.success)

    def test_nonlinear_product_not_square(self):
        program = parse_program('''
        program p(x, y) {
          var z = x * y;
          assert(z >= 0);
        }
        ''')
        analysis = analyze_program(program)
        solver = SmtSolver()
        assert not solver.entails(analysis.invariants, analysis.success)
        assert not solver.entails(analysis.invariants,
                                  neg(analysis.success))

    def test_havoc_assumption_in_invariants(self):
        program = parse_program('''
        program p(x) {
          var y;
          havoc y @assume(y >= 3);
          assert(y >= 0);
        }
        ''')
        analysis = analyze_program(program)
        solver = SmtSolver()
        assert solver.entails(analysis.invariants, analysis.success)

    def test_unsigned_input_fact(self):
        program = parse_program(
            "program p(unsigned n) { assert(n >= 0); }"
        )
        analysis = analyze_program(program)
        solver = SmtSolver()
        assert solver.entails(analysis.invariants, analysis.success)

    def test_branch_facts_are_guarded(self):
        # the nonlinear fact from the then-branch must be guarded by the
        # branch condition, not asserted globally
        program = parse_program('''
        program p(flag, x) {
          var k;
          if (flag != 0) { k = x * x; } else { k = -1; }
          assert(k >= 0);
        }
        ''')
        analysis = analyze_program(program)
        solver = SmtSolver()
        # flag == 0 gives k = -1, so the assertion is refutable: neither
        # entailment may hold, but I must stay satisfiable
        assert solver.is_sat(analysis.invariants)
        assert not solver.entails(analysis.invariants, analysis.success)

    def test_provenance_recorded(self):
        program = parse_program('''
        program p(n) {
          var i;
          while (i < n) { i = i + 1; } @post(i >= 0)
          assert(i >= 0);
        }
        ''')
        analysis = analyze_program(program)
        loop_vars = [v for v, info in analysis.info.items()
                     if info.kind == "loop"]
        assert loop_vars
        info = analysis.info[loop_vars[0]]
        assert info.program_var == "i"
        assert info.label == 1
        assert "after the loop" in info.description
