"""Tests for the ``repro serve`` daemon: HTTP surface, coalescing,
admission control, the status contract, and the acceptance E2E (cold
round over HTTP == ``Pipeline.triage``; warm round runs nothing).
"""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.api import Pipeline
from repro.schema import (
    EXIT_DEGRADED,
    SCHEMA_VERSION,
    dump_json,
    read_envelope,
)
from repro.serve import AdmissionError, BadRequest, TriageService, TriageServer
from repro.suite import BENCHMARKS

SAFE = "program safe(x) { var y = x + 1; assert(y > x); }"
DOOMED = "program doomed(x) { var y = x; assert(y > x); }"


def _request(url: str, payload: dict | None = None):
    """POST ``payload`` (or GET when None); returns (status, body)."""
    if payload is None:
        req = urllib.request.Request(url)
    else:
        req = urllib.request.Request(
            url, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _await_job(base: str, job_id: str, timeout: float = 120.0):
    """Poll a job until it finishes; returns its final (status, body)."""
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, body = _request(f"{base}/v1/jobs/{job_id}")
        if body.get("status") == "done":
            return status, body
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in {timeout}s")


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    srv = TriageServer(
        port=0,
        cache_dir=str(tmp_path_factory.mktemp("serve-store")),
        max_inflight=32,
        workers=2,
    )
    srv.start()
    yield srv
    srv.shutdown()


# ---------------------------------------------------------------------------
# the acceptance E2E: cold round == Pipeline.triage, warm round is free
# ---------------------------------------------------------------------------

class TestEndToEnd:
    def test_cold_round_matches_pipeline_then_warm_round_is_free(
            self, server):
        base = server.url
        names = [b.name for b in BENCHMARKS]

        # --- cold: submit all 11 Figure 7 reports over HTTP ------------
        handles = {}
        for name in names:
            status, body = _request(f"{base}/v1/triage",
                                    {"benchmark": name})
            assert status in (200, 202), body
            handles[name] = body
        served = {}
        for name, body in handles.items():
            if "job_id" in body and body.get("status") != "done":
                _, body = _await_job(base, body["job_id"])
            served[name] = body
        for name, body in served.items():
            envelope = body["result"]
            assert envelope["schema"] == SCHEMA_VERSION
            assert envelope["kind"] == "triage_outcome"
            # every envelope survives the validator/upgrader round trip
            assert read_envelope(envelope)["verdict"] == \
                envelope["verdict"]

        # --- verdicts are byte-identical to Pipeline.triage ------------
        batch = Pipeline().triage(names, jobs=2)
        expected = {o.name: o.to_dict() for o in batch.outcomes}
        for name in names:
            ours, ref = served[name]["result"], expected[name]
            assert ours["verdict"].encode() == ref["verdict"].encode()
            assert ours.get("correct") == ref.get("correct")
            assert ours.get("expected") == ref.get("expected")

        # --- warm: the identical round runs nothing ---------------------
        before = obs.snapshot()["counters"]
        for name in names:
            status, body = _request(f"{base}/v1/triage",
                                    {"benchmark": name})
            assert status == 200, body
            assert body["served"] in ("cache", "store")
            assert body["result"]["verdict"] == \
                served[name]["result"]["verdict"]
        after = obs.snapshot()["counters"]
        assert after.get("msa.candidates", 0) == \
            before.get("msa.candidates", 0)
        for counter, value in after.items():
            if counter.startswith("cache.") and counter.endswith(".miss"):
                assert value == before.get(counter, 0), counter

        # --- the daemon stays live ---------------------------------------
        status, health = _request(f"{base}/healthz")
        assert status == 200 and health["status"] == "ok"
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
            assert r.headers["Content-Type"].startswith("text/plain")
            text = r.read().decode()
        assert "repro_serve_submitted_total" in text
        assert "repro_serve_inline_hits_total" in text


class TestHttpSurface:
    def test_adhoc_source_analysis(self, server):
        status, body = _request(f"{server.url}/v1/triage",
                                {"source": SAFE})
        if status == 202:
            status, body = _await_job(server.url, body["job_id"])
        assert status == 200
        assert body["result"]["verdict"] == "false alarm"

    def test_adhoc_real_bug_maps_exit_code(self, server):
        status, body = _request(f"{server.url}/v1/triage",
                                {"source": DOOMED})
        if status == 202:
            status, body = _await_job(server.url, body["job_id"])
        assert status == 200          # a verdict is an HTTP success
        assert body["exit_code"] == 1  # ...carrying the contract code
        assert body["result"]["verdict"] == "real bug"

    def test_bad_submissions_are_400(self, server):
        base = f"{server.url}/v1/triage"
        assert _request(base, {})[0] == 400
        assert _request(base, {"benchmark": "nope"})[0] == 400
        assert _request(base, {"source": "not a program ("})[0] == 400
        assert _request(base, {"source": SAFE,
                               "benchmark": "p10_toggle"})[0] == 400
        status, body = _request(base, {"source": SAFE,
                                       "limits": {"bogus_knob": 1}})
        assert status == 400 and "limits" in body["error"]

    def test_unknown_job_is_404(self, server):
        assert _request(f"{server.url}/v1/jobs/j999999")[0] == 404

    def test_unknown_route_is_404(self, server):
        assert _request(f"{server.url}/nope")[0] == 404

    def test_explain_round_trip(self, server):
        status, body = _request(
            f"{server.url}/v1/triage",
            {"benchmark": "d02_negate", "explain": True})
        assert status in (200, 202)
        job_id = body["job_id"]
        _await_job(server.url, job_id)
        status, body = _request(f"{server.url}/v1/jobs/{job_id}/explain")
        assert status == 200
        assert body["nodes"], "explain must record provenance nodes"
        assert "verdict" in body["tree"]


# ---------------------------------------------------------------------------
# coalescing + concurrent envelope access (no sockets: service level)
# ---------------------------------------------------------------------------

class TestCoalescing:
    def test_n_threads_one_job_byte_identical_envelopes(self, tmp_path):
        """The satellite contract: N identical submissions in flight
        yield one computation (coalescing counter == N-1) and, once
        done, every thread reads a byte-identical envelope through the
        /1->/2 upgrader and ``dump_json``."""
        service = TriageService(cache_dir=str(tmp_path / "store"),
                                max_inflight=4, workers=1)
        obs.reset()
        n = 8
        barrier = threading.Barrier(n)

        def submit(_):
            barrier.wait()
            return service.submit({"benchmark": "d01_plus_one"})

        # workers are not started yet, so all N submissions observe the
        # job in flight: the first creates it, the rest join it
        with ThreadPoolExecutor(max_workers=n) as pool:
            results = list(pool.map(submit, range(n)))
        statuses = sorted(status for status, _ in results)
        assert statuses == [202] * n
        job_ids = {body["job_id"] for _, body in results}
        assert len(job_ids) == 1
        counters = obs.snapshot()["counters"]
        assert counters.get("serve.coalesced", 0) == n - 1
        assert counters.get("serve.submitted", 0) == 1

        # now run it and read the envelope from N threads at once
        service.start()
        job_id = job_ids.pop()
        import time
        deadline = time.monotonic() + 60
        while service.registry.get(job_id).status != "done":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        service.stop()

        def read(_):
            status, body = service.job_status(job_id)
            upgraded = read_envelope(body["result"])
            return status, dump_json(upgraded).encode()

        with ThreadPoolExecutor(max_workers=n) as pool:
            payloads = list(pool.map(read, range(n)))
        assert len({blob for _, blob in payloads}) == 1
        assert all(status == 200 for status, _ in payloads)

    def test_concurrent_v1_upgrade_is_pure(self):
        """``read_envelope`` under the daemon's thread pool: same /1
        payload from N threads -> byte-identical /2 envelopes, input
        never mutated."""
        legacy = {"schema": "repro.result/1", "kind": "triage_outcome",
                  "verdict": "real bug", "name": "d02_negate"}
        frozen = json.dumps(legacy, sort_keys=True)

        def upgrade(_):
            return dump_json(read_envelope(legacy)).encode()

        with ThreadPoolExecutor(max_workers=16) as pool:
            blobs = set(pool.map(upgrade, range(64)))
        assert len(blobs) == 1
        upgraded = json.loads(blobs.pop())
        assert upgraded["schema"] == SCHEMA_VERSION
        assert upgraded["degraded"] is False
        assert json.dumps(legacy, sort_keys=True) == frozen


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_max_inflight_rejects_with_retry_after(self, tmp_path):
        service = TriageService(cache_dir=str(tmp_path / "store"),
                                max_inflight=1)
        # no workers started: the first job stays queued
        status, _ = service.submit({"benchmark": "d01_plus_one"})
        assert status == 202
        with pytest.raises(AdmissionError) as err:
            service.submit({"benchmark": "d02_negate"})
        assert err.value.inflight == 1
        assert err.value.limit == 1
        assert err.value.retry_after > 0
        # identical submissions still coalesce at the cap
        status, body = service.submit({"benchmark": "d01_plus_one"})
        assert status == 202 and body["coalesced"] is True

    def test_request_limits_clamp_to_server_budget(self, tmp_path):
        from repro.limits import Limits
        from repro.serve.service import _clamped_limits

        base = Limits(deadline=10.0, max_steps=1000, retries=2)
        merged = _clamped_limits(base, {"deadline": 99.0, "max_steps": 10,
                                        "retries": 5})
        assert merged.deadline == 10.0      # cannot exceed the server's
        assert merged.max_steps == 10       # may tighten
        assert merged.retries == 2
        assert _clamped_limits(base, None) is base
        with pytest.raises(BadRequest):
            _clamped_limits(base, {"no_such_field": 1})

    def test_shutdown_settles_queued_jobs_degraded(self, tmp_path):
        service = TriageService(cache_dir=str(tmp_path / "store"),
                                max_inflight=4)
        status, body = service.submit({"benchmark": "p01_accumulate"})
        assert status == 202
        service.stop(timeout=0.5)  # workers never started
        job = service.registry.get(body["job_id"])
        assert job.status == "done"
        assert job.exit_code == EXIT_DEGRADED
        assert "shut down" in job.error
        # ...and the degraded retained job is never served inline
        status, body2 = service.submit({"benchmark": "p01_accumulate"})
        assert status == 202
        assert body2["job_id"] != body["job_id"]


# ---------------------------------------------------------------------------
# observability: one trace id end-to-end, live SLOs, /metrics under load
# ---------------------------------------------------------------------------

class TestTraceObservability:
    def test_one_trace_id_links_envelope_logs_flights_metrics(
            self, server):
        """The acceptance E2E: a submission made under a caller-chosen
        traceparent finishes with that trace_id on the result envelope,
        its provenance nodes, its structured log lines, the flight-
        recorder entry, and the /metrics trace-info labels."""
        from repro.obs import logging as olog

        trace_hex = "deadbeefcafe4321"
        header = f"00-{trace_hex.rjust(32, '0')}-00f067aa0ba902b7-01"
        olog.configure(level="info")
        try:
            req = urllib.request.Request(
                f"{server.url}/v1/triage",
                data=json.dumps({"benchmark": "d01_plus_one",
                                 "explain": True}).encode(),
                headers={"Content-Type": "application/json",
                         "traceparent": header},
            )
            with urllib.request.urlopen(req, timeout=30) as resp:
                status, body = resp.status, json.loads(resp.read())
            assert status in (200, 202)
            assert body["trace_id"] == trace_hex
            job_id = body["job_id"]
            status, body = _await_job(server.url, job_id)
            # 1. the result envelope carries the trace id
            assert body["trace_id"] == trace_hex
            assert body["result"]["trace_id"] == trace_hex
            # 2. so do the provenance nodes behind the verdict
            status, explain = _request(
                f"{server.url}/v1/jobs/{job_id}/explain")
            assert status == 200
            assert explain["nodes"]
            assert all(n.get("trace") == trace_hex
                       for n in explain["nodes"])
            # 3. and the structured log lines still in the ring
            events = {r["event"]
                      for r in olog.records(trace=trace_hex)}
            assert {"serve.job_start", "serve.job_done"} <= events
            # 4. and the flight-recorder entry (with its logs joined)
            status, flight = _request(
                f"{server.url}/debug/traces/{trace_hex}")
            assert status == 200
            assert flight["trace_id"] == trace_hex
            assert flight["job_id"] == job_id
            assert flight["verdict"] == body["result"]["verdict"]
            assert any(r["event"] == "serve.job_done"
                       for r in flight["logs"])
            # 5. and the Prometheus trace-info labels
            status, _ = 200, None
            with urllib.request.urlopen(
                    f"{server.url}/metrics", timeout=30) as resp:
                text = resp.read().decode()
            assert f'repro_trace_info{{trace_id="{trace_hex}"' in text
        finally:
            olog.reset()

    def test_unknown_trace_is_404(self, server):
        assert _request(f"{server.url}/debug/traces/ffff0000")[0] == 404

    def test_statusz_reports_live_slos(self, server):
        # generate at least one request sample on a normalized route
        _request(f"{server.url}/healthz")
        status, body = _request(f"{server.url}/v1/statusz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["queue_depth"] >= 0
        assert 0.0 <= body["coalesce_rate"] <= 1.0
        assert body["flight_recorder"]["capacity"] > 0
        routes = body["routes"]
        assert "/healthz" in routes
        sample = routes["/healthz"]
        assert sample["count"] >= 1
        assert 0.0 <= sample["error_rate"] <= 1.0
        assert sample["p50_s"] <= sample["p95_s"] <= sample["p99_s"]
        # job-status routes are normalized, never literal ids
        assert all("/v1/jobs/j" not in route for route in routes)

    def test_metrics_counters_are_prometheus_compliant(self, server):
        with urllib.request.urlopen(f"{server.url}/metrics",
                                    timeout=30) as resp:
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
        lines = text.splitlines()
        counters = [line.split()[2] for line in lines
                    if line.startswith("# TYPE ")
                    and line.endswith(" counter")]
        assert counters, "no counters exported"
        for metric in counters:
            assert metric.endswith("_total")
            assert any(line.startswith(f"# HELP {metric} ")
                       for line in lines)

    def test_concurrent_scrapes_while_jobs_run(self, server):
        """Hammer /metrics from threads while jobs execute: every
        scrape parses, and counters are monotone across an ordered
        re-scrape (no torn reads of live state)."""
        def scrape():
            with urllib.request.urlopen(f"{server.url}/metrics",
                                        timeout=30) as resp:
                return resp.read().decode()

        def counters_of(text):
            out = {}
            for line in text.splitlines():
                if line.startswith("#") or "{" in line or not line:
                    continue
                name, _, value = line.partition(" ")
                if name.endswith("_total"):
                    out[name] = float(value)
            return out

        submissions = [{"source": SAFE + f"// scrape {i}"}
                       for i in range(4)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            jobs = [pool.submit(_request, f"{server.url}/v1/triage", s)
                    for s in submissions]
            scrapes = [pool.submit(scrape) for _ in range(16)]
            texts = [f.result() for f in scrapes]
            for f in jobs:
                status, body = f.result()
                if status == 202:
                    _await_job(server.url, body["job_id"])
        for text in texts:
            assert counters_of(text), "scrape yielded no counters"
        before = counters_of(scrape())
        after = counters_of(scrape())
        for name, value in before.items():
            assert after.get(name, 0.0) >= value, (
                f"counter {name} went backwards")
