"""Tests for the Figure 7 benchmark suite.

These are the calibration guarantees the evaluation rests on:

* every benchmark parses, annotates and analyzes;
* the analysis initially reports a *potential* error on all eleven
  (neither Lemma 1 nor Lemma 2 applies), as the paper states;
* the metadata classification matches ground truth established by
  exhaustive concrete execution over the oracle box;
* query-guided diagnosis with the ground-truth oracle reaches the
  correct classification within the paper's 1–3 query band (we allow up
  to 3).
"""

import itertools
import random

import pytest

from repro.diagnosis import ExhaustiveOracle, diagnose_error
from repro.lang import Havoc, HavocPolicy, Interpreter
from repro.logic import neg
from repro.smt import SmtSolver
from repro.suite import (
    BENCHMARKS,
    DIAGNOSTICS,
    Benchmark,
    benchmark_by_id,
    benchmark_by_name,
    load_analysis,
    load_program,
    load_source,
)

# analyses and diagnoses are expensive; share per-benchmark artifacts
_CACHE: dict[str, tuple] = {}
_DIAGNOSES: dict[str, object] = {}


def artifacts(bench: Benchmark):
    if bench.name not in _CACHE:
        _CACHE[bench.name] = load_analysis(bench)
    return _CACHE[bench.name]


def diagnosis(bench: Benchmark):
    if bench.name not in _DIAGNOSES:
        program, analysis = artifacts(bench)
        oracle = ExhaustiveOracle(program, analysis,
                                  radius=bench.oracle_radius)
        _DIAGNOSES[bench.name] = diagnose_error(analysis, oracle)
    return _DIAGNOSES[bench.name]


class TestRegistry:
    def test_eleven_problems(self):
        assert len(BENCHMARKS) == 11

    def test_three_diagnostics(self):
        assert len(DIAGNOSTICS) == 3

    def test_kind_split_matches_paper(self):
        # five real-style and six synthetic problems
        real = [b for b in BENCHMARKS if b.kind == "real"]
        synthetic = [b for b in BENCHMARKS if b.kind == "synthetic"]
        assert len(real) == 5 and len(synthetic) == 6

    def test_classification_split_matches_paper(self):
        bugs = [b for b in BENCHMARKS if b.classification == "real bug"]
        alarms = [b for b in BENCHMARKS if b.is_false_alarm]
        assert len(bugs) == 5 and len(alarms) == 6

    def test_paper_row_order(self):
        """Figure 7's per-row kind/classification must match exactly."""
        expected = [
            ("synthetic", "false alarm"), ("real", "false alarm"),
            ("synthetic", "false alarm"), ("real", "real bug"),
            ("real", "false alarm"), ("real", "false alarm"),
            ("real", "real bug"), ("synthetic", "false alarm"),
            ("synthetic", "real bug"), ("synthetic", "real bug"),
            ("synthetic", "real bug"),
        ]
        actual = [(b.kind, b.classification) for b in BENCHMARKS]
        assert actual == expected

    def test_lookup(self):
        assert benchmark_by_id(6).name == "p06_chroot"
        assert benchmark_by_name("p10_toggle").problem_id == 10
        with pytest.raises(KeyError):
            benchmark_by_id(99)
        with pytest.raises(KeyError):
            benchmark_by_name("nope")

    def test_sources_load(self):
        for bench in BENCHMARKS + DIAGNOSTICS:
            source = load_source(bench)
            assert "program" in source and "assert" in source


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
class TestPerBenchmark:
    def test_initially_inconclusive(self, bench):
        _, analysis = artifacts(bench)
        solver = SmtSolver()
        assert not solver.entails(analysis.invariants, analysis.success), (
            "analysis must not discharge the report outright"
        )
        assert not solver.entails(analysis.invariants,
                                  neg(analysis.success)), (
            "analysis must not validate the report outright"
        )

    def test_ground_truth_matches_classification(self, bench):
        program, _ = artifacts(bench)
        has_havoc = any(
            isinstance(s, Havoc) for s in program.body.walk()
        )
        rounds = 8 if has_havoc else 1
        radius = bench.oracle_radius
        failing = 0
        ranges = []
        for p in program.params:
            low = 0 if p.unsigned else -radius
            ranges.append(range(low, radius + 1))
        for combo in itertools.product(*ranges):
            inputs = dict(zip(program.param_names(), combo))
            for seed in range(rounds):
                interp = Interpreter(
                    havoc_policy=HavocPolicy(random.Random(seed))
                )
                if not interp.run(program, inputs).ok:
                    failing += 1
        truth = "real bug" if failing else "false alarm"
        assert truth == bench.classification

    def test_diagnosis_resolves_correctly(self, bench):
        result = diagnosis(bench)
        assert result.classification == bench.classification

    def test_query_count_in_paper_band(self, bench):
        """Paper: 'ranging from one to three questions on these
        benchmarks'."""
        result = diagnosis(bench)
        assert 1 <= result.num_queries <= 3, (
            f"{bench.name} took {result.num_queries} queries"
        )


class TestDiagnostics:
    def test_diagnostics_are_trivial(self):
        """The screening problems must be decidable by the analysis alone
        or by a single obvious look: here we just check the ground truth
        labels are right."""
        for bench in DIAGNOSTICS:
            program = load_program(bench)
            radius = 5
            failing = 0
            ranges = []
            for p in program.params:
                low = 0 if p.unsigned else -radius
                ranges.append(range(low, radius + 1))
            for combo in itertools.product(*ranges):
                inputs = dict(zip(program.param_names(), combo))
                interp = Interpreter()
                if not interp.run(program, inputs).ok:
                    failing += 1
            truth = "real bug" if failing else "false alarm"
            assert truth == bench.classification
