"""Tests for the octagon domain (sum/difference constraints)."""

import random

import pytest

from repro.abstract import annotate_program, infer_loop_posts
from repro.abstract.octagons import Octagon, _octagon_form
from repro.lang import eval_pred, parse_program, run_program
from repro.lang.ast import BinOp, Cmp, Const, Name


def cmp(op, left, right):
    return Cmp(op, left, right)


class TestBounds:
    def test_unary_bounds(self):
        octagon = Octagon.top(("x",))
        octagon.set_upper("x", 5)
        octagon.set_lower("x", -2)
        assert octagon.upper("x") == 5
        assert octagon.lower("x") == -2

    def test_assume_constant(self):
        octagon = Octagon.top(("x",))
        octagon.assume(cmp("==", Name("x"), Const(3)))
        assert octagon.upper("x") == octagon.lower("x") == 3

    def test_contradiction_detected(self):
        octagon = Octagon.top(("x",))
        octagon.assume(cmp(">=", Name("x"), Const(5)))
        octagon.assume(cmp("<=", Name("x"), Const(4)))
        octagon.close()
        assert octagon.bottom


class TestSums:
    def test_sum_constraint_recorded(self):
        octagon = Octagon.top(("x", "y"))
        octagon.assume(
            cmp("<=", BinOp("+", Name("x"), Name("y")), Const(10))
        )
        facts = [str(f) for f in octagon.facts()]
        assert "(x + y) <= 10" in facts

    def test_sum_propagates_through_unary(self):
        octagon = Octagon.top(("x", "y"))
        octagon.assume(
            cmp(">=", BinOp("+", Name("x"), Name("y")), Const(10))
        )
        octagon.assume(cmp("<=", Name("x"), Const(3)))
        octagon.close()
        assert octagon.lower("y") == 7

    def test_zone_cannot_do_this(self):
        """The motivating case: a sum invariant between two variables."""
        from repro.abstract.zones import Zone

        zone = Zone.top(("x", "y"))
        zone.assume(cmp("<=", BinOp("+", Name("x"), Name("y")), Const(10)))
        zone_facts = [str(f) for f in zone.facts()]
        assert not any("x + y" in f or "(x + y)" in f for f in zone_facts)


class TestAssignments:
    def test_constant_assignment(self):
        octagon = Octagon.top(("x",))
        octagon.assign("x", Const(4))
        assert octagon.upper("x") == octagon.lower("x") == 4

    def test_shift_assignment(self):
        octagon = Octagon.top(("x",))
        octagon.assign("x", Const(4))
        octagon.assign("x", BinOp("+", Name("x"), Const(3)))
        assert octagon.upper("x") == octagon.lower("x") == 7

    def test_negation_assignment(self):
        octagon = Octagon.top(("x",))
        octagon.assign("x", Const(4))
        octagon.assign("x", BinOp("-", Const(0), Name("x")))
        assert octagon.upper("x") == octagon.lower("x") == -4

    def test_copy_assignment_links_vars(self):
        octagon = Octagon.top(("x", "y"))
        octagon.assume(cmp(">=", Name("y"), Const(2)))
        octagon.assign("x", Name("y"))
        octagon.close()
        assert octagon.lower("x") == 2

    def test_octagon_form_recognizer(self):
        assert _octagon_form(Const(3)) == (None, 1, 3)
        assert _octagon_form(Name("y")) == ("y", 1, 0)
        assert _octagon_form(BinOp("+", Name("y"), Const(2))) == ("y", 1, 2)
        assert _octagon_form(BinOp("-", Const(5), Name("y"))) == ("y", -1, 5)
        assert _octagon_form(BinOp("+", Name("x"), Name("y"))) is None


class TestLattice:
    def test_join_keeps_common_sum(self):
        a = Octagon.top(("x", "y"))
        a.assume(cmp("==", Name("x"), Const(1)))
        a.assume(cmp("==", Name("y"), Const(4)))
        b = Octagon.top(("x", "y"))
        b.assume(cmp("==", Name("x"), Const(3)))
        b.assume(cmp("==", Name("y"), Const(2)))
        joined = a.join(b)
        facts = [str(f) for f in joined.facts()]
        assert "(x + y) <= 5" in facts
        assert "(x + y) >= 5" in facts

    def test_widen_terminates_growth(self):
        a = Octagon.top(("x",))
        a.set_upper("x", 2)
        b = Octagon.top(("x",))
        b.set_upper("x", 3)
        widened = a.widen(b)
        assert widened.upper("x") is None


class TestAnnotation:
    def test_octagon_finds_conserved_sum(self):
        """A transfer loop conserves x + y == 5 — a two-variable sum fact
        that intervals and zones cannot express."""
        program = parse_program("""
        program drain(unsigned n) {
          var x, y;
          x = 5;
          while (y < n) {
            if (x > 0) { x = x - 1; y = y + 1; } else { y = n; }
          }
          assert(x >= 0);
        }
        """)
        posts = infer_loop_posts(program, ("octagon",))
        rendered = " && ".join(str(f) for f in posts[1])
        assert "(x + y)" in rendered, rendered
        # and the same program under zones has no sum fact
        zone_posts = infer_loop_posts(program, ("zone",))
        zone_rendered = " && ".join(str(f) for f in zone_posts[1])
        assert "(x + y)" not in zone_rendered

    @pytest.mark.parametrize("src", [
        """
        program sum(unsigned n) {
          var i, j;
          while (i <= n) { i = i + 1; j = j + 1; }
          assert(j >= 0);
        }
        """,
        """
        program swapish(unsigned n) {
          var a, b, t;
          a = n;
          while (a > 0) { a = a - 1; b = b + 1; }
          assert(b >= 0);
        }
        """,
    ])
    def test_octagon_posts_sound(self, src):
        program = parse_program(src)
        annotated = annotate_program(program, ("octagon",))
        rng = random.Random(5)
        for _ in range(30):
            inputs = {p.name: rng.randint(0, 6) for p in program.params}
            result = run_program(annotated, inputs)
            for loop in annotated.loops():
                if loop.post is None:
                    continue
                for env in result.loop_exit_envs.get(loop.label, []):
                    assert eval_pred(loop.post, env), (
                        loop.post, env, inputs
                    )
