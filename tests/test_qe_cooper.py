"""Tests for Cooper quantifier elimination.

The central property: eliminating ``exists x`` must produce a formula that
(a) is implied by any boxed witness (soundness over the box) and (b) when
true under an environment, admits a genuine integer witness for x — the
witness search uses the independent SMT stack, so the two procedures
cross-validate each other.
"""

from hypothesis import given, settings

from repro.logic import (
    LinTerm,
    Var,
    conj,
    disj,
    dvd,
    eq,
    exists,
    forall,
    ge,
    gt,
    is_quantifier_free,
    le,
    lt,
    ne,
    parse_formula,
)
from repro.qe import (
    decide_closed,
    eliminate_exists,
    eliminate_forall,
    eliminate_quantifiers,
    project,
)
from repro.smt import SmtSolver
from .helpers import enumerate_box
from .strategies import VARS, formulas

x, y, z = Var("x"), Var("y"), Var("z")


class TestEliminateExists:
    def test_trivial_bounds(self):
        # exists x. 0 <= x <= 5 : true
        result = eliminate_exists([x], conj(ge(x, 0), le(x, 5)))
        assert result.is_true or result.evaluate({})

    def test_empty_interval(self):
        result = eliminate_exists([x], conj(ge(x, 5), le(x, 4)))
        assert result.is_false or not result.evaluate({})

    def test_projection_keeps_relation(self):
        # exists x. y <= x <= z   <=>   y <= z
        phi = conj(ge(LinTerm.var(x), LinTerm.var(y)),
                   le(LinTerm.var(x), LinTerm.var(z)))
        result = eliminate_exists([x], phi)
        solver = SmtSolver()
        assert solver.equivalent(result, le(LinTerm.var(y), LinTerm.var(z)))

    def test_scaled_projection(self):
        # exists x. 2x = y   <=>   2 | y
        phi = eq(LinTerm.var(x, 2), LinTerm.var(y))
        result = eliminate_exists([x], phi)
        solver = SmtSolver()
        assert solver.equivalent(result, dvd(2, LinTerm.var(y)))

    def test_divisibility_interaction(self):
        # exists x. (2 | x) and (3 | x) and y <= x <= y+5  <=>  one of
        # y..y+5 is divisible by 6: always true
        phi = conj(
            dvd(2, LinTerm.var(x)),
            dvd(3, LinTerm.var(x)),
            ge(LinTerm.var(x), LinTerm.var(y)),
            le(LinTerm.var(x), LinTerm.var(y) + 5),
        )
        result = eliminate_exists([x], phi)
        solver = SmtSolver()
        assert solver.is_valid(result)

    def test_result_is_quantifier_free(self):
        phi = conj(ge(LinTerm.var(x), LinTerm.var(y)), le(x, 10))
        assert is_quantifier_free(eliminate_exists([x], phi))


class TestEliminateForall:
    def test_forall_bound(self):
        # forall x. x >= y -> x >= z   <=>   z <= y ... (over integers)
        phi = le(LinTerm.var(y), LinTerm.var(x)).implies(
            le(LinTerm.var(z), LinTerm.var(x))
        )
        result = eliminate_forall([x], phi)
        solver = SmtSolver()
        assert solver.equivalent(result, le(LinTerm.var(z), LinTerm.var(y)))

    def test_lemma3_paper_example2(self):
        """The paper's Example 2: eliminating forall nu1, nu2, alpha_i from
        I => phi yields (after simplification) alpha_j >= 0."""
        inv = parse_formula("ai >= 0 && ai > n2")
        phi = parse_formula(
            "(n2 + ai + aj > 2*n2 && n2 > 0 && n1 > 0) ||"
            " (1 + ai + aj > 2*n2 && n2 <= 0 && n1 > 0) ||"
            " (2*n2 + 1 > 2*n2 && n1 <= 0)"
        )
        imp = inv.implies(phi)
        to_eliminate = [v for v in imp.free_vars() if v.name != "aj"]
        gamma = eliminate_forall(to_eliminate, imp)
        solver = SmtSolver()
        aj = Var("aj")
        assert solver.equivalent(gamma, ge(aj, 0))
        # and gamma is a proof obligation: consistent with I, discharges phi
        assert solver.entails(conj(gamma, inv), phi)
        assert solver.is_sat(conj(gamma, inv))


class TestDecideClosed:
    def test_every_integer_has_successor(self):
        assert decide_closed(
            forall([x], exists([y], eq(LinTerm.var(y), LinTerm.var(x) + 1)))
        )

    def test_no_half_integer(self):
        assert not decide_closed(
            exists([x], eq(LinTerm.var(x, 2), LinTerm.constant(1)))
        )

    def test_parity_covers(self):
        assert decide_closed(
            forall([x], disj(dvd(2, LinTerm.var(x)),
                             dvd(2, LinTerm.var(x) + 1)))
        )

    def test_dense_order_fails(self):
        # integers are not dense: exists a gap
        assert not decide_closed(
            forall([x], forall([y], lt(x, y).implies(
                exists([z], conj(lt(x, z), lt(z, y)))
            )))
        )

    def test_nested_alternation(self):
        # forall x exists y. 2y <= x < 2y + 2  (y = floor(x/2))
        assert decide_closed(
            forall([x], exists([y], conj(
                le(LinTerm.var(y, 2), LinTerm.var(x)),
                lt(LinTerm.var(x), LinTerm.var(y, 2) + 2),
            )))
        )


class TestProject:
    def test_project_removes_vars(self):
        phi = conj(eq(LinTerm.var(x), LinTerm.var(y) + 1), ge(y, 0))
        result = project(phi, {x})
        assert result.free_vars() <= {x}
        solver = SmtSolver()
        assert solver.equivalent(result, ge(x, 1))


@settings(max_examples=120, deadline=None)
@given(formulas(max_depth=2))
def test_cooper_sound_and_complete_on_box(phi):
    """For every env over the other vars (radius 3):
    - if some boxed x satisfies phi, the eliminated formula must hold;
    - if the eliminated formula holds, the SMT stack must find a witness x.
    """
    result = eliminate_exists([VARS[0]], phi)
    assert is_quantifier_free(result)
    assert VARS[0] not in result.free_vars()
    others = VARS[1:]
    solver = SmtSolver()
    for env in enumerate_box(others, 3):
        sub = {v: LinTerm.constant(c) for v, c in env.items()}
        grounded = phi.substitute(sub)          # only x free
        claimed = result.substitute(sub)
        claimed_value = (
            claimed.evaluate({}) if not claimed.free_vars() else None
        )
        assert claimed_value is not None
        has_witness = solver.is_sat(grounded)
        assert claimed_value == has_witness, (
            f"phi={phi}, env={env}, qe={result}"
        )
