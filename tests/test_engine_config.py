"""Engine configuration matrix: every EngineConfig combination must
resolve a representative problem correctly (the ablation knobs must not
break correctness, only change cost/query shape)."""

import itertools

import pytest

from repro.diagnosis import EngineConfig, ExhaustiveOracle, Verdict, \
    diagnose_error
from repro.suite import benchmark_by_name, load_analysis

CASES = [
    ("p10_toggle", "real bug"),
    ("p03_square", "false alarm"),
]

_ARTIFACTS: dict[str, tuple] = {}


def artifacts(name):
    if name not in _ARTIFACTS:
        bench = benchmark_by_name(name)
        program, analysis = load_analysis(bench)
        oracle = ExhaustiveOracle(program, analysis,
                                  radius=bench.oracle_radius)
        _ARTIFACTS[name] = (bench, analysis, oracle)
    return _ARTIFACTS[name]


@pytest.mark.parametrize("bench_name,expected", CASES)
@pytest.mark.parametrize("cost_model", ["paper", "uniform"])
@pytest.mark.parametrize("msa_strategy", ["branch_bound", "subsets"])
@pytest.mark.parametrize("use_simplification", [True, False])
def test_all_configs_resolve_correctly(bench_name, expected, cost_model,
                                       msa_strategy, use_simplification):
    _bench, analysis, oracle = artifacts(bench_name)
    config = EngineConfig(
        cost_model=cost_model,
        msa_strategy=msa_strategy,
        use_simplification=use_simplification,
        max_rounds=10,
    )
    result = diagnose_error(analysis, oracle, config)
    assert result.classification == expected


def test_trivial_abduction_still_sound(capsys):
    """Even with abduction disabled (A2), the ground-truth oracle steers
    the engine to the right verdict on a bug."""
    _bench, analysis, oracle = artifacts("p10_toggle")
    config = EngineConfig(use_abduction=False, max_rounds=10)
    result = diagnose_error(analysis, oracle, config)
    assert result.verdict is Verdict.VALIDATED


def test_max_rounds_zero_is_unresolved_for_uncertain():
    _bench, analysis, oracle = artifacts("p03_square")
    result = diagnose_error(analysis, oracle, EngineConfig(max_rounds=0))
    assert result.verdict is Verdict.UNRESOLVED
    assert result.num_queries == 0
