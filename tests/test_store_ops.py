"""Algebraic/semantic properties of symbolic stores and value sets.

A value set denotes a partial map from states to integers: entry
``(pi, g)`` gives value ``pi`` in states satisfying ``g``.  The tests
check that the Figure 2 operations respect that denotation on sampled
states.
"""

import random

from repro.analysis import Store, ValueSet
from repro.logic import FALSE, TRUE, LinTerm, Var, conj, ge, le, lt, neg

x, y = Var("x"), Var("y")


def denote(value_set, env):
    """The value a set denotes in a state (None if no guard matches)."""
    for pi, guard in value_set:
        if guard.is_true or guard.evaluate(env):
            return pi.evaluate(env)
    return None


def sample_envs():
    rng = random.Random(4)
    for _ in range(60):
        yield {x: rng.randint(-5, 5), y: rng.randint(-5, 5)}


GUARDED = ValueSet.of([
    (LinTerm.var(x), ge(x, 0)),
    (-LinTerm.var(x), lt(x, 0)),
])  # |x|
PLAIN = ValueSet.term(LinTerm.var(y) + 1)


class TestDenotation:
    def test_abs_denotation(self):
        for env in sample_envs():
            assert denote(GUARDED, env) == abs(env[x])

    def test_add_is_pointwise(self):
        combined = GUARDED.add(PLAIN)
        for env in sample_envs():
            assert denote(combined, env) == abs(env[x]) + env[y] + 1

    def test_sub_is_pointwise(self):
        combined = GUARDED.sub(PLAIN)
        for env in sample_envs():
            assert denote(combined, env) == abs(env[x]) - env[y] - 1

    def test_scale(self):
        scaled = GUARDED.scale(3)
        for env in sample_envs():
            assert denote(scaled, env) == 3 * abs(env[x])

    def test_compare_condition(self):
        cond = GUARDED.compare(PLAIN, lambda a, b: le(a, b))
        for env in sample_envs():
            expected = abs(env[x]) <= env[y] + 1
            assert cond.evaluate(env) == expected

    def test_guard_restricts_domain(self):
        restricted = GUARDED.guard(ge(y, 0))
        for env in sample_envs():
            value = denote(restricted, env)
            if env[y] >= 0:
                assert value == abs(env[x])
            else:
                assert value is None

    def test_join_covers_both_branches(self):
        left = ValueSet.constant(1).guard(ge(x, 0))
        right = ValueSet.constant(2).guard(lt(x, 0))
        joined = left.join(right)
        for env in sample_envs():
            expected = 1 if env[x] >= 0 else 2
            assert denote(joined, env) == expected

    def test_join_merges_identical_terms(self):
        left = ValueSet.constant(7).guard(ge(x, 0))
        right = ValueSet.constant(7).guard(lt(x, 0))
        joined = left.join(right)
        assert len(joined) == 1
        assert joined.entries[0][1].is_true or all(
            joined.entries[0][1].evaluate(env) for env in sample_envs()
        )


class TestStore:
    def test_store_guard_applies_to_all(self):
        store = Store({"a": GUARDED, "b": PLAIN})
        guarded = store.guard(ge(x, 2))
        for env in sample_envs():
            if env[x] >= 2:
                assert denote(guarded["a"], env) == abs(env[x])
            else:
                assert denote(guarded["a"], env) is None

    def test_store_join_unions_domains(self):
        left = Store({"a": ValueSet.constant(1).guard(ge(x, 0))})
        right = Store({"a": ValueSet.constant(2).guard(lt(x, 0)),
                       "b": PLAIN})
        joined = left.join(right)
        assert set(joined) == {"a", "b"}

    def test_empty_guard_false(self):
        store = Store({"a": GUARDED})
        emptied = store.guard(FALSE)
        assert len(emptied["a"]) == 0
