"""The persistent content-addressed store and warm/incremental
re-triage.

The acceptance bar for the caching layer: a warm-cache re-triage of the
full Figure 7 suite must perform **zero** MSA and QE recomputation —
observable as obs counters — while producing byte-identical verdicts to
the cold run; ``incremental`` mode must recompute only reports whose
``(I, phi)`` judgment digest changed.
"""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro import obs
from repro.batch import triage_many
from repro.cache import (
    STORE_VERSION,
    CacheStore,
    current_store,
    open_store,
    use_store,
)
from repro.logic.digest import DIGEST_VERSION
from repro.qe.cooper import clear_qe_caches
from repro.suite import BENCHMARKS

ALL_NAMES = [b.name for b in BENCHMARKS]


# ---------------------------------------------------------------------------
# store unit tests
# ---------------------------------------------------------------------------

class TestCacheStore:
    def test_roundtrip_and_counters(self, tmp_path):
        store = CacheStore(tmp_path / "cache")
        assert store.get("entail", "aa" * 16) is None           # miss
        store.put("entail", "aa" * 16, {"consistent": True})
        assert store.get("entail", "aa" * 16) == {"consistent": True}
        stats = store.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["puts"] == 1 and stats["entries"] == 1
        assert stats["stages"]["entail"]["hits"] == 1

    def test_layout_is_versioned(self, tmp_path):
        store = CacheStore(tmp_path / "cache")
        store.put("abduce", "bb" * 16, {"feasible": False})
        entry = tmp_path / "cache" / f"{STORE_VERSION}-{DIGEST_VERSION}" \
            / "abduce" / "bb" / (("bb" * 16) + ".json")
        assert entry.is_file()

    def test_corrupt_entry_is_a_miss_and_gets_deleted(self, tmp_path):
        store = CacheStore(tmp_path / "cache")
        store.put("entail", "cc" * 16, {"ok": 1})
        path = tmp_path / "cache" / f"{STORE_VERSION}-{DIGEST_VERSION}" \
            / "entail" / "cc" / (("cc" * 16) + ".json")
        path.write_bytes(b'{"truncated": ')          # crashed writer
        assert store.get("entail", "cc" * 16) is None
        assert not path.exists()                      # cannot poison later runs
        assert store.stats()["corrupt"] == 1
        # non-object JSON is corruption too
        store.put("entail", "dd" * 16, {"ok": 1})
        bad = path.parent.parent / "dd" / (("dd" * 16) + ".json")
        bad.write_text("[1, 2, 3]")
        assert store.get("entail", "dd" * 16) is None
        assert store.stats()["corrupt"] == 2

    def test_reopening_sees_previous_entries(self, tmp_path):
        CacheStore(tmp_path / "cache").put("smt-sat", "ee" * 16,
                                           {"sat": True})
        reopened = CacheStore(tmp_path / "cache")
        assert reopened.stats()["entries"] == 1
        assert reopened.get("smt-sat", "ee" * 16) == {"sat": True}

    def test_lru_eviction_keeps_recently_read_entries(self, tmp_path):
        store = CacheStore(tmp_path / "cache", max_entries=10)
        keys = [f"{i:02d}" * 16 for i in range(10)]
        for i, key in enumerate(keys):
            store.put("entail", key, {"i": i})
            # explicit, strictly increasing mtimes: the filesystem clock
            # is too coarse to order a tight loop by itself
            os.utime(store._path("entail", key), (1000.0 + i, 1000.0 + i))
        # refresh the oldest entry well past every other mtime...
        store.get("entail", keys[0])
        os.utime(store._path("entail", keys[0]), (2000.0, 2000.0))
        # ...then overflow: eviction drops to 90% by recency
        store.put("entail", "ff" * 16, {"i": 99})
        stats = store.stats()
        assert stats["entries"] <= 10
        assert stats["evictions"] >= 1
        assert store.get("entail", keys[0]) is not None   # refreshed: kept
        assert store.get("entail", keys[1]) is None       # oldest: evicted

    def test_shared_root_eviction_spares_peer_fresh_writes(self, tmp_path):
        """Two stores on one root (the fleet's shared-cache shape), both
        at the eviction watermark: a store evicting must never unlink an
        entry its peer just wrote — the mtime re-check against the scan
        start guarantees a put followed by a get always hits."""
        root = tmp_path / "shared"
        flooder = CacheStore(root, max_entries=30)
        writer = CacheStore(root, max_entries=30)
        hot = [f"{i:02d}" * 16 for i in range(10)]
        errors: list[BaseException] = []

        def flood():
            try:
                # unique keys: every put is fresh, so the store crosses
                # the watermark over and over and keeps evicting
                for i in range(200):
                    flooder.put("entail", f"{i:08x}" + "ab" * 12, {"i": i})
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def rewrite():
            try:
                for i in range(200):
                    key = hot[i % len(hot)]
                    writer.put("entail", key, {"i": i})
                    if writer.get("entail", key) is None:
                        raise AssertionError(
                            f"peer eviction dropped fresh write {key[:8]}")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=flood),
                   threading.Thread(target=rewrite)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert not errors, errors
        assert flooder.stats()["evictions"] >= 1  # the flood really evicted
        assert flooder.stats()["corrupt"] == 0
        assert writer.stats()["corrupt"] == 0

    def test_clear_removes_entries_not_layout(self, tmp_path):
        store = CacheStore(tmp_path / "cache")
        store.put("entail", "aa" * 16, {"x": 1})
        store.clear()
        assert store.stats()["entries"] == 0
        assert store.get("entail", "aa" * 16) is None

    def test_counters_stream_into_obs(self, tmp_path):
        obs.reset()
        obs.enable()
        try:
            store = CacheStore(tmp_path / "cache")
            store.put("entail", "aa" * 16, {"x": 1})
            store.get("entail", "aa" * 16)
            store.get("entail", "bb" * 16)
            counters = obs.snapshot()["counters"]
            assert counters["cache.store.put"] == 1
            assert counters["cache.store.hit"] == 1
            assert counters["cache.store.miss"] == 1
            assert counters["cache.entail.hit"] == 1
        finally:
            obs.disable()
            obs.reset()


class TestActiveStore:
    def test_use_store_scopes_the_active_store(self, tmp_path):
        assert current_store() is None
        store = open_store(tmp_path / "cache")
        with use_store(store):
            assert current_store() is store
        assert current_store() is None

    def test_open_store_memoizes_per_path(self, tmp_path):
        first = open_store(tmp_path / "cache")
        assert open_store(tmp_path / "cache") is first
        assert open_store(tmp_path / "other") is not first

    def test_thread_scoped_binding_never_poisons_the_global(self, tmp_path):
        """Concurrent ``use_store_here`` scopes (the serve worker-thread
        shape) are invisible to other threads and leave the process-wide
        slot untouched — the global save/restore of ``use_store`` is not
        reentrant across threads, which is exactly why serve binds
        thread-locally."""
        from repro.cache import use_store_here

        store_a = open_store(tmp_path / "a")
        store_b = open_store(tmp_path / "b")
        errors: list[BaseException] = []
        barrier = threading.Barrier(2, timeout=10)

        def worker(store):
            try:
                for _ in range(200):
                    with use_store_here(store):
                        barrier.wait()
                        assert current_store() is store
                        barrier.wait()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in (store_a, store_b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert not errors, errors
        assert current_store() is None  # the global slot never moved


# ---------------------------------------------------------------------------
# warm re-triage of the full Figure 7 suite
# ---------------------------------------------------------------------------

def _verdict_bytes(result) -> bytes:
    """The verdict-bearing content of a batch, serialized canonically."""
    return json.dumps(
        [[o.name, o.classification, o.expected, o.num_queries, o.rounds]
         for o in result.outcomes],
        separators=(",", ":"),
    ).encode()


def _counter(result, name: str) -> int:
    return (result.telemetry or {}).get("counters", {}).get(name, 0)


class TestWarmRetriage:
    def test_warm_run_skips_all_msa_and_qe_work(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = triage_many(ALL_NAMES, jobs=1, telemetry=True,
                           cache_dir=cache_dir)
        assert cold.accuracy == 1.0
        assert _counter(cold, "msa.candidates") > 0       # real work happened
        assert _counter(cold, "qe.elim.miss") > 0

        # drop every in-process memo so only the disk store can answer
        clear_qe_caches()
        warm = triage_many(ALL_NAMES, jobs=1, telemetry=True,
                           cache_dir=cache_dir)
        assert _verdict_bytes(warm) == _verdict_bytes(cold)
        assert _counter(warm, "msa.candidates") == 0      # zero MSA recompute
        assert _counter(warm, "qe.elim.miss") == 0        # zero QE recompute
        assert _counter(warm, "cache.store.hit") > 0
        assert warm.cache is not None
        assert warm.cache["path"] == os.path.abspath(cache_dir)

    def test_outcomes_carry_cache_provenance(self, tmp_path):
        result = triage_many([ALL_NAMES[0]], jobs=1,
                             cache_dir=str(tmp_path / "cache"))
        block = result.outcomes[0].cache
        assert block is not None
        assert block["store"] == os.path.abspath(str(tmp_path / "cache"))
        assert set(block) >= {"invariants_digest", "success_digest",
                              "hits", "misses", "puts"}
        payload = result.outcomes[0].to_dict()
        assert payload["cache"]["invariants_digest"] == \
            block["invariants_digest"]


# ---------------------------------------------------------------------------
# incremental re-triage
# ---------------------------------------------------------------------------

class TestIncremental:
    def test_incremental_requires_cache_dir(self):
        with pytest.raises(ValueError, match="cache_dir"):
            triage_many(ALL_NAMES[:1], jobs=1, incremental=True)

    def test_second_run_serves_every_report_from_records(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        names = ALL_NAMES[:4]
        first = triage_many(names, jobs=1, telemetry=True,
                            cache_dir=cache_dir, incremental=True)
        second = triage_many(names, jobs=1, telemetry=True,
                             cache_dir=cache_dir, incremental=True)
        assert _verdict_bytes(second) == _verdict_bytes(first)
        assert _counter(second, "batch.reports_cached") == len(names)
        assert _counter(second, "smt.fresh_checks") == 0
        for outcome in second.outcomes:
            assert outcome.cache["analyze"] == "hit"
            assert outcome.cache["triage"] == "hit"

    def test_edited_benchmark_recomputes_only_itself(self, tmp_path,
                                                     monkeypatch):
        import repro.suite as suite_mod

        cache_dir = str(tmp_path / "cache")
        edited = "p03_square"
        names = ALL_NAMES
        baseline = triage_many(names, jobs=1, cache_dir=cache_dir,
                               incremental=True)
        assert baseline.accuracy == 1.0

        original = suite_mod.load_source

        def edited_source(bench):
            text = original(bench)
            if bench.name == edited:
                # a *semantic* edit: weaken the asserted bound, so the
                # judgment digest (not just the source digest) changes
                assert "assert(slack + 1 > 0)" in text
                text = text.replace("assert(slack + 1 > 0)",
                                    "assert(slack + 2 > 0)")
            return text

        monkeypatch.setattr(suite_mod, "load_source", edited_source)
        result = triage_many(names, jobs=1, telemetry=True,
                             cache_dir=cache_dir, incremental=True)
        assert _counter(result, "batch.reports_cached") == len(names) - 1
        by_name = {o.name: o for o in result.outcomes}
        assert by_name[edited].cache["triage"] == "miss"
        assert by_name[edited].cache["analyze"] == "miss"
        for name in names:
            if name != edited:
                assert by_name[name].cache["triage"] == "hit"

    def test_whitespace_edit_still_hits_via_judgment_digest(self, tmp_path,
                                                            monkeypatch):
        """An edit that does not change the judgment (I, phi) — e.g.
        reformatting — misses the ``analyze`` artifact but still resolves
        to the recorded verdict once the digests come back unchanged."""
        import repro.suite as suite_mod

        cache_dir = str(tmp_path / "cache")
        name = ALL_NAMES[0]
        triage_many([name], jobs=1, cache_dir=cache_dir, incremental=True)

        original = suite_mod.load_source
        monkeypatch.setattr(suite_mod, "load_source",
                            lambda bench: original(bench) + "\n\n")
        result = triage_many([name], jobs=1, telemetry=True,
                             cache_dir=cache_dir, incremental=True)
        block = result.outcomes[0].cache
        assert block["analyze"] == "miss"      # source digest changed...
        assert block["triage"] == "hit"        # ...but (I, phi) did not
        assert _counter(result, "batch.reports_cached") == 1
