"""Differential tests: the incremental context must agree with fresh
solving on every query, in any order, including the diagnosis engine's
monotone-invariant pattern and forced context resets."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import conj, disj, neg
from repro.smt import SmtSolver

from .strategies import formulas


@settings(max_examples=40, deadline=None)
@given(st.lists(formulas(max_depth=2), min_size=1, max_size=6))
def test_incremental_agrees_with_fresh_on_sequences(phis):
    incremental = SmtSolver(incremental=True)
    for phi in phis:
        assert incremental.is_sat(phi) == SmtSolver().is_sat(phi)


@settings(max_examples=25, deadline=None)
@given(st.lists(formulas(max_depth=2), min_size=2, max_size=5))
def test_monotone_strengthening_sequence(phis):
    """The engine's pattern: re-check a conjunction as it grows."""
    incremental = SmtSolver(incremental=True)
    acc = phis[0]
    for phi in phis[1:]:
        acc = conj(acc, phi)
        assert incremental.is_sat(acc) == SmtSolver().is_sat(acc)
        # interleave validity checks, as DiagnosisEngine.run does
        assert incremental.is_valid(disj(acc, neg(acc)))


@settings(max_examples=25, deadline=None)
@given(st.lists(formulas(max_depth=2), min_size=1, max_size=5))
def test_entailment_agrees(phis):
    incremental = SmtSolver(incremental=True)
    fresh = SmtSolver()
    for left, right in zip(phis, phis[1:] + phis[:1]):
        assert incremental.entails(left, right) == fresh.entails(left, right)


@settings(max_examples=15, deadline=None)
@given(st.lists(formulas(max_depth=2), min_size=2, max_size=6))
def test_forced_resets_preserve_verdicts(phis):
    """A context that resets after every check must still agree."""
    solver = SmtSolver(incremental=True)
    reference = SmtSolver()
    for phi in phis:
        verdict = solver.is_sat(phi)
        assert verdict == reference.is_sat(phi)
        if solver._context is not None:
            solver._context._max_clauses = 0   # next check resets
    stats = solver.context_stats()
    if stats is not None and stats["checks"] > 1:
        assert stats["resets"] >= stats["checks"] - 1


def test_context_reuses_encoding_across_checks():
    from repro.logic import le
    from repro.logic.terms import Var

    x, y = Var("x"), Var("y")
    solver = SmtSolver(incremental=True)
    base = disj(conj(le(x, 0), le(y, 0)), le(5, x))
    assert solver.is_sat(base)
    nodes_after_first = solver.context_stats()["encoded_nodes"]
    assert solver.is_sat(conj(base, le(1, y)))
    stats = solver.context_stats()
    # the shared subformula must not have been re-encoded
    assert stats["checks"] == 2
    assert stats["resets"] == 0
    assert stats["encoded_nodes"] > nodes_after_first  # only the new part


def test_fallback_path_still_answers():
    """IncrementalError must route to the fresh solver, not the caller."""
    from repro.logic import le
    from repro.logic.terms import Var
    from repro.smt.incremental import IncrementalError

    x = Var("x")

    class ExplodingContext:
        def check(self, phi):
            raise IncrementalError("synthetic failure")

    solver = SmtSolver(incremental=True)
    solver._context = ExplodingContext()
    assert solver.is_sat(conj(le(x, 5), le(3, x)))


def test_context_cache_stats_exposed():
    solver = SmtSolver(incremental=True)
    assert solver.context_stats() is None      # built lazily
    assert solver.cache_stats()["hits"] == 0
