"""Tests for the lexer and parser."""

import pytest

from repro.lang import (
    Assign,
    BinOp,
    BoolOp,
    Cmp,
    Havoc,
    If,
    ParseError,
    Skip,
    While,
    parse_program,
)

GOOD = '''
program demo(a, unsigned b) {
  var x = 1, y;
  // line comment
  if (a > 0) { x = x + a; } else { skip; }
  /* block
     comment */
  while (y < b) {
    y = y + 1;
  } @post(y >= 0)
  havoc x @assume(x >= -1 && x <= 3);
  assert(x + y >= -1);
}
'''


class TestParseGood:
    def test_structure(self):
        p = parse_program(GOOD)
        assert p.name == "demo"
        assert p.param_names() == ("a", "b")
        assert p.params[1].unsigned and not p.params[0].unsigned
        assert p.locals == ("x", "y")

    def test_statement_kinds(self):
        p = parse_program(GOOD)
        kinds = [type(s).__name__ for s in p.body.body]
        assert kinds == ["Assign", "If", "While", "Havoc"]

    def test_loop_annotation(self):
        p = parse_program(GOOD)
        loop = p.loops()[0]
        assert loop.label == 1
        assert loop.post is not None
        assert "y >= 0" in str(loop.post)

    def test_havoc_assume(self):
        p = parse_program(GOOD)
        havoc = [s for s in p.body.walk() if isinstance(s, Havoc)][0]
        assert havoc.target == "x"
        assert havoc.assume is not None

    def test_loop_labels_sequential(self):
        src = '''
        program two(n) {
          var i, j;
          while (i < n) { i = i + 1; }
          while (j < n) { j = j + 1; }
          assert(i >= j);
        }
        '''
        p = parse_program(src)
        assert [l.label for l in p.loops()] == [1, 2]

    def test_nested_loops(self):
        src = '''
        program nest(n) {
          var i, j, t;
          while (i < n) {
            j = 0;
            while (j < i) { j = j + 1; t = t + 1; }
            i = i + 1;
          }
          assert(t >= 0);
        }
        '''
        p = parse_program(src)
        loops = p.loops()
        assert len(loops) == 2  # walk() visits nested loops too
        outer = loops[0]
        inner = [s for s in outer.body.walk() if isinstance(s, While)]
        assert len(inner) == 1
        assert outer.modified_vars() == {"i", "j", "t"}

    def test_unary_minus_and_precedence(self):
        src = '''
        program m(x) {
          var y;
          y = -x + 2 * x - (x - 1);
          assert(y >= 0);
        }
        '''
        p = parse_program(src)
        assign = p.body.body[0]
        assert isinstance(assign, Assign)

    def test_spans_recorded(self):
        p = parse_program(GOOD)
        loop = p.loops()[0]
        assert loop.span.line == 8


class TestParseErrors:
    def test_missing_final_assert(self):
        with pytest.raises(ParseError, match="must end with"):
            parse_program("program p(x) { var y; y = x; }")

    def test_assert_not_last(self):
        src = '''
        program p(x) {
          var y;
          if (x > 0) { assert(x > 0); }
          assert(y == 0);
        }
        '''
        with pytest.raises(ParseError, match="final statement"):
            parse_program(src)

    def test_undeclared_variable(self):
        with pytest.raises(ParseError, match="not declared"):
            parse_program("program p(x) { y = 1; assert(x > 0); }")

    def test_duplicate_declaration(self):
        with pytest.raises(ParseError, match="already declared"):
            parse_program(
                "program p(x) { var x; assert(x > 0); }"
            )

    def test_duplicate_parameter(self):
        with pytest.raises(ParseError, match="duplicate parameter"):
            parse_program("program p(x, x) { assert(x > 0); }")

    def test_unknown_annotation(self):
        with pytest.raises(ParseError, match="unknown annotation"):
            parse_program(
                "program p(x) { var i; while (i < x) @foo { i = i + 1; } "
                "assert(i >= 0); }"
            )

    def test_unterminated_comment(self):
        with pytest.raises(ParseError, match="unterminated comment"):
            parse_program("program p(x) { /* oops assert(x > 0); }")

    def test_error_carets_render(self):
        try:
            parse_program("program p(x) { zz = 1; assert(x > 0); }")
        except ParseError as exc:
            rendered = str(exc)
            assert "zz" in rendered and "^" in rendered
        else:
            pytest.fail("expected ParseError")
