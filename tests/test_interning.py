"""Hash-consing: interning must be invisible except for speed.

Structural equality, hashing, normalization and pickling must behave
exactly as they did for plain structural nodes; on top of that, equal
nodes built independently must now be the *same* object.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import (
    FALSE,
    TRUE,
    LinTerm,
    Rel,
    Var,
    atom,
    conj,
    disj,
    dvd,
    neg,
)
from repro import obs
from repro.logic.formulas import And, Atom, Dvd, Not, Or, exists, forall
from repro.logic.intern import clear_intern_tables, intern_stats
from repro.qe.cooper import clear_qe_caches, eliminate_exists
from repro.smt import SmtSolver

from .strategies import VARS, atoms, formulas, lin_terms

X, Y, Z = VARS


def rebuild(phi):
    """Reconstruct a formula bottom-up through the smart constructors."""
    if phi.is_true or phi.is_false:
        return phi
    if isinstance(phi, Atom):
        return atom(phi.rel, LinTerm.make(list(phi.term.coeffs),
                                          phi.term.const))
    if isinstance(phi, Dvd):
        return dvd(phi.divisor, LinTerm.make(list(phi.term.coeffs),
                                             phi.term.const),
                   phi.negated_flag)
    if isinstance(phi, Not):
        return neg(rebuild(phi.arg))
    if isinstance(phi, And):
        return conj(*(rebuild(a) for a in phi.args))
    if isinstance(phi, Or):
        return disj(*(rebuild(a) for a in phi.args))
    raise TypeError(phi)


class TestIdentity:
    @given(lin_terms())
    def test_terms_intern_to_identity(self, t):
        copy = LinTerm.make(list(t.coeffs), t.const)
        assert copy == t
        assert copy is t
        assert hash(copy) == hash(t)

    @given(formulas())
    def test_rebuilt_formula_is_same_object(self, phi):
        assert rebuild(phi) is phi

    @given(formulas(), formulas())
    def test_equality_iff_identity(self, phi, psi):
        assert (phi == psi) == (phi is psi)

    def test_quantifiers_intern(self):
        body = atom(Rel.LE, LinTerm.make([(X, 1), (Y, -1)], 0))
        assert exists([X], body) is exists([X], body)
        assert forall([X], body) is forall([X], body)

    def test_constants_are_singletons(self):
        assert TRUE is type(TRUE)()
        assert FALSE is type(FALSE)()


class TestStructuralSemantics:
    """Interned nodes must still compare structurally (the fallback for
    nodes that escape the tables, e.g. across pickling boundaries)."""

    @given(formulas())
    def test_pickle_roundtrip_reinterns(self, phi):
        clone = pickle.loads(pickle.dumps(phi))
        assert clone == phi
        assert clone is phi          # __reduce__ goes through the interner

    @given(lin_terms())
    def test_term_pickle_roundtrip(self, t):
        clone = pickle.loads(pickle.dumps(t))
        assert clone == t and clone is t

    @given(atoms())
    def test_negation_is_involutive(self, a):
        assert neg(neg(a)) is a

    @given(atoms())
    def test_negated_memo_matches_fresh_computation(self, a):
        first = neg(a)
        # hit the memo a second time; also via the atom's own method
        assert neg(a) is first
        if isinstance(a, (Atom, Dvd)):
            assert a.negated() is first

    @given(atoms(), st.integers(-3, 3), st.integers(-3, 3),
           st.integers(-3, 3))
    def test_negation_semantics(self, a, x, y, z):
        env = {X: x, Y: y, Z: z}
        assert neg(a).evaluate(env) == (not a.evaluate(env))


class TestNormalization:
    """conj/disj/neg smart-constructor semantics survive interning."""

    @settings(max_examples=60)
    @given(formulas(max_depth=2), formulas(max_depth=2),
           st.integers(-2, 2), st.integers(-2, 2), st.integers(-2, 2))
    def test_conj_disj_semantics(self, phi, psi, x, y, z):
        env = {X: x, Y: y, Z: z}
        both = conj(phi, psi)
        either = disj(phi, psi)
        assert both.evaluate(env) == (phi.evaluate(env)
                                      and psi.evaluate(env))
        assert either.evaluate(env) == (phi.evaluate(env)
                                        or psi.evaluate(env))

    @given(formulas(max_depth=2))
    def test_conj_dedup_and_idempotence(self, phi):
        assert conj(phi, phi) is conj(phi)
        assert disj(phi, phi) is disj(phi)

    @given(atoms())
    def test_complementary_literals_fold(self, a):
        assert conj(a, neg(a)) is FALSE
        assert disj(a, neg(a)) is TRUE

    @settings(max_examples=60)
    @given(formulas(max_depth=2), st.integers(-2, 2), st.integers(-2, 2),
           st.integers(-2, 2))
    def test_neg_semantics(self, phi, x, y, z):
        env = {X: x, Y: y, Z: z}
        assert neg(phi).evaluate(env) == (not phi.evaluate(env))


class TestInternTables:
    def test_stats_report_registered_tables(self):
        stats = intern_stats()
        for name in ("LinTerm", "Atom", "Dvd", "And", "Or", "Not"):
            assert name in stats

    def test_clearing_preserves_correctness(self):
        a = atom(Rel.LE, LinTerm.make([(X, 1)], -3))
        clear_intern_tables()
        b = atom(Rel.LE, LinTerm.make([(X, 1)], -3))
        # `a` escaped the cleared table: identity is lost, but structural
        # equality and hashing must still hold
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        # and new constructions re-intern
        assert atom(Rel.LE, LinTerm.make([(X, 1)], -3)) is b


class TestDigestKeyedCaches:
    """Regression: the QE elimination cache and the SMT verdict cache
    are keyed by *content digest*, so structurally equal formulas built
    after ``clear_intern_tables()`` — or resurrected through a pickle
    round-trip, as the batch driver's forked workers do — must hit the
    caches instead of recomputing."""

    def setup_method(self):
        obs.reset()
        obs.enable()
        clear_qe_caches()

    def teardown_method(self):
        obs.disable()
        obs.reset()
        clear_qe_caches()

    @staticmethod
    def _phi():
        x, y, z = VARS
        return disj(
            atom(Rel.LE, LinTerm.make([(x, 1), (y, -2)], 3)),
            conj(atom(Rel.EQ, LinTerm.make([(y, 1), (z, 1)], -1)),
                 neg(atom(Rel.LE, LinTerm.make([(z, 1)], 0)))),
        )

    def test_smt_verdicts_hit_across_clear_and_pickle(self):
        solver = SmtSolver()
        verdict = solver.is_sat(self._phi())
        blob = pickle.dumps(self._phi())
        baseline = solver.cache_stats()

        clear_intern_tables()
        rebuilt = self._phi()            # fresh nodes, same content
        resurrected = pickle.loads(blob)
        assert solver.is_sat(rebuilt) is verdict
        assert solver.is_sat(resurrected) is verdict
        stats = solver.cache_stats()
        assert stats["misses"] == baseline["misses"]   # nothing recomputed
        assert stats["hits"] == baseline["hits"] + 2

    def test_qe_elimination_hits_across_clear_and_pickle(self):
        x = VARS[0]
        first = eliminate_exists([x], self._phi())
        blob = pickle.dumps(self._phi())
        before = dict(obs.snapshot().get("counters", {}))

        clear_intern_tables()
        again = eliminate_exists([x], self._phi())
        resurrected = eliminate_exists([x], pickle.loads(blob))
        after = obs.snapshot().get("counters", {})
        assert again == first and resurrected == first
        assert after.get("qe.elim.miss", 0) == before.get("qe.elim.miss", 0)
        assert after.get("qe.elim.hit", 0) > before.get("qe.elim.hit", 0)
