"""Tests for the CDCL SAT solver, including random-CNF differential tests
against exhaustive enumeration."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import SatSolver, luby


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        assignment = {v + 1: bits[v] for v in range(num_vars)}
        if all(
            any(
                assignment[abs(lit)] == (lit > 0) for lit in clause
            )
            for clause in clauses
        ):
            return assignment
    return None


def make_solver(num_vars, clauses):
    solver = SatSolver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver


class TestLuby:
    def test_prefix(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        assert [luby(i) for i in range(15)] == expected


class TestBasics:
    def test_empty_formula_sat(self):
        assert SatSolver().solve()

    def test_single_unit(self):
        solver = make_solver(1, [[1]])
        assert solver.solve()
        assert solver.model()[1] is True

    def test_contradictory_units(self):
        solver = make_solver(1, [[1], [-1]])
        assert not solver.solve()

    def test_simple_implication_chain(self):
        clauses = [[-1, 2], [-2, 3], [-3, 4], [1]]
        solver = make_solver(4, clauses)
        assert solver.solve()
        model = solver.model()
        assert model[1] and model[2] and model[3] and model[4]

    def test_tautology_ignored(self):
        solver = make_solver(2, [[1, -1], [2]])
        assert solver.solve()
        assert solver.model()[2]

    def test_duplicate_literals_collapse(self):
        solver = make_solver(1, [[1, 1, 1]])
        assert solver.solve()

    def test_out_of_range_literal(self):
        solver = SatSolver()
        solver.ensure_vars(1)
        with pytest.raises(ValueError):
            solver.add_clause([2])
        with pytest.raises(ValueError):
            solver.add_clause([0])


class TestPigeonhole:
    def _pigeonhole(self, holes):
        """holes+1 pigeons into `holes` holes: classic small UNSAT family."""
        pigeons = holes + 1
        var = lambda p, h: p * holes + h + 1
        clauses = []
        for p in range(pigeons):
            clauses.append([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return pigeons * holes, clauses

    @pytest.mark.parametrize("holes", [2, 3, 4])
    def test_unsat(self, holes):
        num_vars, clauses = self._pigeonhole(holes)
        solver = make_solver(num_vars, clauses)
        assert not solver.solve()

    def test_exact_fit_is_sat(self):
        # 3 pigeons, 3 holes, at-most-one per hole
        holes = 3
        var = lambda p, h: p * holes + h + 1
        clauses = [[var(p, h) for h in range(holes)] for p in range(3)]
        for h in range(holes):
            for p1 in range(3):
                for p2 in range(p1 + 1, 3):
                    clauses.append([-var(p1, h), -var(p2, h)])
        solver = make_solver(9, clauses)
        assert solver.solve()


class TestIncremental:
    def test_add_clause_after_solve(self):
        solver = make_solver(2, [[1, 2]])
        assert solver.solve()
        solver.add_clause([-1])
        assert solver.solve()
        assert solver.model()[2]
        solver.add_clause([-2])
        assert not solver.solve()

    def test_blocking_models_enumerates_all(self):
        solver = make_solver(3, [[1, 2, 3]])
        count = 0
        while solver.solve():
            model = solver.model()
            count += 1
            assert count <= 7
            solver.add_clause(
                [-(v) if value else v for v, value in model.items()]
            )
        assert count == 7


class TestAssumptions:
    def test_assumption_forces_value(self):
        solver = make_solver(2, [[-1, 2]])
        assert solver.solve(assumptions=[1])
        model = solver.model()
        assert model[1] and model[2]

    def test_conflicting_assumptions(self):
        solver = make_solver(2, [[-1, 2]])
        assert not solver.solve(assumptions=[1, -2])
        # solver remains usable
        assert solver.solve()


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_random_cnf_matches_brute_force(data):
    num_vars = data.draw(st.integers(1, 8))
    num_clauses = data.draw(st.integers(1, 30))
    clauses = []
    for _ in range(num_clauses):
        width = data.draw(st.integers(1, 4))
        clause = [
            data.draw(st.integers(1, num_vars))
            * (1 if data.draw(st.booleans()) else -1)
            for _ in range(width)
        ]
        clauses.append(clause)
    solver = make_solver(num_vars, clauses)
    expected = brute_force_sat(num_vars, clauses)
    result = solver.solve()
    assert result == (expected is not None)
    if result:
        model = solver.model()
        assert all(
            any(model.get(abs(lit), False) == (lit > 0) for lit in clause)
            for clause in clauses
        )


def test_random_3sat_stress():
    rng = random.Random(7)
    for trial in range(40):
        num_vars = rng.randint(5, 14)
        num_clauses = int(num_vars * rng.uniform(2.0, 5.0))
        clauses = [
            [
                rng.randint(1, num_vars) * rng.choice([1, -1])
                for _ in range(3)
            ]
            for _ in range(num_clauses)
        ]
        solver = make_solver(num_vars, clauses)
        expected = brute_force_sat(num_vars, clauses) is not None
        assert solver.solve() == expected, (trial, clauses)


# every knob combination must preserve verdicts: the constructor
# parameters tune the search, never the answer.  reduce_interval=1
# forces a database reduction after every conflict, so the reduction
# and arena-compaction paths run constantly instead of once per 2000
# conflicts; luby_unit=1 restarts as aggressively as possible.
_KNOB_VARIANTS = [
    dict(luby_unit=1, var_decay=0.75, reduce_interval=1,
         reduce_keep_lbd=0),
    dict(luby_unit=2, var_decay=1.0, reduce_interval=3,
         reduce_keep_lbd=2),
    dict(luby_unit=512, var_decay=0.99, reduce_interval=0),  # no reduction
]


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_knob_variants_match_brute_force(data):
    from .strategies import cnf_instances

    num_vars, clauses = data.draw(cnf_instances())
    expected = brute_force_sat(num_vars, clauses) is not None
    for knobs in _KNOB_VARIANTS:
        solver = SatSolver(**knobs)
        solver.ensure_vars(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result == expected, (knobs, clauses)
        if result:
            model = solver.model()
            assert all(
                any(model.get(abs(lit), False) == (lit > 0)
                    for lit in clause)
                for clause in clauses
            ), (knobs, clauses)


def test_reduction_exercised_on_enumeration():
    """Clause-DB reduction actually fires (and stays sound) on a
    blocking-clause enumeration that learns far more than it keeps."""
    solver = SatSolver(reduce_interval=10, reduce_keep_lbd=1)
    groups, size = 6, 3
    n = groups * size
    solver.ensure_vars(n)
    var = lambda g, i: g * size + i + 1
    for g in range(groups):
        solver.add_clause([var(g, i) for i in range(size)])
        for i in range(size):
            for j in range(i + 1, size):
                solver.add_clause([-var(g, i), -var(g, j)])
    count = 0
    while solver.solve():
        model = solver.model()
        count += 1
        solver.add_clause(
            [-v if model[v] else v for v in range(1, n + 1)]
        )
        assert count <= 3 ** groups
    assert count == 3 ** groups  # exactly one pick per group, all found
