"""Tests for bounded unrolling and the static-underapproximation oracle."""

import pytest

from repro.analysis import analyze_program
from repro.api import Pipeline
from repro.bmc import UnrollingOracle, unroll_program
from repro.diagnosis import (
    Answer,
    ChainOracle,
    EngineConfig,
    ScriptedOracle,
    Verdict,
    diagnose_error,
)
from repro.lang import While, parse_program, run_program


SUM = """
program summer(unsigned n) {
  var i = 0, acc = 0;
  while (i < n) {
    i = i + 1;
    acc = acc + 2;
  }
  assert(acc >= n);
}
"""


class TestUnrolling:
    def test_result_is_loop_free(self):
        program = parse_program(SUM)
        unrolled, info = unroll_program(program, 4)
        assert not any(
            isinstance(s, While) for s in unrolled.body.walk()
        )
        assert info.bound == 4
        assert 1 in info.overflow_vars
        assert (1, "i") in info.snapshot_vars
        assert (1, "acc") in info.snapshot_vars

    def test_semantics_preserved_within_bound(self):
        program = parse_program(SUM)
        unrolled, info = unroll_program(program, 6)
        for n in range(0, 7):
            original = run_program(program, [n])
            bounded = run_program(unrolled, [n])
            assert original.ok == bounded.ok
            # overflow marker stays 0 within the bound
            assert bounded.env[info.overflow_vars[1]] == 0
            # snapshots capture the exit values
            assert bounded.env[info.snapshot_vars[(1, "i")]] == n
            assert bounded.env[info.snapshot_vars[(1, "acc")]] == 2 * n

    def test_overflow_detected_beyond_bound(self):
        program = parse_program(SUM)
        unrolled, info = unroll_program(program, 3)
        result = run_program(unrolled, [5])
        assert result.env[info.overflow_vars[1]] == 1

    def test_zero_bound(self):
        program = parse_program(SUM)
        unrolled, info = unroll_program(program, 0)
        result = run_program(unrolled, [0])
        assert result.env[info.overflow_vars[1]] == 0
        result = run_program(unrolled, [1])
        assert result.env[info.overflow_vars[1]] == 1

    def test_negative_bound_rejected(self):
        program = parse_program(SUM)
        with pytest.raises(ValueError):
            unroll_program(program, -1)

    def test_nested_loops_unroll(self):
        source = """
        program nest(unsigned n) {
          var i, j, t;
          while (i < n) {
            j = 0;
            while (j < i) { j = j + 1; t = t + 1; }
            i = i + 1;
          }
          assert(t >= 0);
        }
        """
        program = parse_program(source)
        unrolled, info = unroll_program(program, 3)
        assert not any(isinstance(s, While) for s in unrolled.body.walk())
        for n in range(0, 4):
            original = run_program(program, [n])
            bounded = run_program(unrolled, [n])
            assert original.ok == bounded.ok


class TestUnrollingOracle:
    def _oracle(self, source, bound=6):
        outcome = Pipeline(auto_annotate=False).analyze(source)
        return outcome, UnrollingOracle(
            outcome.program, outcome.analysis, bound=bound
        )

    def test_validates_real_bug_statically(self):
        source = """
        program offbyone(unsigned n) {
          var i = 0, written = 0;
          while (i <= n) { i = i + 1; written = written + 1; }
          @post(written >= 0)
          assert(written <= n);
        }
        """
        outcome, oracle = self._oracle(source)
        result = diagnose_error(outcome.analysis, oracle,
                                EngineConfig(max_rounds=8))
        assert result.verdict is Verdict.VALIDATED

    def test_invariant_violation_found(self):
        outcome, oracle = self._oracle(SUM)
        from repro.diagnosis.queries import Query
        from repro.logic import LinTerm, ge, le

        alpha_acc = next(v for v in outcome.analysis.all_vars
                         if v.name == "acc@loop1")
        # "acc <= 3 after the loop" is violated by bounded runs (n=2)
        query = Query("invariant", le(LinTerm.var(alpha_acc), 3), "q")
        assert oracle.answer(query) is Answer.NO
        # "acc >= 0 after the loop" holds on bounded runs but the loop
        # can exceed the bound, so the oracle must stay humble
        query2 = Query("invariant", ge(LinTerm.var(alpha_acc), 0), "q2")
        assert oracle.answer(query2) is Answer.UNKNOWN

    def test_witness_confirmed(self):
        outcome, oracle = self._oracle(SUM)
        from repro.diagnosis.queries import Query
        from repro.logic import LinTerm, eq

        alpha_acc = next(v for v in outcome.analysis.all_vars
                         if v.name == "acc@loop1")
        query = Query("witness", eq(LinTerm.var(alpha_acc), 4), "q")
        assert oracle.answer(query) is Answer.YES

    def test_exact_when_loops_statically_bounded(self):
        source = """
        program fixed(x) {
          var i = 0, acc = 0;
          while (i < 3) { i = i + 1; acc = acc + x; }
          assert(acc == 3 * x);
        }
        """
        outcome, oracle = self._oracle(source, bound=5)
        from repro.diagnosis.queries import Query
        from repro.logic import LinTerm, ge, Var

        alpha_i = next(v for v in outcome.analysis.info
                       if v.name == "i@loop1")
        # with the loop bounded by the constant 3, bound 5 is complete:
        # "i >= 3 at exit" is a provable invariant
        query = Query("invariant", ge(LinTerm.var(alpha_i), 3), "q")
        assert oracle.answer(query) is Answer.YES
        # and an unrealizable witness is definitively refuted
        query2 = Query("witness", ge(LinTerm.var(alpha_i), 4), "q2")
        assert oracle.answer(query2) is Answer.NO

    def test_unknown_on_unsupported_variables(self):
        source = """
        program havocky(x) {
          var y;
          havoc y @assume(y >= 0);
          assert(y >= 0);
        }
        """
        outcome = Pipeline(auto_annotate=False).analyze(source)
        oracle = UnrollingOracle(outcome.program, outcome.analysis)
        from repro.diagnosis.queries import Query
        from repro.logic import LinTerm, ge

        alpha = next(v for v in outcome.analysis.all_vars
                     if v.is_abstraction)
        query = Query("witness", ge(LinTerm.var(alpha), 5), "q")
        assert oracle.answer(query) is Answer.UNKNOWN

    def test_chains_with_exhaustive_fallback(self):
        from repro.diagnosis import ExhaustiveOracle

        outcome, oracle = self._oracle(SUM)
        fallback = ExhaustiveOracle(outcome.program, outcome.analysis,
                                    radius=6)
        chained = ChainOracle([oracle, fallback])
        result = diagnose_error(outcome.analysis, chained,
                                EngineConfig(max_rounds=10))
        # SUM's assertion acc >= n is true (acc = 2n): the bounded
        # oracle answers what it can decide and the exhaustive oracle
        # covers the universal questions; the chain must discharge
        assert result.verdict is Verdict.DISCHARGED
