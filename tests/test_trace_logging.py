"""Tests for trace contexts (repro.obs.context) and structured
logging (repro.obs.logging): identity propagation, the repro.log/1
schema, rate limiting, the slow-query hook, and the end-to-end batch
acceptance — one trace_id links a run's envelope, telemetry, worker
span events and log lines across the multiprocessing boundary.
"""

import json
import threading

import pytest

from repro import obs
from repro.batch import triage_many
from repro.obs import context as ocontext
from repro.obs import logging as olog


@pytest.fixture(autouse=True)
def clean_slate():
    """Logging off, obs off, no ambient trace, before and after."""
    olog.reset()
    obs.disable()
    obs.reset()
    ocontext._adopt(None)
    yield
    olog.reset()
    obs.disable()
    obs.reset()
    ocontext._adopt(None)


# ---------------------------------------------------------------------------
# TraceContext
# ---------------------------------------------------------------------------

class TestTraceContext:
    def test_fresh_roots_are_unique_well_formed(self):
        a, b = ocontext.new_trace("cli"), ocontext.new_trace("cli")
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 16 and len(a.span_id) == 8
        assert set(a.trace_id) <= set("0123456789abcdef")
        assert a.parent_id is None and a.origin == "cli"

    def test_child_keeps_trace_links_parent(self):
        root = ocontext.new_trace("batch")
        hop = root.child()
        assert hop.trace_id == root.trace_id
        assert hop.span_id != root.span_id
        assert hop.parent_id == root.span_id
        assert hop.origin == "batch"

    def test_dict_round_trip(self):
        root = ocontext.new_trace("serve").child()
        back = ocontext.TraceContext.from_dict(root.to_dict())
        assert back == root

    def test_from_dict_tolerates_garbage(self):
        assert ocontext.TraceContext.from_dict(None) is None
        assert ocontext.TraceContext.from_dict({}) is None
        assert ocontext.TraceContext.from_dict({"trace_id": 7}) is None
        partial = ocontext.TraceContext.from_dict({"trace_id": "abcd"})
        assert partial is not None and partial.trace_id == "abcd"
        assert partial.span_id  # minted, not empty

    def test_traceparent_round_trip(self):
        root = ocontext.new_trace("serve")
        parsed = ocontext.from_traceparent(root.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == root.trace_id
        assert parsed.parent_id == root.span_id

    def test_traceparent_rejects_malformed(self):
        for bad in (None, "", "junk", "00-zzzz-1111-01",
                    "00-" + "0" * 32 + "-00f067aa0ba902b7-01"):
            assert ocontext.from_traceparent(bad) is None

    def test_bind_nests_and_survives_exceptions(self):
        outer = ocontext.new_trace("cli")
        inner = outer.child()
        with ocontext.bind(outer):
            assert ocontext.current() is outer
            with pytest.raises(RuntimeError):
                with ocontext.bind(inner):
                    assert ocontext.current_trace_id() == inner.trace_id
                    raise RuntimeError("boom")
            assert ocontext.current() is outer
        assert ocontext.current() is None

    def test_binding_is_thread_local(self):
        seen = {}

        def worker():
            seen["other"] = ocontext.current()

        with ocontext.bind(ocontext.new_trace("cli")):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["other"] is None


# ---------------------------------------------------------------------------
# structured logging: repro.log/1
# ---------------------------------------------------------------------------

class TestStructuredLogging:
    def test_unconfigured_is_a_noop(self):
        olog.info("ignored", x=1)
        assert olog.records() == []
        assert not olog.is_enabled("error")

    def test_level_gate(self):
        olog.configure(level="warning")
        olog.debug("d")
        olog.info("i")
        olog.warning("w")
        olog.error("e")
        assert [r["event"] for r in olog.records()] == ["w", "e"]
        assert olog.is_enabled("error")
        assert not olog.is_enabled("info")

    def test_record_shape_and_trace_attachment(self):
        olog.configure(level="debug")
        ctx = ocontext.new_trace("cli")
        obs.enable()
        with ocontext.bind(ctx), obs.span("stage.outer"):
            olog.info("hello", detail="world")
        (rec,) = olog.records(event="hello")
        assert rec["type"] == "log" and rec["level"] == "info"
        assert rec["trace"] == ctx.trace_id
        assert rec["span"] >= 1
        assert rec["detail"] == "world"
        assert isinstance(rec["ts"], float)
        # the same record is findable by its trace id
        assert olog.records(trace=ctx.trace_id) == [rec]

    def test_rate_limit_drops_visibly(self):
        olog.configure(level="debug", rate_limit=5)
        for _ in range(25):
            olog.info("hot")
        kept = olog.records(event="hot")
        assert len(kept) == 5
        # force a new window: the next record carries the tally
        olog._buckets["hot"][0] -= 1
        olog.info("hot")
        assert olog.records(event="hot")[-1]["dropped"] == 20

    def test_file_sink_round_trip(self, tmp_path):
        path = tmp_path / "run.log"
        olog.configure(file=path, level="info")
        with ocontext.bind(ocontext.new_trace("cli")) as ctx:
            olog.info("first", n=1)
            olog.warning("second")
        olog.reset()
        parsed = olog.read_log(path)
        assert parsed["schema"] == olog.LOG_SCHEMA
        events = [r["event"] for r in parsed["records"]]
        assert events == ["first", "second"]
        assert all(r["trace"] == ctx.trace_id
                   for r in parsed["records"])

    def test_read_log_skips_torn_lines_rejects_foreign(self, tmp_path):
        path = tmp_path / "torn.log"
        olog.configure(file=path, level="info")
        olog.info("ok")
        olog.reset()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "log", "event": "tr')  # torn write
        parsed = olog.read_log(path)
        assert [r["event"] for r in parsed["records"]] == ["ok"]
        foreign = tmp_path / "foreign.log"
        foreign.write_text('{"type": "header", "schema": "other/9"}\n')
        with pytest.raises(ValueError):
            olog.read_log(foreign)
        headerless = tmp_path / "headerless.log"
        headerless.write_text('{"type": "log", "event": "x"}\n')
        with pytest.raises(ValueError):
            olog.read_log(headerless)


# ---------------------------------------------------------------------------
# the slow-query log (span-close hook)
# ---------------------------------------------------------------------------

class TestSlowQueryLog:
    def test_solver_spans_over_threshold_are_logged(self):
        olog.configure(level="info", slow_query_ms=0.0)
        obs.enable()
        ctx = ocontext.new_trace("cli")
        with ocontext.bind(ctx):
            with obs.span("smt.check", clauses=3):
                pass
            with obs.span("render.table"):  # not a solver stage
                pass
        slow = olog.records(event="slow_query")
        assert [r["name"] for r in slow] == ["smt.check"]
        assert slow[0]["trace"] == ctx.trace_id
        assert slow[0]["dur_ms"] >= 0.0
        assert slow[0]["attrs"] == {"clauses": 3}

    def test_threshold_filters_fast_spans(self):
        olog.configure(level="info", slow_query_ms=60_000.0)
        obs.enable()
        with obs.span("qe.cooper"):
            pass
        assert olog.records(event="slow_query") == []
        assert olog.slow_query_ms() == 60_000.0


# ---------------------------------------------------------------------------
# acceptance: one trace id across the fork boundary
# ---------------------------------------------------------------------------

class TestBatchTraceEndToEnd:
    def test_one_trace_id_links_batch_run_across_workers(self, tmp_path):
        """A bound trace follows ``triage_many`` into forked workers:
        the batch envelope, every outcome envelope, every worker span
        event, every telemetry snapshot and the shared log file all
        carry the same trace_id."""
        log_path = tmp_path / "batch.log"
        olog.configure(file=log_path, level="info")
        root = ocontext.new_trace("test")
        with ocontext.bind(root):
            result = triage_many(
                ["p01_accumulate", "p02_wordcount"],
                jobs=2, telemetry=True,
            )
        envelope = result.to_dict()
        assert envelope["trace_id"] == root.trace_id
        assert len(result.outcomes) == 2
        for outcome in result.outcomes:
            assert outcome.trace_id == root.trace_id
            assert outcome.to_dict()["trace_id"] == root.trace_id
            snap = outcome.telemetry
            assert snap is not None
            assert snap.get("trace") == root.trace_id
            # span events produced inside the worker process carry it
            traced = [e for e in outcome.events
                      if e.get("trace") == root.trace_id]
            assert traced, "no worker span event carries the trace id"
        olog.reset()
        parsed = olog.read_log(log_path)
        by_event = {r["event"] for r in parsed["records"]
                    if r.get("trace") == root.trace_id}
        assert {"batch.start", "batch.done"} <= by_event

    def test_provenance_nodes_carry_the_trace(self):
        from repro.obs import provenance as prov

        prov.enable()
        try:
            ctx = ocontext.new_trace("test")
            with ocontext.bind(ctx):
                prov.record("abduction.round", round=1)
            nodes = [n for n in prov.nodes()
                     if n.get("trace") == ctx.trace_id]
            assert len(nodes) == 1
            assert nodes[0]["kind"] == "abduction.round"
        finally:
            prov.disable()
            prov.reset()
