"""Tests for NNF/CNF/DNF, including hypothesis equivalence properties."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import (
    Not,
    Var,
    cnf_clauses,
    dnf_clauses,
    from_cnf,
    from_dnf,
    neg,
    nnf,
    parse_formula,
)
from repro.logic.digest import digest
from repro.logic.intern import clear_intern_tables

from .helpers import enumerate_box
from .strategies import deep_formulas, formulas, VARS


class TestNNF:
    def test_removes_not_nodes(self):
        f = parse_formula("!(x < 1 && !(y > 2 || x == y))")
        result = nnf(f)
        assert not any(isinstance(n, Not) for n in _walk(result))

    def test_flips_quantifiers(self):
        f = neg(parse_formula("forall x. x < y"))
        result = nnf(f)
        assert "exists" in str(result)

    def test_idempotent(self):
        f = parse_formula("!(x < 1) || !(y == 2 && x > y)")
        assert nnf(nnf(f)) == nnf(f)


class TestCNFDNF:
    def test_dnf_of_conjunction(self):
        f = parse_formula("x < 1 && y < 2")
        clauses = dnf_clauses(f)
        assert len(clauses) == 1
        assert len(clauses[0]) == 2

    def test_dnf_distributes(self):
        f = parse_formula("(x < 1 || x > 5) && (y < 1 || y > 5)")
        assert len(dnf_clauses(f)) == 4

    def test_contradictory_clauses_dropped(self):
        f = parse_formula("(x < 1 || y < 1) && x >= 1 && y >= 1")
        assert dnf_clauses(f) == []

    def test_cnf_of_disjunction(self):
        f = parse_formula("x < 1 || y < 2")
        clauses = cnf_clauses(f)
        assert len(clauses) == 1
        assert len(clauses[0]) == 2

    def test_true_false(self):
        from repro.logic import TRUE, FALSE

        assert dnf_clauses(TRUE) == [[]]
        assert dnf_clauses(FALSE) == []
        assert cnf_clauses(TRUE) == []
        assert cnf_clauses(FALSE) == [[]]


@settings(max_examples=150, deadline=None)
@given(formulas())
def test_nnf_preserves_semantics(phi):
    result = nnf(phi)
    for env in enumerate_box(VARS, 2):
        assert phi.evaluate(env) == result.evaluate(env)


@settings(max_examples=60, deadline=None)
@given(formulas())
def test_dnf_preserves_semantics(phi):
    try:
        rebuilt = from_dnf(dnf_clauses(phi, limit=20_000))
    except MemoryError:
        pytest.skip("formula too large for DNF")
    for env in enumerate_box(VARS, 2):
        assert phi.evaluate(env) == rebuilt.evaluate(env)


@settings(max_examples=60, deadline=None)
@given(formulas())
def test_cnf_preserves_semantics(phi):
    try:
        rebuilt = from_cnf(cnf_clauses(phi, limit=20_000))
    except MemoryError:
        pytest.skip("formula too large for CNF")
    for env in enumerate_box(VARS, 2):
        assert phi.evaluate(env) == rebuilt.evaluate(env)


def _normal_form_digests(phi, limit=50_000):
    """Content digests of the normalized forms (None when too large)."""
    try:
        return (digest(nnf(phi)),
                digest(from_cnf(cnf_clauses(phi, limit=limit))),
                digest(from_dnf(dnf_clauses(phi, limit=limit))))
    except MemoryError:
        return None


@settings(max_examples=50, deadline=None)
@given(deep_formulas())
def test_deep_shared_normal_forms_preserve_semantics(phi):
    """CNF/DNF stay correct on deeply nested, heavily shared DAGs."""
    digests = _normal_form_digests(phi)
    if digests is None:
        pytest.skip("formula too large for normal forms")
    cnf = from_cnf(cnf_clauses(phi, limit=50_000))
    dnf = from_dnf(dnf_clauses(phi, limit=50_000))
    for env in enumerate_box(VARS, 2):
        want = phi.evaluate(env)
        assert cnf.evaluate(env) == want
        assert dnf.evaluate(env) == want


@settings(max_examples=50, deadline=None)
@given(deep_formulas())
def test_normal_form_digests_survive_intern_state(phi):
    """Normalization is a pure function of formula *content*: the
    digests of the normalized output must not depend on intern-table
    state (cleared tables) or on which process built the input (pickle
    round-trip) — that is what makes them usable as persistent cache
    keys."""
    baseline = _normal_form_digests(phi)
    if baseline is None:
        pytest.skip("formula too large for normal forms")
    clone = pickle.loads(pickle.dumps(phi))
    clear_intern_tables()
    resurrected = pickle.loads(pickle.dumps(clone))
    assert _normal_form_digests(clone) == baseline
    assert _normal_form_digests(resurrected) == baseline


def _walk(phi):
    yield phi
    for attr in ("args",):
        for child in getattr(phi, attr, ()):
            yield from _walk(child)
    if hasattr(phi, "arg"):
        yield from _walk(phi.arg)
    if hasattr(phi, "body"):
        yield from _walk(phi.body)
