"""Hypothesis strategies for random terms, atoms and formulas.

Small coefficient/constant magnitudes keep brute-force boxes meaningful:
a radius-3 box decides most facts about terms with coefficients in
[-3, 3] and constants in [-4, 4].
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.logic import (
    LinTerm,
    Rel,
    Var,
    atom,
    conj,
    disj,
    dvd,
    neg,
)

VARS = [Var("x"), Var("y"), Var("z")]


@st.composite
def lin_terms(draw, variables=None, max_coeff: int = 3, max_const: int = 4):
    variables = variables or VARS
    coeffs = [
        (v, draw(st.integers(-max_coeff, max_coeff))) for v in variables
    ]
    const = draw(st.integers(-max_const, max_const))
    return LinTerm.make(coeffs, const)


@st.composite
def atoms(draw, variables=None, with_dvd: bool = True):
    term = draw(lin_terms(variables))
    if with_dvd and draw(st.booleans()) and draw(st.booleans()):
        divisor = draw(st.integers(2, 5))
        negated = draw(st.booleans())
        return dvd(divisor, term, negated)
    rel = draw(st.sampled_from([Rel.LE, Rel.EQ, Rel.NE]))
    return atom(rel, term)


@st.composite
def formulas(draw, variables=None, max_depth: int = 3, with_dvd: bool = True):
    depth = draw(st.integers(0, max_depth))
    return _formula(draw, depth, variables, with_dvd)


def _formula(draw, depth, variables, with_dvd):
    if depth == 0:
        return draw(atoms(variables, with_dvd=with_dvd))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return draw(atoms(variables, with_dvd=with_dvd))
    if choice == 1:
        return neg(_formula(draw, depth - 1, variables, with_dvd))
    parts = [
        _formula(draw, depth - 1, variables, with_dvd)
        for _ in range(draw(st.integers(2, 3)))
    ]
    return conj(*parts) if choice == 2 else disj(*parts)


@st.composite
def literal_lists(draw, variables=None, min_size: int = 1, max_size: int = 6,
                  with_dvd: bool = True):
    """Random conjunctions of literals for the Omega-test tests."""
    size = draw(st.integers(min_size, max_size))
    return [draw(atoms(variables, with_dvd=with_dvd)) for _ in range(size)]


@st.composite
def deep_formulas(draw, variables=None, max_depth: int = 7,
                  with_dvd: bool = True):
    """Deeply nested formulas with deliberately *shared* subformulas.

    Each step either wraps the running formula or combines it with a
    copy of itself under the opposite connective, so the hash-consed
    result is a DAG whose printed tree is much larger than its node
    count — the shape that stresses normalization and digest traversal.
    """
    phi = draw(atoms(variables, with_dvd=with_dvd))
    for _ in range(draw(st.integers(3, max_depth))):
        op = draw(st.integers(0, 3))
        fresh = draw(atoms(variables, with_dvd=with_dvd))
        if op == 0:
            phi = neg(phi)
        elif op == 1:
            phi = conj(disj(phi, fresh), disj(phi, neg(fresh)))
        elif op == 2:
            phi = disj(conj(phi, fresh), conj(phi, neg(fresh)))
        else:
            phi = conj(phi, disj(fresh, phi))
    return phi


@st.composite
def cnf_instances(draw, max_vars: int = 8, max_clauses: int = 30,
                  max_width: int = 4):
    """Random propositional CNF instances as ``(num_vars, clauses)``.

    Clauses are lists of nonzero signed ints in DIMACS convention.
    Small enough for a brute-force enumerator to decide, wide enough to
    reach conflicts, restarts and clause learning in the CDCL solver.
    """
    num_vars = draw(st.integers(1, max_vars))
    num_clauses = draw(st.integers(1, max_clauses))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(1, max_width))
        clauses.append([
            draw(st.integers(1, num_vars))
            * (1 if draw(st.booleans()) else -1)
            for _ in range(width)
        ])
    return num_vars, clauses


@st.composite
def linear_systems(draw, max_vars: int = 5, max_atoms: int = 8,
                   max_coeff: int = 4, max_const: int = 12):
    """Random inequality/equality systems as lists of LE/EQ atoms.

    Denser and wider than :func:`literal_lists` (several variables per
    atom, all atoms linear), so the Omega test's elimination steps run
    real Gaussian/Fourier–Motzkin batches — the differential workload
    for the numpy versus pure-Python arithmetic backends.
    """
    variables = VARS + [Var("u"), Var("w")]
    count = draw(st.integers(2, max_atoms))
    num_vars = draw(st.integers(2, max_vars))
    chosen = variables[:num_vars]
    system = []
    for _ in range(count):
        coeffs = [
            (v, draw(st.integers(-max_coeff, max_coeff))) for v in chosen
        ]
        term = LinTerm.make(
            coeffs, draw(st.integers(-max_const, max_const))
        )
        rel = draw(st.sampled_from([Rel.LE, Rel.LE, Rel.LE, Rel.EQ]))
        system.append(atom(rel, term))
    return system
