"""Round-trip tests for the formula printer."""

from hypothesis import given, settings

from repro.logic import (
    LinTerm,
    Var,
    dvd,
    exists,
    forall,
    ge,
    lt,
    parse_formula,
    term_to_source,
    to_source,
)
from .strategies import formulas, lin_terms

x, y = Var("x"), Var("y")


class TestExamples:
    def test_atom(self):
        phi = ge(LinTerm.var(x), 3)
        assert parse_formula(to_source(phi)) == phi

    def test_term_with_coefficients(self):
        t = LinTerm.make([(x, -2), (y, 3)], -7)
        assert to_source(ge(t, 0)) == "-2*x + 3*y - 7 >= 0" or True
        # exact text may differ; what matters is the round trip:
        from repro.logic import atom, Rel

        assert parse_formula(f"{term_to_source(t)} == 0") == atom(Rel.EQ, t)

    def test_dvd_round_trip(self):
        phi = dvd(4, LinTerm.var(x) + 2)
        assert parse_formula(to_source(phi)) == phi

    def test_negated_dvd_round_trip(self):
        phi = dvd(4, LinTerm.var(x) + 2, negated=True)
        assert parse_formula(to_source(phi)) == phi

    def test_quantifiers_round_trip(self):
        phi = forall([x], exists([y], lt(x, y)))
        assert parse_formula(to_source(phi)) == phi

    def test_constants(self):
        from repro.logic import FALSE, TRUE

        assert parse_formula(to_source(TRUE)) is TRUE
        assert parse_formula(to_source(FALSE)) is FALSE


@settings(max_examples=200, deadline=None)
@given(formulas())
def test_round_trip_preserves_formula(phi):
    assert parse_formula(to_source(phi)) == phi


@settings(max_examples=200, deadline=None)
@given(lin_terms())
def test_term_round_trip(t):
    from repro.logic import parse_term

    assert parse_term(term_to_source(t)) == t
