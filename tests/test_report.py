"""Tests for the session-report renderer."""

import pytest

from repro.api import Pipeline
from repro.diagnosis import Answer, EngineConfig, ScriptedOracle, \
    render_report

FOO = """
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) { i = i + 1; j = j + i; } @post(i >= 0 && i > n)
  var z = k + i + j;
  assert(z > 2 * n);
}
"""


@pytest.fixture(scope="module")
def discharged():
    return Pipeline().diagnose(FOO, ScriptedOracle(["yes"]))


class TestTextReport:
    def test_contains_verdict(self, discharged):
        report = render_report(discharged)
        assert "FALSE ALARM" in report
        assert "foo" in report

    def test_contains_transcript(self, discharged):
        report = render_report(discharged)
        assert "EVERY execution" in report
        assert "answer: yes" in report

    def test_lists_imprecision_sources(self, discharged):
        report = render_report(discharged)
        assert "non-linear product" in report
        assert "after the loop" in report

    def test_no_internal_names_leak(self, discharged):
        report = render_report(discharged)
        assert "@loop" not in report.replace("mul_l", "")


class TestMarkdownReport:
    def test_markdown_structure(self, discharged):
        report = render_report(discharged, markdown=True)
        assert report.startswith("# Diagnosis report")
        assert "## verdict" in report
        assert "\n- " in report


class TestOtherVerdicts:
    def test_unresolved_report(self):
        result = Pipeline(config=EngineConfig(max_rounds=3)).diagnose(
            FOO, ScriptedOracle([], default=Answer.UNKNOWN)
        )
        report = render_report(result)
        assert "UNRESOLVED" in report

    def test_validated_report_lists_witnesses(self):
        src = FOO.replace("assert(z > 2 * n);", "assert(z > 2 * n + 9);")
        result = Pipeline(config=EngineConfig(max_rounds=6)).diagnose(
            src, ScriptedOracle(["no", "yes", "yes", "yes", "yes"])
        )
        report = render_report(result)
        if result.classification == "real bug":
            assert "REAL BUG" in report
            assert "learned witnesses" in report
