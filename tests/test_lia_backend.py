"""Differential tests for the Omega arithmetic backends.

The numpy and pure-Python kernels must produce *identical* rows — and
therefore identical verdicts and models — on every input, including the
tiny-batch and potential-overflow inputs where the numpy backend
internally routes back through the bigint row path.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings

from repro.lia import OmegaSolver, backend
from repro.logic import LinTerm, Var, le

from .strategies import linear_systems

numpy = pytest.importorskip("numpy", exc_type=ImportError)


@pytest.fixture
def numpy_backend(monkeypatch):
    """Force the numpy kernels even on tiny systems, restore after."""
    monkeypatch.setattr(backend, "MIN_CELLS", 0)
    backend.use("numpy")
    yield
    backend.use("auto")


def _solve_both(system):
    backend.use("python")
    try:
        py = OmegaSolver().solve_literals(system)
    finally:
        backend.use("auto")
    backend.use("numpy")
    try:
        np_result = OmegaSolver().solve_literals(system)
    finally:
        backend.use("auto")
    return py, np_result


@settings(max_examples=120, deadline=None)
@given(linear_systems())
def test_backends_agree_on_random_systems(system):
    # MIN_CELLS=0 pushes even tiny batches through the numpy arithmetic
    saved = backend.MIN_CELLS
    backend.MIN_CELLS = 0
    try:
        py, np_result = _solve_both(system)
    finally:
        backend.MIN_CELLS = saved
    assert (py is None) == (np_result is None), system
    if py is not None:
        assert dict(py) == dict(np_result), system


def test_backends_agree_under_overflow(numpy_backend):
    """Coefficients near 2**40 overflow int64 products; the numpy
    backend must detect that and fall back to bigint rows per call."""
    x, y = Var("x"), Var("y")
    big = 1 << 40
    system = [
        le(LinTerm.make([(x, big), (y, -3)]), big * 5),
        le(LinTerm.make([(x, -big), (y, 2)]), big * 7),
        le(LinTerm.make([(y, 5)]), 40),
        le(LinTerm.make([(y, -5)]), 40),
    ]
    model = OmegaSolver().solve_literals(system)
    backend.use("python")
    try:
        expected = OmegaSolver().solve_literals(system)
    finally:
        backend.use("auto")
    assert (model is None) == (expected is None)
    if model is not None:
        assert dict(model) == dict(expected)


def test_shadow_rows_kernel_identical(numpy_backend):
    lowers = [[2, 0, -1, 4], [1, 1, 0, -2], [0, 3, 2, 5]]
    betas = [2, 1, 3]
    uppers = [[-1, 2, 0, 3], [0, -2, 1, 1]]
    alphas = [1, 2]
    for exact in (False, True):
        got = backend.shadow_rows(lowers, betas, uppers, alphas, exact)
        want = backend._shadow_rows_py(lowers, betas, uppers, alphas,
                                       exact)
        assert got == want
        assert all(isinstance(x, int) and not isinstance(x, bool)
                   for row in got for x in row)


def test_substitute_rows_kernel_identical(numpy_backend):
    rows = [[2, 3, -1, 7], [0, 1, 4, -2], [5, 0, 0, 1]]
    repl = [0, -2, 1, 3]
    got = backend.substitute_rows(rows, 0, repl)
    want = backend._substitute_rows_py(rows, 0, repl)
    assert got == want
    assert got[0][0] == 0 and got[2][0] == 0
    assert got[1] == rows[1]


def test_env_selection_validates():
    with pytest.raises(ValueError):
        backend._load("fortran")
    assert backend._load("python").name == "python"
    assert backend._load("auto").name in ("numpy", "python")


def test_use_returns_active_name():
    assert backend.use("python") == "python"
    assert backend.name() == "python"
    assert backend.use("auto") == backend.name()


_NO_NUMPY_PROBE = r"""
import sys

class _Block:
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy blocked for test")

sys.meta_path.insert(0, _Block())
sys.modules.pop("numpy", None)

from repro.lia import OmegaSolver, backend
from repro.logic import LinTerm, Var, le

assert backend.name() == "python", backend.name()
x = Var("x")
model = OmegaSolver().solve_literals(
    [le(LinTerm.var(x, 2), 10), le(LinTerm.var(x, -2), -4)]
)
assert model is not None and 2 <= model[x] <= 5
print("fallback-ok")
"""


def test_python_fallback_without_numpy():
    """With numpy unimportable, the auto backend quietly degrades to
    the pure-Python rows and still solves."""
    env = dict(os.environ, REPRO_LIA_BACKEND="auto")
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _NO_NUMPY_PROBE],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "fallback-ok" in proc.stdout


def test_forced_numpy_without_numpy_raises():
    probe = (
        "import sys\n"
        + _NO_NUMPY_PROBE.split("from repro")[0]
        + "try:\n"
        "    from repro.lia import backend\n"
        "except RuntimeError as exc:\n"
        "    assert 'numpy' in str(exc)\n"
        "    print('raised-ok')\n"
        "else:\n"
        "    raise SystemExit('expected RuntimeError')\n"
    )
    env = dict(os.environ, REPRO_LIA_BACKEND="numpy")
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "raised-ok" in proc.stdout
