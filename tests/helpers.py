"""Shared test utilities: brute-force reference procedures.

The decision procedures (Omega test, SMT, Cooper QE, MSA) are all
cross-checked against exhaustive enumeration over small boxes.  On a
bounded box enumeration is exact, so any divergence inside the box is a
real bug in the procedure under test.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Sequence

from repro.logic import Formula, Var


def enumerate_box(
    variables: Sequence[Var], radius: int
) -> Iterable[dict[Var, int]]:
    """All assignments with every value in [-radius, radius]."""
    values = range(-radius, radius + 1)
    for combo in itertools.product(values, repeat=len(variables)):
        yield dict(zip(variables, combo))


def brute_force_sat(
    phi: Formula, variables: Sequence[Var], radius: int
) -> dict[Var, int] | None:
    """First model of ``phi`` inside the box, or None."""
    for env in enumerate_box(variables, radius):
        if phi.evaluate(env):
            return env
    return None


def brute_force_valid_in_box(
    phi: Formula, variables: Sequence[Var], radius: int
) -> bool:
    """Whether ``phi`` holds everywhere inside the box."""
    return all(phi.evaluate(env) for env in enumerate_box(variables, radius))


def assert_model(phi: Formula, model: Mapping[Var, int]) -> None:
    """Assert that ``model`` (0-defaulted) satisfies quantifier-free phi."""
    env = {v: model.get(v, 0) for v in phi.free_vars()}
    assert phi.evaluate(env), f"claimed model {env} does not satisfy {phi}"
