"""Tests for the stable JSON schema, the Pipeline facade, the removed
v2 aliases, and the machine-readable CLI modes."""

import json

import pytest

import repro
import repro.api
from repro import obs
from repro.api import (
    Pipeline,
    ground_truth_oracle,
    run_user_study,
)
from repro.batch import triage_many
from repro.cli import main
from repro.diagnosis import ScriptedOracle, diagnose_error, render_report
from repro import schema
from repro.schema import SCHEMA_VERSION, TriageVerdict, envelope
from repro.suite import BENCHMARKS

SAFE = "program safe(x) { var y = x + 1; assert(y > x); }"
DOOMED = "program doomed(x) { var y = x; assert(y > x); }"

FOO = """
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) { i = i + 1; j = j + i; } @post(i >= 0 && i > n)
  var z = k + i + j;
  assert(z > 2 * n);
}
"""


@pytest.fixture(autouse=True)
def obs_off():
    """Schema tests run with instrumentation off unless they enable it."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestTriageVerdict:
    @pytest.mark.parametrize("text,expected", [
        ("false alarm", TriageVerdict.FALSE_ALARM),
        ("verified", TriageVerdict.FALSE_ALARM),
        ("discharged", TriageVerdict.FALSE_ALARM),
        ("real bug", TriageVerdict.REAL_BUG),
        ("refuted", TriageVerdict.REAL_BUG),
        ("VALIDATED", TriageVerdict.REAL_BUG),
        ("unknown", TriageVerdict.UNKNOWN),
        ("uncertain", TriageVerdict.UNKNOWN),
        ("unresolved", TriageVerdict.UNKNOWN),
        ("real_bug", TriageVerdict.REAL_BUG),
    ])
    def test_from_classification(self, text, expected):
        assert TriageVerdict.from_classification(text) is expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown classification"):
            TriageVerdict.from_classification("maybe")

    def test_values_equal_legacy_strings(self):
        assert TriageVerdict.FALSE_ALARM.value == "false alarm"
        assert TriageVerdict.REAL_BUG.value == "real bug"
        assert TriageVerdict.UNKNOWN.value == "unknown"


class TestEnvelope:
    def test_core_fields(self):
        payload = envelope("analysis", TriageVerdict.UNKNOWN, a=1)
        assert payload == {"schema": SCHEMA_VERSION, "kind": "analysis",
                           "verdict": "unknown", "a": 1}

    def test_none_fields_omitted(self):
        payload = envelope("batch", TriageVerdict.REAL_BUG,
                           telemetry=None, error=None, count=0)
        assert "telemetry" not in payload and "error" not in payload
        assert payload["count"] == 0


class TestAnalysisOutcomeJson:
    def test_round_trip(self):
        payload = json.loads(Pipeline().analyze(SAFE).to_json())
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["kind"] == "analysis"
        assert payload["verdict"] == "false alarm"
        assert payload["initial_verdict"] == "verified"
        assert payload["program"] == "safe"
        assert isinstance(payload["invariants"], str)
        assert "telemetry" not in payload

    def test_refuted_maps_to_real_bug(self):
        payload = Pipeline().analyze(DOOMED).to_dict()
        assert payload["verdict"] == "real bug"
        assert payload["initial_verdict"] == "refuted"

    def test_telemetry_embedded_when_enabled(self):
        obs.enable()
        payload = Pipeline().analyze(SAFE).to_dict()
        assert payload["telemetry"]["spans"]["api.analyze"]["count"] == 1


class TestDiagnosisResultJson:
    def test_round_trip(self):
        result = Pipeline().diagnose(FOO, ScriptedOracle(["yes"]))
        payload = json.loads(result.to_json(indent=2))
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["kind"] == "diagnosis"
        assert payload["verdict"] == result.classification == "false alarm"
        assert payload["program"] == "foo"
        assert payload["rounds"] == result.rounds
        assert payload["num_queries"] == result.num_queries == 1
        assert payload["interactions"] == [
            {"kind": i.query.kind, "text": i.query.text,
             "answer": i.answer.value}
            for i in result.interactions
        ]

    def test_triage_verdict_property(self):
        result = Pipeline().diagnose(FOO, ScriptedOracle(["yes"]))
        assert result.triage_verdict is TriageVerdict.FALSE_ALARM
        assert result.triage_verdict.value == result.classification


class TestBatchJson:
    def test_round_trip(self):
        result = triage_many(["d01_plus_one", "d02_negate"], jobs=1)
        payload = json.loads(result.to_json())
        assert payload["kind"] == "batch"
        assert payload["verdict"] == "real bug"  # d02 is a real bug
        assert payload["accuracy"] == 1.0
        assert len(payload["outcomes"]) == 2
        first = payload["outcomes"][0]
        assert first["kind"] == "triage_outcome"
        assert first["name"] == "d01_plus_one"
        assert first["verdict"] == "false alarm"
        assert first["correct"] is True

    def test_verdict_counts(self):
        result = triage_many(["d01_plus_one", "d02_negate"], jobs=1)
        assert result.verdict_counts == {
            "false alarm": 1, "real bug": 1, "unknown": 0,
            "unknown resource": 0,
        }

    def test_empty_batch_is_unknown(self):
        result = triage_many([], jobs=1)
        assert result.verdict is TriageVerdict.UNKNOWN


class TestStatusContract:
    """The one verdict -> exit-code -> HTTP-status mapping
    (``repro.schema``), shared by the CLI and the daemon."""

    def test_clean(self):
        assert schema.exit_code(["false alarm", "unknown"]) == 0
        assert schema.exit_code([]) == 0

    def test_real_bug(self):
        assert schema.exit_code(["false alarm", "real bug"]) == 1
        assert schema.exit_code([TriageVerdict.REAL_BUG]) == 1

    def test_degraded_beats_real_bug(self):
        assert schema.exit_code(["real bug", "unknown resource"]) == 3
        assert schema.exit_code(["real bug"], degraded=True) == 3

    def test_http_mapping(self):
        assert [schema.http_status(c) for c in (0, 1, 2, 3)] == \
            [200, 200, 400, 503]
        with pytest.raises(ValueError):
            schema.http_status(42)

    def test_garbage_verdict_rejected(self):
        with pytest.raises(ValueError):
            schema.exit_code(["maybe"])


class TestRemovedAliases:
    """The PR-2-era module-level aliases are gone from the v3 surface."""

    @pytest.mark.parametrize("name", [
        "analyze_source", "diagnose_source", "triage_suite",
    ])
    def test_gone_from_api_module(self, name):
        assert not hasattr(repro.api, name)

    @pytest.mark.parametrize("name", [
        "analyze_source", "diagnose_source", "triage_suite",
    ])
    def test_gone_from_package_root(self, name):
        assert name not in repro.__all__
        with pytest.raises(AttributeError):
            getattr(repro, name)

    def test_triage_timeout_is_gone(self):
        """The PR-7-era ``timeout=`` shim is removed: the only spelling
        is ``limits=Limits(deadline=...)``, and a stale caller fails
        loudly instead of silently triaging unbounded."""
        with pytest.raises(TypeError, match="timeout"):
            Pipeline().triage(["d01_plus_one"], jobs=1, timeout=60.0)


class TestRunUserStudySignature:
    def test_typo_fails_loudly(self):
        with pytest.raises(TypeError):
            run_user_study(seeed=7)

    def test_positional_arguments_rejected(self):
        with pytest.raises(TypeError):
            run_user_study(7)


class TestCliJsonModes:
    def test_analyze_json(self, tmp_path, capsys):
        path = tmp_path / "safe.err"
        path.write_text(SAFE)
        assert main(["analyze", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "analysis"
        assert payload["verdict"] == "false alarm"

    def test_diagnose_json_sampling(self, tmp_path, capsys):
        path = tmp_path / "bug.err"
        path.write_text("""
        program bug(x) {
          var y = x + 1;
          assert(y != 0);
        }
        """)
        # exit 1: a real-bug verdict, per the documented status contract
        assert main(["diagnose", str(path), "--oracle", "sampling",
                     "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "diagnosis"
        assert payload["verdict"] == "real bug"

    def test_triage_json(self, capsys):
        assert main(["triage", "d01_plus_one", "--jobs", "1",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "batch"
        assert payload["outcomes"][0]["verdict"] == "false alarm"

    def test_triage_trace_writes_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "out.jsonl"
        # exit 1: d02 is a real bug (the documented status contract)
        assert main(["triage", "d01_plus_one", "d02_negate",
                     "--jobs", "2", "--trace", str(trace)]) == 1
        lines = [json.loads(l)
                 for l in trace.read_text().splitlines()]
        assert lines, "trace must not be empty"
        assert lines[-1]["type"] == "snapshot"
        merged = lines[-1]
        assert merged["spans"]["triage.report"]["count"] == 2
        assert obs.hit_rate(merged, "smt.is_sat") is not None
        reports = {l.get("report") for l in lines[:-1]}
        assert {"d01_plus_one", "d02_negate"} <= reports

    def test_stats_command(self, capsys):
        assert main(["stats", "p10_toggle", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "spans:" in out and "counters:" in out
        assert "triage.report" in out
        assert "engine.queries" in out


# ---------------------------------------------------------------------------
# differential: the JSON payload and the human report must agree on the
# verdict for every Figure 7 benchmark
# ---------------------------------------------------------------------------

_SESSIONS: dict[str, object] = {}

_REPORT_HEADLINE = {
    "false alarm": "FALSE ALARM",
    "real bug": "REAL BUG",
    "unknown": "UNRESOLVED",
}


def _session(name):
    if name not in _SESSIONS:
        analysis, oracle = ground_truth_oracle(name)
        _SESSIONS[name] = diagnose_error(analysis, oracle)
    return _SESSIONS[name]


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_json_and_report_agree_on_verdict(bench):
    result = _session(bench.name)
    payload = json.loads(result.to_json())
    report = render_report(result)
    assert payload["verdict"] == result.classification
    assert _REPORT_HEADLINE[payload["verdict"]] in report
