"""Additional property tests for the Omega-test layer: unsat cores,
equality handling, and stress shapes beyond the basic differential test."""

from hypothesis import given, settings

from repro.lia import OmegaSolver, solve_literals, unsat_core
from repro.logic import LinTerm, Var, conj, eq, ge, le, ne
from .helpers import assert_model, brute_force_sat
from .strategies import VARS, literal_lists

x, y, z = Var("x"), Var("y"), Var("z")


@settings(max_examples=120, deadline=None)
@given(literal_lists(min_size=2, max_size=7))
def test_unsat_core_is_unsat_and_minimal(literals):
    solver = OmegaSolver()
    if solver.is_sat_literals(literals):
        return
    core = solver.unsat_core(literals)
    # the core itself must be unsatisfiable
    assert not solver.is_sat_literals(core)
    # and minimal: dropping any literal restores satisfiability
    for index in range(len(core)):
        reduced = core[:index] + core[index + 1:]
        assert solver.is_sat_literals(reduced), (
            f"core {core} not minimal: dropping {core[index]} stays unsat"
        )
    # and a subset of the input
    assert all(lit in literals for lit in core)


@settings(max_examples=100, deadline=None)
@given(literal_lists(min_size=1, max_size=5, with_dvd=False))
def test_adding_constraints_never_creates_models(literals):
    """Monotonicity: if the whole set is SAT, every subset is SAT."""
    solver = OmegaSolver()
    if not solver.is_sat_literals(literals):
        return
    for index in range(len(literals)):
        subset = literals[:index] + literals[index + 1:]
        assert solver.is_sat_literals(subset)


class TestEqualityChains:
    def test_long_substitution_chain(self):
        lits = [eq(x, LinTerm.var(y) + 1),
                eq(y, LinTerm.var(z) + 1),
                ge(z, 10)]
        model = solve_literals(lits)
        assert model is not None
        assert model[x] == model[z] + 2 >= 12

    def test_gcd_cascade(self):
        # 6x + 10y = 8 has solutions (gcd 2 | 8)
        model = solve_literals([eq(LinTerm.make([(x, 6), (y, 10)]), 8)])
        assert model is not None
        assert 6 * model[x] + 10 * model[y] == 8

    def test_three_variable_equality(self):
        # 3x + 5y + 7z = 1
        model = solve_literals(
            [eq(LinTerm.make([(x, 3), (y, 5), (z, 7)]), 1)]
        )
        assert model is not None
        assert 3 * model[x] + 5 * model[y] + 7 * model[z] == 1

    def test_inconsistent_equalities(self):
        lits = [eq(LinTerm.var(x, 2), LinTerm.var(y, 4) + 1)]
        assert solve_literals(lits) is None


class TestLazyDisequalities:
    def test_many_satisfiable_disequalities_fast(self):
        # 12 disequalities that the first model likely satisfies: the
        # lazy splitter must not branch 2^12 times
        lits = [ge(x, 0), le(x, 1000)]
        lits += [ne(x, 500 + i) for i in range(12)]
        model = solve_literals(lits)
        assert model is not None
        assert_model(conj(*lits), model)

    def test_dense_disequality_forcing(self):
        # x in [0,5] with 0..4 forbidden forces x = 5
        lits = [ge(x, 0), le(x, 5)] + [ne(x, i) for i in range(5)]
        model = solve_literals(lits)
        assert model is not None and model[x] == 5

    def test_disequalities_between_variables(self):
        lits = [ge(x, 0), le(x, 2), ge(y, 0), le(y, 2),
                ne(LinTerm.var(x) - LinTerm.var(y), 0),
                ne(LinTerm.var(x) - LinTerm.var(y), 1),
                ne(LinTerm.var(x) - LinTerm.var(y), -1)]
        model = solve_literals(lits)
        assert model is not None
        assert abs(model[x] - model[y]) == 2
