"""The fault-injection matrix over the Figure 7 suite.

Each solver stage is hit with each fault flavour — ``exhaust`` (the
governor reports the budget gone), ``raise`` (an arbitrary crash at a
checkpoint) and ``sleep`` (a hang the deadline has to cut short) — while
triaging a batch that contains both the targeted report and innocent
bystanders.  The batch must terminate within the deadline envelope, the
targeted report must land in ``BatchResult.degraded`` with per-stage
attribution, and the bystanders' verdicts must be identical to a
fault-free run.

A separate test covers the one fault no checkpoint can observe: a
SIGKILLed worker, which the parallel driver detects via its grace
window and quarantines with no stage attribution.
"""

from __future__ import annotations

import time

import pytest

from repro.batch import triage_many
from repro.limits import STAGES, Limits
from repro.limits.faults import install
from repro.schema import TriageVerdict

# All five reports are fast (< 100ms each); the target is the cheapest
# report whose diagnosis ticks every one of the five stages.
TARGET = "p10_toggle"
BYSTANDERS = ["d01_plus_one", "d02_negate", "d03_count", "p09_window"]
SUBSET = BYSTANDERS[:2] + [TARGET] + BYSTANDERS[2:]

DEADLINE = 1.0
LIMITS = Limits(deadline=DEADLINE, retries=0)
FLAVOURS = ("exhaust", "raise", "sleep")


def spec_for(action: str, stage: str) -> str:
    arg = ":30" if action == "sleep" else ""
    return f"{action}{arg}@{stage}@{TARGET}"


def projection(outcome):
    """The fields that must be identical between a fault-free run and
    the bystanders of a faulted run."""
    return (outcome.name, outcome.classification, outcome.num_queries,
            outcome.rounds)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    install(None)
    yield
    install(None)


@pytest.fixture(scope="module")
def baseline():
    install(None)
    result = triage_many(SUBSET, jobs=1, limits=LIMITS)
    assert not result.degraded, "baseline run must be fault-free"
    return {o.name: projection(o) for o in result.outcomes}


@pytest.mark.parametrize("stage", STAGES)
@pytest.mark.parametrize("action", FLAVOURS)
def test_fault_matrix(stage, action, baseline):
    install(spec_for(action, stage))
    start = time.monotonic()
    result = triage_many(SUBSET, jobs=1, limits=LIMITS)
    wall = time.monotonic() - start
    install(None)

    # terminated within the deadline envelope: one deadline for the
    # faulted report plus the (fast) bystanders and bookkeeping slack
    assert wall < DEADLINE * len(SUBSET) + 5.0

    by_name = {o.name: o for o in result.outcomes}
    assert sorted(by_name) == sorted(SUBSET)

    # the targeted report is quarantined with stage attribution
    target = by_name[TARGET]
    assert target.degraded
    assert [o.name for o in result.degraded] == [TARGET]
    assert target.exhausted_stage == stage
    if action == "exhaust":
        assert target.classification == "unknown resource"
        assert target.exhausted_kind == "injected"
    elif action == "raise":
        assert target.error is not None
        assert "FaultInjected" in target.error
    else:  # sleep: the deadline cuts the hang at the faulted checkpoint
        assert target.classification == "unknown resource"
        assert target.exhausted_kind == "deadline"
        assert target.timed_out

    # bystander verdicts are identical to the fault-free run
    for name in BYSTANDERS:
        assert projection(by_name[name]) == baseline[name]

    # a degraded batch is an answer, not a failure
    assert not result.failures
    assert result.verdict in (TriageVerdict.FALSE_ALARM,
                              TriageVerdict.REAL_BUG,
                              TriageVerdict.UNKNOWN)


def test_retries_refault_deterministically(baseline):
    """A fault that fires once per governor re-fires on every retry, so
    the report exhausts its attempts and is quarantined."""
    install(spec_for("exhaust", "smt"))
    result = triage_many(SUBSET, jobs=1,
                         limits=Limits(deadline=DEADLINE, retries=2))
    install(None)
    target = next(o for o in result.outcomes if o.name == TARGET)
    assert target.attempts == 3
    assert target.degraded
    for name in BYSTANDERS:
        bystander = next(o for o in result.outcomes if o.name == name)
        assert projection(bystander) == baseline[name]


def test_parallel_hang_degrades_with_attribution(monkeypatch, baseline):
    """The acceptance scenario in miniature: a hang injected into one
    stage, a parallel batch under a deadline — the batch finishes, the
    hung report degrades with the right stage, everyone else agrees
    with the fault-free run."""
    monkeypatch.setenv("REPRO_FAULT", spec_for("sleep", "smt"))
    start = time.monotonic()
    result = triage_many(SUBSET, jobs=4, limits=LIMITS)
    wall = time.monotonic() - start

    assert wall < DEADLINE * 3 + 10.0
    target = next(o for o in result.outcomes if o.name == TARGET)
    assert target.classification == "unknown resource"
    assert target.exhausted_stage == "smt"
    assert target.exhausted_kind == "deadline"
    assert target.degraded
    for name in BYSTANDERS:
        bystander = next(o for o in result.outcomes if o.name == name)
        assert projection(bystander) == baseline[name]
    assert not result.failures


def test_killed_worker_is_quarantined(monkeypatch, baseline):
    """SIGKILL leaves no checkpoint to attribute: the grace window must
    notice the lost worker and quarantine the report."""
    monkeypatch.setenv("REPRO_FAULT", f"kill@smt@{TARGET}")
    start = time.monotonic()
    result = triage_many(SUBSET, jobs=2, limits=LIMITS)
    wall = time.monotonic() - start

    # grace window = 1.5x deadline + 0.5s per attempt, plus slack
    assert wall < (DEADLINE * 1.5 + 0.5) * 2 + 10.0
    target = next(o for o in result.outcomes if o.name == TARGET)
    assert target.classification == "unknown resource"
    assert target.timed_out
    assert target.error is not None
    assert "unresponsive" in target.error
    assert target.degraded
    assert target.exhausted_stage is None      # nobody saw it die
    for name in BYSTANDERS:
        bystander = next(o for o in result.outcomes if o.name == name)
        assert projection(bystander) == baseline[name]
    assert not result.failures


def test_kill_fault_is_harmless_in_serial_mode():
    """A kill spec must never take down the orchestrating process: in
    serial mode (no marked worker) it downgrades to a crash outcome."""
    install(f"kill@smt@{TARGET}")
    result = triage_many([TARGET], jobs=1, limits=LIMITS)
    install(None)
    (outcome,) = result.outcomes
    assert outcome.error is not None
    assert "FaultInjected" in outcome.error
    assert outcome.degraded


def test_cli_exit_code_reports_degraded_batches():
    """Per the status contract a degraded batch exits 3 — degradation
    outranks any real-bug verdicts also present in the batch."""
    from repro.cli import _triage_exit_code
    from repro.schema import EXIT_DEGRADED

    install(spec_for("sleep", "smt"))
    result = triage_many(SUBSET, jobs=1, limits=LIMITS)
    install(None)
    assert result.degraded
    assert _triage_exit_code(result) == EXIT_DEGRADED
