"""Tests for the transport-agnostic scheduler (:mod:`repro.sched`).

Three layers:

* the retry/quarantine core driven through a scripted in-memory
  transport — retries, quarantine, error conversion and the serial
  fallback, with no real triage work where none is needed;
* local backend parity — the pool and serial paths are the same core,
  so their verdict projections agree and neither grows fleet-only
  envelope fields;
* the remote backend end-to-end — two in-process ``repro serve``
  workers sharing one cache root, verdict-identical to the pool,
  including fault injection (the coordinator quarantines a worker-side
  crash) and a dead worker in the fleet list (work re-routes to the
  survivor).
"""

from __future__ import annotations

import socket

import pytest

from repro import obs
from repro.batch import triage_many
from repro.batch.outcomes import TriageOutcome
from repro.limits import Limits
from repro.limits.faults import install
from repro.sched import Scheduler, TransportBroken, TriageSpec
from repro.serve import TriageServer

# Same subset as the fault-injection matrix: the one report whose
# diagnosis ticks every stage, surrounded by innocent bystanders.
TARGET = "p10_toggle"
BYSTANDERS = ["d01_plus_one", "d02_negate", "d03_count", "p09_window"]
SUBSET = BYSTANDERS[:2] + [TARGET] + BYSTANDERS[2:]

DEADLINE = 1.0
LIMITS = Limits(deadline=DEADLINE, retries=0)


def projection(outcome):
    """The fields that must agree across backends for one report."""
    return (outcome.name, outcome.classification, outcome.num_queries,
            outcome.rounds)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT", raising=False)
    install(None)
    yield
    install(None)


@pytest.fixture(scope="module")
def baseline():
    install(None)
    result = triage_many(SUBSET, jobs=1, limits=LIMITS)
    assert not result.degraded
    return {o.name: projection(o) for o in result.outcomes}


def counter(name: str) -> int:
    return obs.snapshot()["counters"].get(name, 0)


@pytest.fixture
def live_counters():
    """Counter increments are no-ops while obs is disabled; turn it on
    for tests that assert on them, restoring the prior state."""
    was = obs.is_enabled()
    obs.enable()
    yield
    if not was:
        obs.disable()


# ---------------------------------------------------------------------------
# the retry core, driven through a scripted transport
# ---------------------------------------------------------------------------

class ScriptedTransport:
    """An in-memory transport: each report fails its first
    ``failures[name]`` attempts with an error outcome, then succeeds.
    The handle *is* the outcome, like InlineTransport's."""

    parallelism = 1
    broken_exceptions: tuple = ()
    idle_delay = 0.0

    def __init__(self, failures: dict[str, int] | None = None):
        self.failures = dict(failures or {})
        self.submits: list[tuple[str, int]] = []
        self.closed_with: bool | None = None

    def open(self):
        pass

    def submit(self, task):
        self.submits.append((task.name, task.attempt))
        if task.attempt < self.failures.get(task.name, 0):
            return TriageOutcome(
                name=task.name, classification="unknown",
                error="ScriptedFault: worker crashed")
        return TriageOutcome(name=task.name, classification="false alarm")

    def done(self, handle):
        return True

    def result(self, handle):
        return handle

    def cancel(self, handle):
        pass

    def rebuild(self):
        pass

    def close(self, *, force=False):
        self.closed_with = force


class RaisingResultTransport(ScriptedTransport):
    """``result`` raises — worker death the scheduler must convert into
    a per-report error outcome, never into transport breakage."""

    def result(self, handle):
        raise RuntimeError("worker process died")


class BrokenSubmitTransport(ScriptedTransport):
    """``submit`` raises TransportBroken — machinery failure, which the
    scheduler survives by finishing the batch in-process."""

    def submit(self, task):
        raise TransportBroken("no workers at all")


class TestRetryCore:
    def test_flaky_report_is_retried_then_succeeds(self, live_counters):
        transport = ScriptedTransport({"a": 1})
        before = counter("batch.retries")
        outcomes, broke = Scheduler(
            transport, limits=Limits(retries=2, backoff=0.0),
        ).run(["a", "b"])
        assert not broke
        by_name = {o.name: o for o in outcomes}
        assert by_name["a"].classification == "false alarm"
        assert by_name["a"].attempts == 2
        assert not by_name["a"].degraded
        assert by_name["b"].attempts == 1
        assert transport.submits == [("a", 0), ("b", 0), ("a", 1)]
        assert counter("batch.retries") == before + 1

    def test_exhausted_retries_quarantine(self, live_counters):
        transport = ScriptedTransport({"a": 99})
        before = counter("batch.quarantined")
        outcomes, broke = Scheduler(
            transport, limits=Limits(retries=1, backoff=0.0),
        ).run(["a"])
        assert not broke
        (outcome,) = outcomes
        assert outcome.degraded
        assert outcome.attempts == 2
        assert outcome.error is not None
        assert counter("batch.quarantined") == before + 1

    def test_no_limits_means_single_attempt(self):
        transport = ScriptedTransport({"a": 99})
        outcomes, _ = Scheduler(transport).run(["a"])
        assert outcomes[0].attempts == 1
        assert outcomes[0].degraded
        assert transport.submits == [("a", 0)]

    def test_result_exception_is_a_report_error_not_breakage(self):
        transport = RaisingResultTransport()
        outcomes, broke = Scheduler(transport).run(["a"])
        assert not broke
        assert "RuntimeError: worker process died" in outcomes[0].error
        assert outcomes[0].degraded
        # a graceful close: result() exceptions are not machinery failure
        assert transport.closed_with is False

    def test_broken_transport_falls_back_in_process(self, baseline):
        name = BYSTANDERS[0]
        outcomes, broke = Scheduler(
            BrokenSubmitTransport(), limits=LIMITS, spec=TriageSpec(),
        ).run([name])
        assert broke
        assert projection(outcomes[0]) == baseline[name]

    def test_outcomes_keep_input_order(self):
        transport = ScriptedTransport({"b": 1})
        outcomes, _ = Scheduler(
            transport, limits=Limits(retries=1, backoff=0.0),
        ).run(["a", "b", "c"])
        assert [o.name for o in outcomes] == ["a", "b", "c"]


# ---------------------------------------------------------------------------
# local backends: pool and serial are the same core
# ---------------------------------------------------------------------------

class TestLocalParity:
    def test_pool_matches_serial_and_keeps_local_envelope(self, baseline):
        result = triage_many(SUBSET, jobs=2, limits=LIMITS)
        assert result.mode == "parallel"
        assert {projection(o) for o in result.outcomes} == \
            set(baseline.values())
        env = result.to_dict()
        # fleet-only fields must stay absent on local runs: the
        # pre-scheduler envelope is byte-reproducible
        for key in ("backend", "workers", "steals"):
            assert key not in env
        for outcome in result.outcomes:
            assert "worker" not in outcome.to_dict()


# ---------------------------------------------------------------------------
# the remote backend: an in-process two-worker fleet
# ---------------------------------------------------------------------------

def _start_fleet(cache_dir: str, count: int = 2,
                 threads: int = 2) -> list[TriageServer]:
    servers = []
    for _ in range(count):
        server = TriageServer(port=0, cache_dir=cache_dir, workers=threads)
        server.start()
        servers.append(server)
    return servers


def _shutdown_fleet(servers) -> None:
    for server in servers:
        server.shutdown()


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    shared = str(tmp_path_factory.mktemp("fleet-store"))
    servers = _start_fleet(shared)
    yield [s.url for s in servers], shared
    _shutdown_fleet(servers)


class TestRemoteFleet:
    def test_remote_matches_pool_and_stamps_workers(self, fleet, baseline):
        urls, shared = fleet
        result = triage_many(SUBSET, workers=urls, cache_dir=shared,
                             limits=LIMITS)
        assert result.mode == "remote"
        assert not result.degraded
        assert {projection(o) for o in result.outcomes} == \
            set(baseline.values())
        for outcome in result.outcomes:
            assert outcome.worker in urls
        env = result.to_dict()
        assert env["backend"] == "remote"
        assert set(env["workers"]) == set(urls)
        assert env["steals"] >= 0

    def test_warm_rerun_is_served_without_new_msa_work(self, fleet):
        urls, shared = fleet
        cold = triage_many(SUBSET, workers=urls, cache_dir=shared,
                           limits=LIMITS)
        before = counter("msa.candidates")
        warm = triage_many(SUBSET, workers=urls, cache_dir=shared,
                           limits=LIMITS)
        assert counter("msa.candidates") == before
        assert {projection(o) for o in warm.outcomes} == \
            {projection(o) for o in cold.outcomes}

    def test_worker_fault_is_retried_and_quarantined(
            self, tmp_path, baseline):
        # A fresh fleet and cache root: the fault must actually run, not
        # be served from a prior clean run's store entry.  One server
        # with one worker thread, because report-scoped fault state is
        # process-global — concurrent in-process serve threads would
        # race on it (real fleets are separate processes).
        servers = _start_fleet(str(tmp_path / "fault-store"),
                               count=1, threads=1)
        urls = [s.url for s in servers]
        try:
            install(f"raise@smt@{TARGET}")
            result = triage_many(
                SUBSET, workers=urls,
                cache_dir=str(tmp_path / "fault-store"),
                limits=Limits(deadline=DEADLINE, retries=1, backoff=0.0))
            install(None)
        finally:
            _shutdown_fleet(servers)
        by_name = {o.name: o for o in result.outcomes}
        assert TARGET in {o.name for o in result.degraded}
        assert by_name[TARGET].degraded
        assert by_name[TARGET].attempts == 2  # retried once, then gave up
        assert by_name[TARGET].error is not None
        for name in BYSTANDERS:
            assert projection(by_name[name]) == baseline[name]

    def test_dead_worker_reroutes_to_survivor(self, tmp_path, baseline):
        # grab a port that is guaranteed closed
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_url = f"http://127.0.0.1:{probe.getsockname()[1]}"
        probe.close()
        servers = _start_fleet(str(tmp_path / "lone-store"), count=1)
        try:
            result = triage_many(
                SUBSET, workers=[dead_url, servers[0].url],
                cache_dir=str(tmp_path / "lone-store"), limits=LIMITS)
        finally:
            _shutdown_fleet(servers)
        assert result.mode == "remote"
        assert not result.degraded
        assert {projection(o) for o in result.outcomes} == \
            set(baseline.values())
        for outcome in result.outcomes:
            assert outcome.worker == servers[0].url
