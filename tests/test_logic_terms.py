"""Unit tests for linear terms."""

import pytest

from repro.logic import LinTerm, Var, VarKind, VarSupply

x = Var("x")
y = Var("y")
z = Var("z")


class TestConstruction:
    def test_make_merges_duplicates(self):
        t = LinTerm.make([(x, 2), (x, 3), (y, 1)], 4)
        assert t.coeff(x) == 5
        assert t.coeff(y) == 1
        assert t.const == 4

    def test_make_drops_zeros(self):
        t = LinTerm.make([(x, 2), (x, -2), (y, 1)])
        assert t.variables == frozenset([y])

    def test_constant(self):
        assert LinTerm.constant(7).const == 7
        assert LinTerm.constant(7).is_constant

    def test_var_with_zero_coeff_is_zero(self):
        assert LinTerm.var(x, 0) == LinTerm.ZERO

    def test_rejects_non_integer_coeff(self):
        with pytest.raises(TypeError):
            LinTerm.make([(x, 1.5)])

    def test_equal_terms_compare_equal(self):
        t1 = LinTerm.make([(x, 1), (y, 2)], 3)
        t2 = LinTerm.make([(y, 2), (x, 1)], 3)
        assert t1 == t2
        assert hash(t1) == hash(t2)


class TestArithmetic:
    def test_addition(self):
        t = LinTerm.var(x) + LinTerm.var(y, 2) + 3
        assert t.coeff(x) == 1 and t.coeff(y) == 2 and t.const == 3

    def test_subtraction_cancels(self):
        t = LinTerm.var(x) - LinTerm.var(x)
        assert t == LinTerm.ZERO

    def test_negation(self):
        t = -(LinTerm.var(x, 2) + 1)
        assert t.coeff(x) == -2 and t.const == -1

    def test_scale(self):
        t = (LinTerm.var(x) + 2).scale(3)
        assert t.coeff(x) == 3 and t.const == 6

    def test_scale_by_int_operator(self):
        assert 3 * LinTerm.var(x) == LinTerm.var(x, 3)

    def test_exact_div(self):
        t = LinTerm.make([(x, 4)], 8).exact_div(4)
        assert t.coeff(x) == 1 and t.const == 2

    def test_exact_div_raises_when_inexact(self):
        with pytest.raises(ValueError):
            LinTerm.make([(x, 3)], 1).exact_div(2)

    def test_content(self):
        assert LinTerm.make([(x, 4), (y, 6)], 1).content() == 2
        assert LinTerm.constant(5).content() == 0


class TestEvaluation:
    def test_evaluate(self):
        t = LinTerm.make([(x, 2), (y, -1)], 5)
        assert t.evaluate({x: 3, y: 4}) == 2 * 3 - 4 + 5

    def test_substitute(self):
        t = LinTerm.make([(x, 2), (y, 1)])
        result = t.substitute({x: LinTerm.var(z) + 1})
        assert result == LinTerm.make([(z, 2), (y, 1)], 2)

    def test_substitute_simultaneous(self):
        # x := y, y := x must swap, not chain
        t = LinTerm.make([(x, 1), (y, 1)], 0)
        result = t.substitute({x: LinTerm.var(y), y: LinTerm.var(x)})
        assert result == t

    def test_rename(self):
        t = LinTerm.make([(x, 2)], 1).rename({x: z})
        assert t == LinTerm.make([(z, 2)], 1)


class TestVarSupply:
    def test_fresh_avoids_reserved(self):
        supply = VarSupply([Var("$t0"), Var("$t1")])
        v = supply.fresh()
        assert v.name not in ("$t0", "$t1")

    def test_fresh_vars_distinct(self):
        supply = VarSupply()
        names = {supply.fresh().name for _ in range(100)}
        assert len(names) == 100

    def test_kind(self):
        supply = VarSupply()
        assert supply.fresh(kind=VarKind.ABSTRACTION).is_abstraction


class TestDisplay:
    def test_str_simple(self):
        assert str(LinTerm.var(x) + 1) == "x + 1"

    def test_str_negative_leading(self):
        assert str(-LinTerm.var(x) - 1) == "-x - 1"

    def test_str_coefficients(self):
        t = LinTerm.make([(x, 2), (y, -3)], 0)
        assert str(t) == "2*x - 3*y"

    def test_str_constant(self):
        assert str(LinTerm.constant(-4)) == "-4"
