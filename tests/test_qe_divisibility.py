"""Divisibility-heavy quantifier elimination tests (the part of Cooper's
method plain Fourier–Motzkin-style reasoning cannot do)."""

from hypothesis import given, settings, strategies as st

from repro.logic import (
    LinTerm,
    Var,
    conj,
    disj,
    dvd,
    eq,
    exists,
    forall,
    ge,
    le,
)
from repro.qe import decide_closed, eliminate_exists
from repro.smt import SmtSolver

x, y, z = Var("x"), Var("y"), Var("z")


class TestResidues:
    def test_every_residue_class_hit(self):
        # forall y exists x. m | x - y   for each m
        for m in (2, 3, 5):
            assert decide_closed(
                forall([y], exists([x], dvd(m, LinTerm.var(x)
                                            - LinTerm.var(y))))
            )

    def test_crt_style(self):
        # exists x. x = 1 mod 2 and x = 2 mod 3: true (x = 5 mod 6)
        phi = conj(dvd(2, LinTerm.var(x) - 1), dvd(3, LinTerm.var(x) - 2))
        result = eliminate_exists([x], phi)
        assert result.is_true or result.evaluate({})

    def test_conflicting_residues(self):
        # exists x. 2 | x and 2 | x + 1: false
        phi = conj(dvd(2, LinTerm.var(x)), dvd(2, LinTerm.var(x) + 1))
        result = eliminate_exists([x], phi)
        assert result.is_false or not result.evaluate({})

    def test_scaled_divisibility_projection(self):
        # exists x. 3x = y + z  <=>  3 | y + z
        phi = eq(LinTerm.var(x, 3), LinTerm.var(y) + LinTerm.var(z))
        result = eliminate_exists([x], phi)
        solver = SmtSolver()
        assert solver.equivalent(
            result, dvd(3, LinTerm.var(y) + LinTerm.var(z))
        )

    def test_negated_divisibility(self):
        # exists x in [0,1]. 2 !| x : true (x = 1)
        phi = conj(ge(x, 0), le(x, 1), dvd(2, LinTerm.var(x), negated=True))
        result = eliminate_exists([x], phi)
        assert result.is_true or result.evaluate({})


@settings(max_examples=60, deadline=None)
@given(st.integers(2, 5), st.integers(2, 5), st.integers(-4, 4))
def test_two_modulus_projection_matches_smt(m1, m2, offset):
    """QE of 'exists x. m1 | x and m2 | x + offset and y <= x <= y + K'
    must agree with the SMT stack for boxed y."""
    K = 12
    phi = conj(
        dvd(m1, LinTerm.var(x)),
        dvd(m2, LinTerm.var(x) + offset),
        ge(LinTerm.var(x), LinTerm.var(y)),
        le(LinTerm.var(x), LinTerm.var(y) + K),
    )
    result = eliminate_exists([x], phi)
    solver = SmtSolver()
    for vy in range(-6, 7):
        grounded = phi.substitute({y: LinTerm.constant(vy)})
        claimed = result.substitute({y: LinTerm.constant(vy)})
        assert claimed.evaluate({}) == solver.is_sat(grounded), (
            m1, m2, offset, vy
        )
