"""Tests for the simulated user study.

The full Figure 7 regeneration lives in the benchmark harness (it takes
minutes); these tests exercise the components and run a scaled-down
study to check the qualitative findings: the technique must beat manual
classification decisively on both accuracy and time.
"""

import random

import pytest

from repro.diagnosis import Answer, EngineConfig
from repro.suite import BENCHMARKS, benchmark_by_name
from repro.userstudy import (
    DiagnosisTree,
    Participant,
    UserStudy,
    accuracy_ttest,
    answer_query,
    classify_manually,
    format_figure7,
    run_user_study,
    summarize,
    time_ttest,
    welch_ttest,
)
from repro.userstudy.participants import (
    MANUAL_GIVEUP,
    QUERY_BASE_CORRECT,
)


class TestParticipantModel:
    def test_skill_in_range(self):
        rng = random.Random(1)
        for i in range(200):
            p = Participant.sample(i, rng)
            assert 0.0 <= p.skill <= 1.0

    def test_manual_distribution_shape(self):
        """Across many trials manual accuracy must hover near the paper's
        ~33% with a meaningful don't-know share."""
        rng = random.Random(7)
        bench = benchmark_by_name("p06_chroot")
        outcomes = {"correct": 0, "wrong": 0, "unknown": 0}
        trials = 3000
        for i in range(trials):
            participant = Participant.sample(i, rng)
            answer, seconds = classify_manually(participant, bench, rng)
            assert seconds > 30
            if answer == "unknown":
                outcomes["unknown"] += 1
            elif answer == bench.classification:
                outcomes["correct"] += 1
            else:
                outcomes["wrong"] += 1
        correct_rate = outcomes["correct"] / trials
        unknown_rate = outcomes["unknown"] / trials
        assert 0.2 < correct_rate < 0.5
        assert abs(unknown_rate - MANUAL_GIVEUP) < 0.05

    def test_query_answers_mostly_truthful(self):
        rng = random.Random(3)
        from repro.diagnosis.queries import Query
        from repro.logic import parse_formula

        query = Query("invariant", parse_formula("x >= 0"), "Is x >= 0?")
        agree = 0
        trials = 2000
        for i in range(trials):
            participant = Participant.sample(i, rng)
            answer, seconds = answer_query(
                participant, query, Answer.YES, rng
            )
            assert seconds > 1
            if answer is Answer.YES:
                agree += 1
        assert agree / trials > QUERY_BASE_CORRECT - 0.08

    def test_harder_queries_less_accurate(self):
        rng = random.Random(5)
        from repro.diagnosis.queries import Query
        from repro.logic import parse_formula

        easy = Query("invariant", parse_formula("x >= 0"), "easy")
        hard = Query(
            "invariant",
            parse_formula("x + y + z >= 0 && x <= y"),
            "hard",
        )

        def accuracy(query):
            hits = 0
            local = random.Random(11)
            for i in range(3000):
                participant = Participant(i, 0.6)
                answer, _ = answer_query(participant, query, Answer.YES,
                                         local)
                hits += answer is Answer.YES
            return hits / 3000

        assert accuracy(easy) > accuracy(hard)


class TestDiagnosisTree:
    def test_tree_caches_prefixes(self):
        from repro.suite import load_analysis

        bench = benchmark_by_name("p10_toggle")
        _, analysis = load_analysis(bench)
        tree = DiagnosisTree(analysis, EngineConfig(max_rounds=6))
        kind, payload = tree.resolve(())
        assert kind == "ask"
        first_query = payload
        # same prefix resolves from cache to the identical object
        kind2, payload2 = tree.resolve(())
        assert payload2 is first_query
        # answering NO must terminate (validation via learned witness)
        kind3, result = tree.resolve((Answer.NO,))
        assert kind3 == "done"
        assert result.classification == "real bug"


class TestStats:
    def test_welch_known_values(self):
        left = [1.0, 2.0, 3.0, 4.0]
        right = [10.0, 11.0, 12.0, 13.0]
        result = welch_ttest(left, right)
        assert result.p_value < 1e-4
        assert result.n_left == result.n_right == 4

    def test_identical_samples_insignificant(self):
        data = [5.0, 6.0, 7.0, 8.0]
        result = welch_ttest(data, list(data))
        assert result.p_value > 0.9

    def test_pure_python_fallback_agrees(self):
        """The scipy-free Welch implementation (used when scipy is not
        installed) must match the scipy path to float precision."""
        from repro.userstudy.stats import _welch_py, scipy_stats

        left = [1.0, 2.0, 3.0, 4.0]
        right = [10.0, 11.0, 12.0, 13.0]
        t, p = _welch_py(left, right)
        assert t < 0 and p < 1e-4
        assert _welch_py(left, list(left)) == (0.0, 1.0)
        if scipy_stats is not None:
            ref = scipy_stats.ttest_ind(left, right, equal_var=False)
            assert abs(t - float(ref.statistic)) < 1e-10
            assert abs(p - float(ref.pvalue)) < 1e-10


class TestSmallStudy:
    """A scaled-down study over a 3-problem subset: fast enough for the
    unit suite, still end-to-end through the real engine."""

    @pytest.fixture(scope="class")
    def study(self):
        subset = tuple(
            b for b in BENCHMARKS
            if b.name in ("p03_square", "p06_chroot", "p10_toggle")
        )
        return UserStudy(
            num_recruited=14,
            seed=42,
            benchmarks=subset,
            engine_config=EngineConfig(max_rounds=6),
        ).run()

    def test_both_conditions_populated(self, study):
        assert study.times("manual") and study.times("technique")

    def test_technique_beats_manual_accuracy(self, study):
        manual = study.average_cell("manual")
        technique = study.average_cell("technique")
        assert technique.pct_correct > manual.pct_correct + 20

    def test_technique_much_faster(self, study):
        manual = study.average_cell("manual")
        technique = study.average_cell("technique")
        assert technique.avg_seconds < manual.avg_seconds / 2

    def test_ttests_significant(self, study):
        assert accuracy_ttest(study).p_value < 0.01
        assert time_ttest(study).p_value < 1e-6

    def test_table_renders(self, study):
        table = format_figure7(study)
        assert "Manual classification" in table
        assert "Average" in table
        assert "p =" in table

    def test_summary_keys(self, study):
        summary = summarize(study)
        assert set(summary) >= {
            "participants", "manual", "technique",
            "accuracy_p_value", "time_p_value",
        }
