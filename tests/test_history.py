"""Tests for the run-history store (repro.obs.history)."""

from __future__ import annotations

import json

import pytest

from repro.obs import history


def make_snapshot(p95=0.010, count=20, total=0.5):
    """A minimal snapshot with one meaningful stage and one noise stage."""
    return {
        "enabled": True,
        "counters": {"smt.is_sat.hit": 7, "smt.is_sat.miss": 3},
        "gauges": {},
        "spans": {
            "smt.check": {"count": count, "total_s": total, "max_s": p95},
            "tiny": {"count": 2, "total_s": 0.0001, "max_s": 0.0001},
        },
        "hists": {
            "smt.check": {"count": count, "total": total, "min": 0.001,
                          "max": p95, "p50": p95 / 2, "p95": p95,
                          "p99": p95},
            "tiny": {"count": 2, "total": 0.0001, "min": 0.00005,
                     "max": 0.00005, "p50": 0.00005, "p95": 0.00005,
                     "p99": 0.00005},
        },
    }


class TestLoadAndAppend:
    def test_missing_file_is_empty_history(self, tmp_path):
        loaded = history.load(tmp_path / "absent.json")
        assert loaded == {"schema": "repro.history/1", "runs": []}

    def test_empty_file_is_empty_history(self, tmp_path):
        path = tmp_path / "BENCH_obs.json"
        path.write_text("")
        assert history.load(path)["runs"] == []

    def test_foreign_schema_fails_loudly(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/1", "runs": []}))
        with pytest.raises(ValueError, match="unsupported history schema"):
            history.load(path)

    def test_append_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_obs.json"
        entry = history.append_run(path, make_snapshot(), label="ci",
                                   meta={"accuracy": 1.0}, timestamp=123.0)
        assert entry["label"] == "ci"
        loaded = history.load(path)
        assert loaded["schema"] == "repro.history/1"
        (run,) = loaded["runs"]
        assert run["timestamp"] == 123.0
        assert run["meta"] == {"accuracy": 1.0}
        assert run["counters"]["smt.is_sat.hit"] == 7
        assert run["stages"]["smt.check"]["p95_s"] == 0.010

    def test_oldest_runs_are_evicted(self, tmp_path):
        path = tmp_path / "h.json"
        for i in range(5):
            history.append_run(path, make_snapshot(), label=f"run{i}",
                               timestamp=float(i), max_runs=3)
        runs = history.load(path)["runs"]
        assert [r["label"] for r in runs] == ["run2", "run3", "run4"]


class TestStageSummary:
    def test_distills_spans_and_hists(self):
        stages = history.stage_summary(make_snapshot(p95=0.02, count=10,
                                                     total=0.1))
        entry = stages["smt.check"]
        assert entry["count"] == 10
        assert entry["total_s"] == 0.1
        assert entry["mean_s"] == pytest.approx(0.01)
        assert entry["p95_s"] == 0.02

    def test_empty_snapshot_is_empty(self):
        assert history.stage_summary(None) == {}
        assert history.stage_summary({}) == {}


class TestRegressionGate:
    def test_empty_history_never_flags(self, tmp_path):
        assert history.check_regressions(
            {"schema": "repro.history/1", "runs": []},
            make_snapshot(p95=99.0)) == []

    def test_slowdown_beyond_threshold_flags(self, tmp_path):
        path = tmp_path / "h.json"
        history.append_run(path, make_snapshot(p95=0.010))
        flagged = history.check_regressions(path, make_snapshot(p95=0.015))
        (reg,) = flagged
        assert reg["stage"] == "smt.check"
        assert reg["baseline_p95_s"] == 0.010
        assert reg["current_p95_s"] == 0.015
        assert reg["ratio"] == pytest.approx(1.5)

    def test_slowdown_within_threshold_passes(self, tmp_path):
        path = tmp_path / "h.json"
        history.append_run(path, make_snapshot(p95=0.010))
        assert history.check_regressions(path,
                                         make_snapshot(p95=0.011)) == []

    def test_threshold_is_configurable(self, tmp_path):
        path = tmp_path / "h.json"
        history.append_run(path, make_snapshot(p95=0.010))
        current = make_snapshot(p95=0.013)
        assert history.check_regressions(path, current, threshold=0.5) == []
        assert len(history.check_regressions(path, current,
                                             threshold=0.1)) == 1

    def test_noise_stages_are_ignored(self, tmp_path):
        """The 'tiny' stage regresses hugely but stays under the total-
        seconds floor, so it must never flag."""
        path = tmp_path / "h.json"
        history.append_run(path, make_snapshot())
        current = make_snapshot()
        current["spans"]["tiny"]["total_s"] = 0.0002
        current["hists"]["tiny"]["p95"] = 0.005  # 100x slower
        assert history.check_regressions(path, current) == []

    def test_low_sample_counts_are_ignored(self, tmp_path):
        path = tmp_path / "h.json"
        base = make_snapshot(p95=0.010, count=3)  # below MIN_COUNT
        history.append_run(path, base)
        assert history.check_regressions(
            path, make_snapshot(p95=0.050, count=3)) == []

    def test_baseline_is_latest_run(self, tmp_path):
        path = tmp_path / "h.json"
        history.append_run(path, make_snapshot(p95=0.100), label="old")
        history.append_run(path, make_snapshot(p95=0.010), label="new")
        # 0.015 regresses against the new 0.010 baseline even though it
        # would pass against the old 0.100 one
        assert len(history.check_regressions(path,
                                             make_snapshot(p95=0.015))) == 1


class TestFormatHistory:
    def test_empty(self):
        assert "empty" in history.format_history(
            {"schema": "repro.history/1", "runs": []})

    def test_table_shows_recent_runs(self, tmp_path):
        path = tmp_path / "h.json"
        for i in range(3):
            history.append_run(path, make_snapshot(), label=f"run{i}",
                               meta={"accuracy": 0.9, "wall_seconds": 1.5},
                               timestamp=1700000000.0 + i)
        text = history.format_history(history.load(path), last=2)
        assert "run1" in text and "run2" in text
        assert "run0" not in text
        assert "90%" in text
        assert "1.50" in text
