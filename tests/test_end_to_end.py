"""End-to-end property: on random programs, query-guided diagnosis with a
ground-truth oracle must agree with brute-force classification.

This is the strongest whole-system test: random program -> auto
annotation -> symbolic analysis -> abduction -> Figure 6 loop with the
exhaustive oracle -> verdict, compared against the truth established by
running the interpreter on every input in the oracle's box.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.api import Pipeline
from repro.diagnosis import EngineConfig, ExhaustiveOracle, Verdict, \
    diagnose_error
from repro.lang import run_program


def _random_program(rng: random.Random) -> str:
    guard = rng.choice(["i < n", "i <= n"])
    incr = rng.randint(1, 2)
    step = rng.randint(0, 2)
    start = rng.randint(0, 1)
    claim = rng.choice([
        "acc >= 0",
        "acc <= 2 * n + 2",
        f"acc + {rng.randint(0, 2)} >= i - n",
        "acc >= n",
        "i > n",
        "i >= n",
    ])
    branchy = rng.random() < 0.5
    body_extra = (
        "    if (m > 0) { acc = acc + 1; } else { skip; }\n"
        if branchy else ""
    )
    return f"""
    program rnd(unsigned n, m) {{
      var i = {start}, acc = 0;
      while ({guard}) {{
        i = i + {incr};
        acc = acc + {step};
{body_extra}      }}
      assert({claim});
    }}
    """


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1_000_000))
def test_diagnosis_matches_brute_force_truth(seed):
    rng = random.Random(seed)
    source = _random_program(rng)
    outcome = Pipeline().analyze(source)
    program, analysis = outcome.program, outcome.analysis

    radius = 5
    failing = 0
    total = 0
    for n in range(0, radius + 1):
        for m in range(-radius, radius + 1):
            total += 1
            if not run_program(program, {"n": n, "m": m}).ok:
                failing += 1
    truth = "real bug" if failing else "false alarm"

    oracle = ExhaustiveOracle(program, analysis, radius=radius)
    result = diagnose_error(analysis, oracle,
                            EngineConfig(max_rounds=12))

    if result.verdict is Verdict.UNRESOLVED:
        # the bounded oracle may legitimately fail to decide; it must
        # never be *wrong*, which is what the other branches check
        return
    assert result.classification == truth, (
        f"diagnosis={result.classification} truth={truth} "
        f"({failing}/{total} failing)\n{source}\n"
        + "\n".join(
            f"Q: {i.query.text} -> {i.answer.value}"
            for i in result.interactions
        )
    )
