"""Tests for the provenance layer (repro.obs.provenance).

The load-bearing property is the satellite requirement: on every
Figure 7 benchmark, the derivation DAG behind a non-discharged verdict
must contain at least one MSA search node and the Gamma-vs-Upsilon cost
comparison that picked which query to ask — i.e. the trace really is
the evidence the paper's abductive loop rests on, not just timing data.
The ``repro.trace/1`` stream must round-trip losslessly, and the chrome
and prometheus exporters must emit structurally valid output.
"""

from __future__ import annotations

import io
import json

import pytest

from repro import obs
from repro.obs import provenance as prov
from repro.batch import triage_many
from repro.suite import BENCHMARKS

FIGURE7 = [b.name for b in BENCHMARKS]


@pytest.fixture(autouse=True)
def clean_state():
    """Every test starts with both layers off and empty."""
    prov.disable()
    prov.reset()
    obs.disable()
    obs.reset()
    yield
    prov.disable()
    prov.reset()
    obs.disable()
    obs.reset()


class TestRecorder:
    def test_disabled_records_nothing(self):
        assert prov.record("entailment", lemma="1") == 0
        assert prov.nodes() == []
        assert prov.node_count() == 0

    def test_enable_also_enables_core_obs(self):
        prov.enable()
        assert prov.is_enabled()
        assert obs.is_enabled()

    def test_nodes_are_stamped_with_span_and_sequence(self):
        prov.enable()
        with obs.span("outer"):
            node_id = prov.record("query", text="I and phi sat?",
                                  answer="yes")
        (node,) = prov.nodes()
        assert node["id"] == node_id
        assert node["kind"] == "query"
        assert node["span"] > 0
        assert node["at"] > 0
        assert node["text"] == "I and phi sat?"

    def test_mark_and_nodes_since(self):
        prov.enable()
        prov.record("entailment", lemma="1")
        marker = prov.mark()
        prov.record("entailment", lemma="2")
        prov.record("verdict", verdict="real bug")
        since = prov.nodes_since(marker)
        assert [n["kind"] for n in since] == ["entailment", "verdict"]
        assert all(n["id"] >= marker for n in since)

    def test_reset_restarts_ids(self):
        prov.enable()
        prov.record("query")
        prov.reset()
        assert prov.nodes() == []
        assert prov.record("query") == 1

    def test_fmla_truncates_long_renderings(self):
        assert prov.fmla("x <= 0") == "x <= 0"
        long = prov.fmla("a" * 500)
        assert len(long) == 160
        assert long.endswith("...")


class TestDerivationDagShape:
    """The satellite requirement, checked on all 11 Figure 7 problems."""

    @pytest.fixture(scope="class")
    def figure7(self):
        prov.disable()
        prov.reset()
        obs.disable()
        obs.reset()
        prov.enable()
        try:
            result = triage_many(FIGURE7, jobs=2, telemetry=True)
        finally:
            prov.disable()
            obs.disable()
        return result

    def test_every_report_carries_a_dag(self, figure7):
        assert sorted(o.name for o in figure7.outcomes) == sorted(FIGURE7)
        for outcome in figure7.outcomes:
            assert outcome.provenance, f"{outcome.name}: empty DAG"

    def test_every_dag_ends_in_a_verdict_node(self, figure7):
        for outcome in figure7.outcomes:
            last = outcome.provenance[-1]
            assert last["kind"] == "verdict", outcome.name
            # the engine records its own vocabulary; it must map onto the
            # outcome's classification through the shared schema
            from repro.schema import TriageVerdict
            mapped = TriageVerdict.from_classification(last["verdict"])
            assert mapped.value == outcome.classification
            assert last["rounds"] == outcome.rounds
            assert last["queries"] == outcome.num_queries
            assert last["reason"]

    def test_non_discharged_reports_have_msa_and_choice(self, figure7):
        """A verdict that needed the oracle must be backed by an MSA
        search and the Gamma-vs-Upsilon comparison that ordered it."""
        for outcome in figure7.outcomes:
            if outcome.num_queries == 0:
                continue  # discharged by Lemma 1/2 before any query
            kinds = [n["kind"] for n in outcome.provenance]
            assert "msa.node" in kinds, outcome.name
            choices = [n for n in outcome.provenance
                       if n["kind"] == "choice"]
            assert choices, outcome.name
            for choice in choices:
                assert choice["chosen"] in ("invariant", "witness")
                assert "gamma_cost" in choice
                assert "upsilon_cost" in choice

    def test_entailment_nodes_carry_smt_verdicts(self, figure7):
        for outcome in figure7.outcomes:
            checks = [n for n in outcome.provenance
                      if n["kind"] == "entailment"]
            assert checks, outcome.name
            for node in checks:
                assert isinstance(node["verdict"], bool)
                assert node["lemma"] in ("consistency", "lemma-1",
                                         "lemma-2")
                assert node["check"]

    def test_qe_nodes_count_atoms_and_bounds(self, figure7):
        qe_nodes = [n for o in figure7.outcomes for n in o.provenance
                    if n["kind"] == "qe.eliminate"]
        assert qe_nodes  # every benchmark quantifies over MSA variables
        for node in qe_nodes:
            assert node["var"]
            assert node["delta"] >= 1
            assert node["lcm"] >= 1
            assert node["atoms_before"] >= 0
            assert node["atoms_after"] >= 0
            assert node["lowers"] >= 0 and node["uppers"] >= 0

    def test_msa_nodes_name_their_candidates(self, figure7):
        msa_nodes = [n for o in figure7.outcomes for n in o.provenance
                     if n["kind"] == "msa.node"]
        assert msa_nodes
        for node in msa_nodes:
            assert node["status"] in ("kept", "infeasible")
            assert isinstance(node["variables"], (list, tuple))
            if node["status"] == "kept" and node.get("assignment"):
                assert set(node["assignment"]) <= set(node["variables"])

    def test_abduce_nodes_link_msa_to_formula(self, figure7):
        abduces = [n for o in figure7.outcomes for n in o.provenance
                   if n["kind"] == "abduce" and n["cost"] is not None]
        assert abduces
        for node in abduces:
            assert node["abduction_kind"] in ("proof_obligation",
                                              "failure_witness")
            assert node["formula"]
            assert node["cost"] >= 0

    def test_render_tree_shows_concrete_leaves(self, figure7):
        events = [dict(e, report=o.name)
                  for o in figure7.outcomes for e in o.events]
        nodes = [dict(n, report=o.name)
                 for o in figure7.outcomes for n in o.provenance]
        text = prov.render_tree(events, nodes, report="p10_toggle")
        assert "triage.report" in text
        assert "[msa] candidate" in text
        assert "[choice] ask" in text
        assert "[verdict]" in text


class TestTraceRoundTrip:
    def test_stream_round_trips_losslessly(self):
        prov.enable()
        with obs.span("work"):
            prov.record("entailment", lemma="1",
                        check="I |= phi", verdict=True)
            prov.record("verdict", verdict="false alarm", rounds=1,
                        queries=0, reason="Lemma 1")
        events, nodes, snap = obs.events(), prov.nodes(), obs.snapshot()

        buf = io.StringIO()
        count = prov.export_trace(buf, events=events, prov_nodes=nodes,
                                  snapshot=snap)
        # header + each event + each node + snapshot
        assert count == 1 + len(events) + len(nodes) + 1

        buf.seek(0)
        parsed = prov.read_trace(buf)
        assert parsed["schema"] == prov.TRACE_SCHEMA
        assert parsed["events"] == events
        assert parsed["nodes"] == nodes
        assert parsed["snapshot"] == {"type": "snapshot", **snap}

    def test_round_trip_via_file(self, tmp_path):
        prov.enable()
        with obs.span("s"):
            prov.record("query", text="q", answer="yes")
        path = tmp_path / "run.trace.jsonl"
        prov.export_trace(path)
        parsed = prov.read_trace(path)
        assert [n["kind"] for n in parsed["nodes"]] == ["query"]
        assert parsed["snapshot"]["spans"]["s"]["count"] == 1

    def test_header_line_is_first_and_versioned(self, tmp_path):
        path = tmp_path / "t.jsonl"
        prov.export_trace(path, events=[], prov_nodes=[], snapshot={})
        first = json.loads(path.read_text().splitlines()[0])
        assert first == {"type": "header", "schema": "repro.trace/1"}

    def test_missing_header_is_rejected(self):
        buf = io.StringIO('{"type": "span", "name": "x"}\n')
        with pytest.raises(ValueError, match="missing header"):
            prov.read_trace(buf)

    def test_foreign_schema_is_rejected(self):
        buf = io.StringIO('{"type": "header", "schema": "repro.trace/9"}\n')
        with pytest.raises(ValueError, match="unsupported trace schema"):
            prov.read_trace(buf)


class TestRenderTree:
    def _span(self, id, name, parent=0, dur=0.001, **attrs):
        return {"type": "span", "id": id, "parent": parent, "name": name,
                "dur_s": dur, "depth": 0, "attrs": attrs}

    def test_nodes_join_onto_their_spans(self):
        events = [self._span(1, "engine.run"),
                  self._span(2, "msa.find", parent=1)]
        nodes = [{"type": "prov", "id": 1, "span": 2, "at": 3,
                  "kind": "msa.node", "variables": ["n"], "cost": 2,
                  "status": "kept"}]
        text = prov.render_tree(events, nodes)
        lines = text.splitlines()
        assert lines[0].startswith("engine.run")
        assert lines[1].strip().startswith("msa.find")
        assert "[msa] candidate {n} cost=2: kept" in lines[2]

    def test_runs_of_bare_leaf_spans_fold(self):
        events = [self._span(1, "triage.report")]
        events += [self._span(i, "smt.check", parent=1, dur=0.002)
                   for i in range(2, 42)]
        text = prov.render_tree(events, [])
        assert "smt.check x40" in text
        assert text.count("smt.check") == 1

    def test_orphan_nodes_survive_span_eviction(self):
        nodes = [{"type": "prov", "id": 1, "span": 999, "at": 1,
                  "kind": "verdict", "verdict": "real bug", "rounds": 1,
                  "queries": 2, "reason": "oracle affirmed"}]
        text = prov.render_tree([], nodes)
        assert "[verdict] real bug" in text

    def test_report_filter_selects_one_lane(self):
        events = [dict(self._span(1, "triage.report"), report="a"),
                  dict(self._span(2, "triage.report"), report="b")]
        text = prov.render_tree(events, [], report="a")
        assert text.count("triage.report") == 1


class TestExporters:
    def test_chrome_trace_is_perfetto_shaped(self, tmp_path):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        path = tmp_path / "trace.json"
        doc = obs.export_chrome(path)
        on_disk = json.loads(path.read_text())
        assert on_disk == doc
        assert isinstance(doc["traceEvents"], list)
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= {"M", "X"}
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        for e in complete:
            assert {"pid", "tid", "ts", "dur", "name"} <= set(e)
            assert e["dur"] >= 0

    def test_prometheus_text_format(self):
        obs.enable()
        obs.inc("smt.is_sat.miss", 3)
        obs.observe("qe.blowup", 2.0)
        with obs.span("smt.check"):
            pass
        text = obs.export_prometheus()
        assert "# TYPE repro_smt_is_sat_miss_total counter" in text
        assert "repro_smt_is_sat_miss_total 3" in text
        assert 'repro_hist{name="qe.blowup",quantile="0.95"} 2.0' in text
        assert 'repro_span_seconds_count{span="smt.check"} 1' in text
        assert text.endswith("\n")

    def test_histograms_merge_across_snapshots(self):
        obs.enable()
        for v in (1.0, 2.0, 3.0):
            obs.observe("h", v)
        a = obs.snapshot()
        obs.reset()
        obs.enable()
        for v in (10.0, 20.0):
            obs.observe("h", v)
        b = obs.snapshot()
        merged = obs.merge_snapshots(a, b)
        h = merged["hists"]["h"]
        assert h["count"] == 5
        assert h["total"] == 36.0
        assert h["min"] == 1.0 and h["max"] == 20.0
        assert h["p50"] in (2.0, 3.0)
