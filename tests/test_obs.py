"""Tests for the observability layer (repro.obs)."""

import io
import json

import pytest

from repro import obs
from repro.batch import triage_many


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts disabled with an empty state and leaves no trace."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestDisabledFastPath:
    def test_span_returns_shared_null_span(self):
        assert obs.span("a") is obs.NULL_SPAN
        assert obs.span("b", attr=1) is obs.NULL_SPAN

    def test_null_span_is_reentrant(self):
        with obs.span("outer") as s:
            assert s is obs.NULL_SPAN
            with obs.span("inner"):
                pass
        assert obs.snapshot()["spans"] == {}

    def test_probes_record_nothing(self):
        obs.inc("c")
        obs.gauge("g", 3.5)
        with obs.span("s"):
            pass
        snap = obs.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["spans"] == {}
        assert obs.events() == []

    def test_capture_yields_none_snapshot(self):
        with obs.capture() as cap:
            obs.inc("c")
        assert cap.snapshot is None


class TestEnabled:
    def test_counters_accumulate(self):
        obs.enable()
        obs.inc("hits")
        obs.inc("hits")
        obs.inc("bytes", 10)
        assert obs.snapshot()["counters"] == {"hits": 2, "bytes": 10}

    def test_gauge_last_write_wins(self):
        obs.enable()
        obs.gauge("cost", 1.0)
        obs.gauge("cost", 7.0)
        assert obs.snapshot()["gauges"]["cost"] == 7.0

    def test_spans_nest_and_record_depth(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner", kind="x"):
                pass
        ev = obs.events()
        # inner closes first, at depth 1 (inside outer)
        assert [e["name"] for e in ev] == ["inner", "outer"]
        assert ev[0]["depth"] == 1 and ev[1]["depth"] == 0
        assert ev[0]["attrs"] == {"kind": "x"}
        stats = obs.snapshot()["spans"]
        assert stats["outer"]["count"] == 1
        assert stats["inner"]["count"] == 1
        assert stats["outer"]["total_s"] >= stats["inner"]["total_s"]

    def test_span_records_error_type(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("nope")
        assert obs.events()[-1]["error"] == "ValueError"

    def test_span_aggregates_survive_many_uses(self):
        obs.enable()
        for _ in range(5):
            with obs.span("loop"):
                pass
        stats = obs.snapshot()["spans"]["loop"]
        assert stats["count"] == 5
        assert stats["max_s"] <= stats["total_s"]

    def test_set_attaches_attributes_mid_span(self):
        obs.enable()
        with obs.span("s") as sp:
            sp.set(found=3)
        assert obs.events()[-1]["attrs"] == {"found": 3}

    def test_buffer_is_bounded_but_stats_are_not(self):
        obs.enable(buffer_size=4)
        for i in range(10):
            with obs.span("tick"):
                pass
        assert obs.event_count() == 4
        assert obs.snapshot()["spans"]["tick"]["count"] == 10

    def test_disable_keeps_data_readable(self):
        obs.enable()
        obs.inc("kept")
        obs.disable()
        assert obs.snapshot()["counters"]["kept"] == 1
        obs.inc("kept")  # no-op while disabled
        assert obs.snapshot()["counters"]["kept"] == 1


class TestExportJsonl:
    def test_export_events_plus_snapshot_line(self):
        obs.enable()
        with obs.span("work"):
            obs.inc("c")
        buf = io.StringIO()
        count = obs.export_jsonl(buf)
        lines = [json.loads(l) for l in buf.getvalue().splitlines()]
        assert count == len(lines) == 2
        assert lines[0]["type"] == "span" and lines[0]["name"] == "work"
        assert lines[1]["type"] == "snapshot"
        assert lines[1]["counters"] == {"c": 1}

    def test_export_to_path(self, tmp_path):
        obs.enable()
        obs.inc("c")
        path = tmp_path / "trace.jsonl"
        count = obs.export_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 1  # snapshot only, no events
        assert json.loads(lines[0])["type"] == "snapshot"


class TestMergeAndRates:
    def test_merge_sums_counters_and_spans(self):
        a = {"enabled": True, "counters": {"x": 1},
             "gauges": {"g": 1.0},
             "spans": {"s": {"count": 2, "total_s": 1.0, "max_s": 0.7}}}
        b = {"enabled": True, "counters": {"x": 2, "y": 5},
             "gauges": {"g": 9.0},
             "spans": {"s": {"count": 1, "total_s": 0.5, "max_s": 0.5}}}
        merged = obs.merge_snapshots(a, None, b)
        assert merged["counters"] == {"x": 3, "y": 5}
        assert merged["gauges"]["g"] == 9.0
        assert merged["spans"]["s"] == {
            "count": 3, "total_s": 1.5, "max_s": 0.7,
        }

    def test_merge_of_nothing_is_empty(self):
        merged = obs.merge_snapshots()
        assert merged["counters"] == {} and merged["spans"] == {}

    def test_hit_rate(self):
        snap = {"counters": {"c.hit": 3, "c.miss": 1}}
        assert obs.hit_rate(snap, "c") == 0.75
        assert obs.hit_rate(snap, "absent") is None


class TestCapture:
    def test_capture_diffs_against_entry_state(self):
        obs.enable()
        obs.inc("pre", 100)
        with obs.span("pre"):
            pass
        with obs.capture() as cap:
            obs.inc("pre", 1)
            obs.inc("fresh", 2)
            with obs.span("pre"):
                pass
        snap = cap.snapshot
        assert snap["counters"] == {"pre": 1, "fresh": 2}
        assert snap["spans"]["pre"]["count"] == 1
        # the global state is untouched by the capture
        assert obs.snapshot()["counters"]["pre"] == 101

    def test_capture_is_exception_safe(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs.capture() as cap:
                obs.inc("partial")
                raise RuntimeError
        assert cap.snapshot["counters"] == {"partial": 1}


class TestStubbed:
    def test_stubbed_turns_probes_into_noops(self):
        obs.enable()
        with obs.stubbed():
            obs.inc("gone")
            assert obs.span("gone") is obs.NULL_SPAN
        obs.inc("back")
        snap = obs.snapshot()
        assert "gone" not in snap["counters"]
        assert snap["counters"]["back"] == 1


class TestInstrumentedPipeline:
    def test_spans_and_cache_counters_from_a_real_run(self):
        from repro.api import Pipeline

        obs.enable()
        source = """
        program foo(flag, unsigned n) {
          var k = 1, i = 0, j = 0;
          if (flag != 0) { k = n * n; }
          while (i <= n) { i = i + 1; j = j + i; }
          var z = k + i + j;
          assert(z > 2 * n);
        }
        """
        outcome = Pipeline().analyze(source)
        snap = obs.snapshot()
        assert "api.analyze" in snap["spans"]
        assert snap["counters"].get("smt.is_sat.miss", 0) > 0
        # the outcome carries its own capture of the same activity
        assert outcome.telemetry is not None
        assert "api.analyze" in outcome.telemetry["spans"]

    def test_batch_telemetry_merged_across_outcomes(self):
        result = triage_many(["d01_plus_one", "d02_negate"], jobs=1,
                             telemetry=True)
        assert result.telemetry is not None
        for outcome in result.outcomes:
            assert outcome.telemetry is not None
            assert "triage.report" in outcome.telemetry["spans"]
            assert any(e.get("name") == "triage.report"
                       for e in outcome.events)
        merged = result.telemetry
        assert merged["spans"]["triage.report"]["count"] == 2
        total_queries = sum(
            o.telemetry["counters"].get("engine.queries", 0)
            for o in result.outcomes
        )
        assert merged["counters"].get("engine.queries", 0) == total_queries


class TestIncrementalFallbackCounters:
    """The incremental context's fallback must book one miss, not a
    hit-plus-miss — otherwise the reported hit rate is inflated."""

    @staticmethod
    def _nontrivial():
        from repro.logic import Var, conj, ge, le

        x = Var("x")
        return conj(le(x, 10), ge(x, 0))

    def test_successful_incremental_check_is_one_hit(self):
        from repro.smt import SmtSolver

        obs.enable()
        solver = SmtSolver(incremental=True)
        assert solver.is_sat(self._nontrivial())
        counters = obs.snapshot()["counters"]
        assert counters.get("smt.incremental.hit", 0) == 1
        assert counters.get("smt.incremental.checks", 0) == 1
        assert "smt.incremental.miss" not in counters
        assert "smt.incremental.fallbacks" not in counters
        assert obs.hit_rate(obs.snapshot(), "smt.incremental") == 1.0

    def test_fallback_is_one_miss_not_a_hit_and_a_miss(self):
        from repro.smt import SmtSolver
        from repro.smt.incremental import IncrementalError

        class ExplodingContext:
            def check(self, phi):
                raise IncrementalError("forced")

            def stats(self):
                return {}

        obs.enable()
        solver = SmtSolver(incremental=True)
        solver._context = ExplodingContext()
        assert solver.is_sat(self._nontrivial())  # fresh solve answers
        counters = obs.snapshot()["counters"]
        assert counters.get("smt.incremental.fallbacks", 0) == 1
        assert counters.get("smt.incremental.miss", 0) == 1
        assert "smt.incremental.hit" not in counters
        assert "smt.incremental.checks" not in counters
        assert counters.get("smt.fresh_checks", 0) == 1
        assert obs.hit_rate(obs.snapshot(), "smt.incremental") == 0.0


class TestDegradedTelemetryMerge:
    """A quarantined report's partial telemetry must survive into the
    fleet-wide merge, labelled with the attempt that produced it."""

    def test_failed_attempts_keep_partial_telemetry(self):
        from repro.limits import Limits
        from repro.limits.faults import install

        install("exhaust@smt@p10_toggle")
        try:
            result = triage_many(
                ["d01_plus_one", "p10_toggle"], jobs=1, telemetry=True,
                limits=Limits(deadline=5.0, retries=1),
            )
        finally:
            install(None)

        target = next(o for o in result.outcomes if o.name == "p10_toggle")
        assert target.degraded and target.attempts == 2
        # the final attempt's partial snapshot is attached and stamped
        assert target.telemetry is not None
        assert target.telemetry["report"] == "p10_toggle"
        assert target.telemetry["attempt"] == 1
        # the first attempt's snapshot rides along separately
        assert len(target.prior_telemetry) == 1
        assert target.prior_telemetry[0]["attempt"] == 0

        # the merge sums the quarantined report's counters too: its SMT
        # activity (cut short at the injected checkpoint) is visible
        merged = result.telemetry
        assert merged is not None
        assert {0, 1} <= set(merged["attempts"])
        bystander = next(o for o in result.outcomes
                         if o.name == "d01_plus_one")
        for name in ("smt.is_sat.miss",):
            contributed = (
                bystander.telemetry["counters"].get(name, 0)
                + target.telemetry["counters"].get(name, 0)
                + sum(s["counters"].get(name, 0)
                      for s in target.prior_telemetry)
            )
            assert merged["counters"].get(name, 0) == contributed


# ---------------------------------------------------------------------------
# span nesting state: exception paths and cross-thread isolation
# ---------------------------------------------------------------------------

class TestSpanCleanup:
    def test_exception_unwinds_nesting_completely(self):
        """A span raised through must close and leave no nesting state:
        the next root span sees parent 0 / depth 0 (regression — a
        leaked stack entry used to re-parent later spans)."""
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise ValueError("boom")
        with obs.span("fresh"):
            pass
        fresh = [e for e in obs.events() if e["name"] == "fresh"][0]
        assert fresh["parent"] == 0
        assert fresh["depth"] == 0
        by_name = {e["name"]: e for e in obs.events()}
        assert by_name["outer"]["error"] == "ValueError"
        assert by_name["inner"]["error"] == "ValueError"

    def test_out_of_order_close_is_tolerated(self):
        """Closing an outer span before an inner one (generator-held
        spans, exception trampolines) removes it from mid-stack instead
        of popping the wrong id."""
        obs.enable()
        outer = obs.span("outer").__enter__()
        inner = obs.span("inner").__enter__()
        outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        with obs.span("fresh"):
            pass
        fresh = [e for e in obs.events() if e["name"] == "fresh"][0]
        assert fresh["parent"] == 0
        assert fresh["depth"] == 0

    def test_span_stacks_are_thread_local(self):
        """Concurrent threads' spans never parent across threads."""
        import threading

        obs.enable()
        crossed = []

        def worker(tag):
            for _ in range(50):
                with obs.span(f"root.{tag}") as s:
                    if s.parent != 0:
                        crossed.append((tag, s.parent))
                    with obs.span(f"leaf.{tag}"):
                        pass

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert crossed == []
        snap = obs.snapshot()
        for i in range(4):
            assert snap["spans"][f"root.{i}"]["count"] == 50


# ---------------------------------------------------------------------------
# Prometheus exposition compliance
# ---------------------------------------------------------------------------

class TestPrometheusCompliance:
    def test_counters_have_help_type_and_total_suffix(self):
        obs.enable()
        obs.inc("cache.store.hit", 2)
        obs.inc("smt.is_sat.miss")
        obs.gauge("serve.inflight", 3.0)
        with obs.span("qe.cooper"):
            pass
        obs.observe("qe.blowup", 1.5)
        text = obs.export_prometheus()
        lines = text.splitlines()
        for name in ("cache_store_hit", "smt_is_sat_miss"):
            metric = f"repro_{name}_total"
            assert f"# HELP {metric} " in text
            assert f"# TYPE {metric} counter" in text
            assert any(line.startswith(f"{metric} ")
                       for line in lines)
        assert "# TYPE repro_serve_inflight gauge" in text
        assert "# HELP repro_serve_inflight " in text

    def test_every_sample_is_preceded_by_its_type(self):
        """Strict exposition-format check: no sample line appears
        without a # TYPE comment for its metric family."""
        obs.enable()
        obs.inc("a.b", 1)
        obs.gauge("g", 1.0)
        with obs.span("s.t"):
            pass
        obs.observe("h.x", 0.5)
        typed = set()
        for line in obs.export_prometheus().splitlines():
            if line.startswith("# TYPE "):
                typed.add(line.split()[2])
            elif line and not line.startswith("#"):
                family = line.split("{")[0].split(" ")[0]
                # a summary's samples may carry _count/_sum/_max
                # suffixes on the declared family name
                for suffix in ("_count", "_sum", "_max"):
                    if (family.endswith(suffix)
                            and family[: -len(suffix)] in typed):
                        family = family[: -len(suffix)]
                        break
                assert family in typed, (
                    f"sample {line!r} has no preceding # TYPE")
