"""The batch-triage driver: serial/parallel agreement, ordering,
timeout degradation, and the bounded LRU verdict cache."""

from __future__ import annotations

import pytest

from repro.batch import load_many, triage_many
from repro.limits import Limits
from repro.logic import le
from repro.logic.terms import Var
from repro.smt import SmtSolver
from repro.suite import DIAGNOSTICS

NAMES = [b.name for b in DIAGNOSTICS]


class TestTriageMany:
    def test_serial_classifies_diagnostics(self):
        result = triage_many(NAMES, jobs=1)
        assert result.mode == "serial"
        assert [o.name for o in result.outcomes] == NAMES
        assert all(o.correct for o in result.outcomes)
        assert result.accuracy == 1.0
        assert not result.failures

    def test_parallel_agrees_with_serial(self):
        serial = triage_many(NAMES, jobs=1)
        parallel = triage_many(NAMES, jobs=2)
        assert parallel.mode in ("parallel", "degraded")
        assert [(o.name, o.classification, o.num_queries)
                for o in parallel.outcomes] == \
               [(o.name, o.classification, o.num_queries)
                for o in serial.outcomes]

    def test_results_come_back_in_input_order(self):
        shuffled = list(reversed(NAMES))
        result = triage_many(shuffled, jobs=2)
        assert [o.name for o in result.outcomes] == shuffled

    def test_per_report_deadline_marks_unknown_resource(self):
        result = triage_many(NAMES, jobs=2,
                             limits=Limits(deadline=1e-9, retries=0))
        assert len(result.outcomes) == len(NAMES)
        assert all(o.timed_out for o in result.outcomes)
        assert all(o.classification == "unknown resource"
                   for o in result.outcomes)
        assert all(o.exhausted_kind == "deadline" for o in result.outcomes)
        # resource outcomes degrade the batch instead of failing it
        assert sorted(o.name for o in result.degraded) == sorted(NAMES)
        assert not result.failures

    def test_timeout_param_is_gone(self):
        # the PR-7-era deprecation shim served its "one more release";
        # the spelling now is limits=Limits(deadline=...)
        with pytest.raises(TypeError, match="timeout"):
            triage_many([NAMES[0]], jobs=1, timeout=1e-4)

    def test_worker_errors_become_outcomes(self):
        result = triage_many(["no_such_benchmark"], jobs=1)
        (outcome,) = result.outcomes
        assert outcome.error is not None
        assert outcome.classification == "unknown"

    def test_jobs_clamped_to_report_count(self):
        result = triage_many([NAMES[0]], jobs=8)
        assert result.mode == "serial"     # single report: no pool


class TestLoadMany:
    def test_parallel_load_matches_serial(self):
        serial = load_many(DIAGNOSTICS, jobs=1)
        parallel = load_many(DIAGNOSTICS, jobs=2)
        assert [b.name for b, _, _ in parallel] == \
               [b.name for b, _, _ in serial]
        for (_, _, a1), (_, _, a2) in zip(serial, parallel):
            # analyses cross the process boundary and re-intern
            assert a1.invariants == a2.invariants
            assert a1.success == a2.success


class TestVerdictCacheLru:
    def test_cache_keeps_inserting_past_capacity(self):
        x = Var("x")
        solver = SmtSolver(cache_size=4)
        for i in range(10):
            solver.is_sat(le(x, i))
        stats = solver.cache_stats()
        assert stats["entries"] == 4            # bounded
        assert stats["evictions"] == 6          # still inserting (old bug:
        assert stats["misses"] == 10            # inserts stopped at cap)
        # the most recent entries are retained
        assert solver.is_sat(le(x, 9))
        assert solver.cache_stats()["hits"] == 1

    def test_lru_evicts_least_recently_used(self):
        x = Var("x")
        solver = SmtSolver(cache_size=2)
        a, b, c = le(x, 1), le(x, 2), le(x, 3)
        solver.is_sat(a)
        solver.is_sat(b)
        solver.is_sat(a)        # refresh a; b is now LRU
        solver.is_sat(c)        # evicts b
        hits_before = solver.cache_stats()["hits"]
        solver.is_sat(a)
        assert solver.cache_stats()["hits"] == hits_before + 1
        solver.is_sat(b)        # miss: was evicted
        assert solver.cache_stats()["misses"] == 4
