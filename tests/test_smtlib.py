"""Tests for the SMT-LIB 2 exporter.

Without an external solver available, the tests validate the structural
properties an SMT-LIB consumer relies on: balanced s-expressions, legal
symbols, one declaration per free variable, and a faithful rendering of
each node type — plus a tiny s-expression evaluator that cross-checks
semantics against our own ``evaluate``.
"""

import re

from hypothesis import given, settings

from repro.logic import LinTerm, Var, dvd, exists, forall, ge, lt, ne
from repro.logic.smtlib import formula_to_sexpr, term_to_sexpr, to_smtlib
from .helpers import enumerate_box
from .strategies import VARS, formulas

x, y = Var("x"), Var("y")


def _balanced(text: str) -> bool:
    depth = 0
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


class TestStructure:
    def test_script_layout(self):
        phi = ge(LinTerm.var(x) + LinTerm.var(y, 2), 3)
        script = to_smtlib(phi)
        assert script.startswith("(set-logic LIA)")
        assert script.count("declare-const") == 2
        assert "(check-sat)" in script
        assert _balanced(script)

    def test_internal_names_sanitized(self):
        weird = Var("j@loop1")
        script = to_smtlib(ge(weird, 0))
        assert "@" not in script
        assert "j_at_loop1" in script

    def test_quantifiers(self):
        phi = forall([x], exists([y], lt(x, y)))
        sexpr = formula_to_sexpr(phi)
        assert sexpr.startswith("(forall ((x Int))")
        assert "(exists ((y Int))" in sexpr

    def test_dvd_uses_mod(self):
        sexpr = formula_to_sexpr(dvd(3, LinTerm.var(x) + 1))
        assert "(mod" in sexpr
        negated = formula_to_sexpr(dvd(3, LinTerm.var(x), negated=True))
        assert negated.startswith("(not")

    def test_get_model_flag(self):
        script = to_smtlib(ge(x, 0), get_model=True)
        assert "(get-model)" in script


def _eval_sexpr(text: str, env):
    """A minimal evaluator for the integer/boolean fragment we emit."""
    tokens = re.findall(r"\(|\)|[^\s()]+", text)
    pos = 0

    def parse():
        nonlocal pos
        token = tokens[pos]
        pos += 1
        if token != "(":
            return token
        items = []
        while tokens[pos] != ")":
            items.append(parse())
        pos += 1
        return items

    tree = parse()

    def ev(node):
        if isinstance(node, str):
            if node == "true":
                return True
            if node == "false":
                return False
            try:
                return int(node)
            except ValueError:
                return env[node]
        op, *args = node
        vals = [ev(a) for a in args]
        if op == "+":
            return sum(vals)
        if op == "-":
            return -vals[0] if len(vals) == 1 else vals[0] - vals[1]
        if op == "*":
            return vals[0] * vals[1]
        if op == "mod":
            return vals[0] % vals[1]
        if op == "<=":
            return vals[0] <= vals[1]
        if op == "=":
            return vals[0] == vals[1]
        if op == "not":
            return not vals[0]
        if op == "and":
            return all(vals)
        if op == "or":
            return any(vals)
        raise ValueError(f"unknown operator {op}")

    return ev(tree)


@settings(max_examples=150, deadline=None)
@given(formulas())
def test_sexpr_semantics_match_evaluate(phi):
    sexpr = formula_to_sexpr(phi)
    assert _balanced(sexpr)
    for env in enumerate_box(VARS, 2):
        named = {v.name: value for v, value in env.items()}
        assert _eval_sexpr(sexpr, named) == phi.evaluate(env), (
            phi, sexpr, env
        )
