"""Tests for the public API facade and the command-line interface."""

import pytest

from repro.api import (
    AnalysisOutcome,
    InitialVerdict,
    Pipeline,
    dynamic_oracle,
    ground_truth_oracle,
    load_benchmark,
)
from repro.cli import build_parser, main
from repro.diagnosis import ScriptedOracle, Verdict, diagnose_error

FOO = """
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) { i = i + 1; j = j + i; } @post(i >= 0 && i > n)
  var z = k + i + j;
  assert(z > 2 * n);
}
"""

SAFE = "program safe(x) { var y = x + 1; assert(y > x); }"
DOOMED = "program doomed(x) { var y = x; assert(y > x); }"


class TestApi:
    def test_analyze_verified(self):
        outcome = Pipeline().analyze(SAFE)
        assert isinstance(outcome, AnalysisOutcome)
        assert outcome.verdict is InitialVerdict.VERIFIED

    def test_analyze_refuted(self):
        outcome = Pipeline().analyze(DOOMED)
        assert outcome.verdict is InitialVerdict.REFUTED

    def test_analyze_uncertain(self):
        outcome = Pipeline().analyze(FOO)
        assert outcome.verdict is InitialVerdict.UNCERTAIN

    def test_diagnose_source(self):
        result = Pipeline().diagnose(FOO, ScriptedOracle(["yes"]))
        assert result.verdict is Verdict.DISCHARGED

    def test_load_benchmark(self):
        bench, program, analysis = load_benchmark("p06_chroot")
        assert bench.problem_id == 6
        assert program.name == "p06_chroot"
        assert analysis.invariants is not None

    def test_ground_truth_oracle_resolves(self):
        analysis, oracle = ground_truth_oracle("p10_toggle")
        result = diagnose_error(analysis, oracle)
        assert result.classification == "real bug"

    def test_dynamic_oracle_validates(self):
        analysis, oracle = dynamic_oracle("p09_window", samples=200)
        result = diagnose_error(analysis, oracle)
        assert result.classification == "real bug"


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["suite", "p10_toggle"])
        assert args.name == "p10_toggle"

    def test_analyze_command(self, tmp_path, capsys):
        path = tmp_path / "safe.err"
        path.write_text(SAFE)
        code = main(["analyze", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "verified" in out

    def test_suite_single(self, capsys):
        code = main(["suite", "p10_toggle", "-v"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[ok ]" in out and "real bug" in out

    def test_diagnose_sampling(self, tmp_path, capsys):
        path = tmp_path / "bug.err"
        path.write_text("""
        program bug(x) {
          var y = x + 1;
          assert(y != 0);
        }
        """)
        code = main(["diagnose", str(path), "--oracle", "sampling"])
        # exit 1: a real-bug verdict, per the documented status contract
        assert code == 1
        out = capsys.readouterr().out
        assert "REAL BUG" in out

    def test_diagnose_already_verified(self, tmp_path, capsys):
        path = tmp_path / "safe.err"
        path.write_text(SAFE)
        code = main(["diagnose", str(path)])
        assert code == 0
        assert "FALSE ALARM" in capsys.readouterr().out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
