"""End-to-end reproduction of the paper's worked examples (experiment E5).

* Section 1.1's ``foo`` and its claimed invariants, success condition,
  proof obligation and failure witness;
* Example 1/2's lambda program and the Gamma = alpha_j >= 0 result.
"""

import pytest

from repro.analysis import analyze_program
from repro.diagnosis import (
    Abducer,
    ExhaustiveOracle,
    ScriptedOracle,
    Verdict,
    diagnose_error,
    pi_p,
    pi_w,
)
from repro.lang import parse_program
from repro.logic import LinTerm, Var, conj, ge, neg, parse_formula
from repro.smt import SmtSolver

FOO = '''
program foo(flag, unsigned n) {
  var k = 1, i = 0, j = 0;
  if (flag != 0) { k = n * n; }
  while (i <= n) {
    i = i + 1;
    j = j + i;
  } @post(i >= 0 && i > n)
  var z = k + i + j;
  assert(z > 2 * n);
}
'''


@pytest.fixture(scope="module")
def foo():
    program = parse_program(FOO)
    return program, analyze_program(program)


class TestSection11:
    def test_invariants_match_paper(self, foo):
        """I must be equivalent to the paper's
        alpha_nn >= 0 (guarded by flag) & alpha_i >= 0 & alpha_i > n
        & n >= 0."""
        _, analysis = foo
        solver = SmtSolver()
        inv = analysis.invariants
        # find the variables
        names = {v.name: v for v in analysis.all_vars}
        alpha_i = names["i@loop1"]
        nu_n = analysis.input_vars["n"]
        # the paper's unguarded version implies ours
        for fact in (
            ge(LinTerm.var(alpha_i), 0),
            ge(LinTerm.var(alpha_i), LinTerm.var(nu_n) + 1),
            ge(LinTerm.var(nu_n), 0),
        ):
            assert solver.entails(inv, fact), f"I should imply {fact}"

    def test_neither_lemma_applies(self, foo):
        _, analysis = foo
        solver = SmtSolver()
        assert not solver.entails(analysis.invariants, analysis.success)
        assert not solver.entails(analysis.invariants,
                                  neg(analysis.success))

    def test_paper_proof_obligation_discharges(self, foo):
        """alpha_j >= n (the overview's Gamma) must be a valid proof
        obligation: consistent with I and discharging phi."""
        _, analysis = foo
        solver = SmtSolver()
        names = {v.name: v for v in analysis.all_vars}
        gamma = ge(LinTerm.var(names["j@loop1"]),
                   LinTerm.var(analysis.input_vars["n"]))
        assert solver.is_sat(conj(gamma, analysis.invariants))
        assert solver.entails(conj(gamma, analysis.invariants),
                              analysis.success)

    def test_paper_failure_witness_validates(self, foo):
        """!flag and alpha_i + alpha_j < 0 (the overview's Upsilon) must
        be a valid failure witness."""
        _, analysis = foo
        solver = SmtSolver()
        names = {v.name: v for v in analysis.all_vars}
        flag = analysis.input_vars["flag"]
        from repro.logic import eq, lt

        upsilon = conj(
            eq(LinTerm.var(flag), 0),
            lt(LinTerm.var(names["i@loop1"])
               + LinTerm.var(names["j@loop1"]), 0),
        )
        assert solver.is_sat(conj(upsilon, analysis.invariants))
        assert solver.entails(conj(upsilon, analysis.invariants),
                              neg(analysis.success))

    def test_computed_obligation_is_optimal(self, foo):
        """Our abduction must return an obligation at least as cheap (under
        the paper's own Pi_p) as the overview's alpha_j >= n."""
        _, analysis = foo
        abducer = Abducer()
        costs = pi_p(analysis.invariants, analysis.success)
        gamma = abducer.proof_obligation(
            analysis.invariants, analysis.success, costs
        )
        assert gamma is not None
        names = {v.name: v for v in analysis.all_vars}
        paper_gamma_cost = sum(
            costs(v) for v in (names["j@loop1"], analysis.input_vars["n"])
        )
        assert gamma.cost <= paper_gamma_cost

    def test_one_yes_discharges(self, foo):
        _, analysis = foo
        result = diagnose_error(analysis, ScriptedOracle(["yes"]))
        assert result.verdict is Verdict.DISCHARGED
        assert result.num_queries == 1

    def test_ground_truth_discharges(self, foo):
        program, analysis = foo
        oracle = ExhaustiveOracle(program, analysis, radius=5)
        result = diagnose_error(analysis, oracle)
        assert result.verdict is Verdict.DISCHARGED


class TestExample1And2:
    """Example 1's lambda program, transcribed, and Example 2's abduction."""

    SRC = '''
    program example1(a1, a2) {
      var k, i, j, z;
      if (a2 > 0) { k = a2; } else { k = 1; }
      while (i < a2 + 1) {
        i = i + 1;
        j = j + i;
      } @post(i > -1 && i > a2)
      if (a1 > 0) { z = k + i + j; } else { z = 2 * a2 + 1; }
      assert(z > 2 * a2);
    }
    '''

    @pytest.fixture(scope="class")
    def example(self):
        program = parse_program(self.SRC)
        return program, analyze_program(program)

    def test_neither_entailment(self, example):
        _, analysis = example
        solver = SmtSolver()
        assert not solver.entails(analysis.invariants, analysis.success)
        assert not solver.entails(analysis.invariants,
                                  neg(analysis.success))

    def test_example2_weakest_minimum_obligation(self, example):
        """Example 2's result: the weakest minimum proof obligation is
        alpha_j >= 0."""
        _, analysis = example
        abducer = Abducer()
        gamma = abducer.proof_obligation(
            analysis.invariants,
            analysis.success,
            pi_p(analysis.invariants, analysis.success),
        )
        assert gamma is not None
        names = {v.name: v for v in analysis.all_vars}
        alpha_j = names["j@loop1"]
        solver = SmtSolver()
        assert solver.equivalent(gamma.formula,
                                 ge(LinTerm.var(alpha_j), 0))

    def test_j_nonnegative_discharges(self, example):
        """Answering yes to the Example 2 query resolves the report."""
        _, analysis = example
        result = diagnose_error(analysis, ScriptedOracle(["yes"]))
        assert result.verdict is Verdict.DISCHARGED
        assert result.num_queries == 1
        assert "j >= 0" in result.interactions[0].query.text.replace(
            "0 <= j", "j >= 0"
        ) or "0 <= j" in result.interactions[0].query.text
