"""Repair synthesis: Figure 7 end-to-end, the consistency guard, the
splice round-trip, and the ``repair`` envelope/serve surface."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import InitialVerdict, Pipeline
from repro.diagnosis.queries import Answer
from repro.lang import parse_program, render_program
from repro.lang.ast import BoolOp, Cmp, Const, Name
from repro.logic import LinTerm, Var, lt
from repro.repair import (
    Edit,
    RepairPatch,
    RepairResult,
    apply_edits,
    synthesize_repairs,
)
from repro.schema import SCHEMA_VERSION, TriageVerdict, read_envelope
from repro.suite import BENCHMARKS, benchmark_by_name, load_source

FALSE_ALARMS = [b.name for b in BENCHMARKS if b.is_false_alarm]
REAL_BUGS = [b.name for b in BENCHMARKS if not b.is_false_alarm]

CLEAN_SOURCE = """\
program always_ok(n) {
    assert(n + 1 > n);
}
"""


# ---------------------------------------------------------------------------
# Figure 7 end-to-end: every false alarm gets a verified patch
# ---------------------------------------------------------------------------

class TestFigure7Repair:
    @pytest.mark.parametrize("name", FALSE_ALARMS)
    def test_false_alarm_yields_verified_rank1_patch(self, name):
        result = Pipeline().repair(name)
        assert result.verdict is TriageVerdict.FALSE_ALARM
        assert result.verified_count >= 1
        best = result.best
        assert best is not None and best.rank == 1 and best.verified
        # every verified patch must re-triage clean: the patched
        # program discharges outright (Lemma 1), no oracle needed
        for patch in result.patches:
            if not patch.verified:
                continue
            outcome = Pipeline().analyze(patch.patched_source)
            assert outcome.verdict is InitialVerdict.VERIFIED, \
                f"{name} rank {patch.rank} does not re-triage clean"
        assert result.exit_status == 0

    @pytest.mark.parametrize("name", REAL_BUGS[:2])
    def test_real_bug_gets_no_patch(self, name):
        result = Pipeline().repair(name)
        assert result.verdict is TriageVerdict.REAL_BUG
        assert result.patches == ()
        assert result.best is None
        assert result.exit_status == 1

    def test_already_clean_source_needs_no_patch(self):
        result = Pipeline().repair(CLEAN_SOURCE)
        assert result.already_clean
        assert result.verdict is TriageVerdict.FALSE_ALARM
        assert result.patches == ()
        assert result.exit_status == 0

    def test_warm_cache_reproduces_the_patch_list(self, tmp_path):
        pipe = Pipeline(cache_dir=str(tmp_path / "store"))
        cold = pipe.repair("p02_wordcount")
        warm = pipe.repair("p02_wordcount")
        assert [p.to_dict() for p in cold.patches] \
            == [p.to_dict() for p in warm.patches]
        assert warm.cache is not None and warm.cache["hits"] > 0

    def test_cli_bogus_name_is_a_usage_error(self, capsys):
        from repro.cli import main

        code = main(["repair", "no_such_benchmark"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("repair:")


# ---------------------------------------------------------------------------
# the consistency guard: UNSAT(I & psi) is rejected, never spliced
# ---------------------------------------------------------------------------

class _Query:
    def __init__(self, kind, formula):
        self.kind = kind
        self.formula = formula


class _Interaction:
    def __init__(self, query, answer):
        self.query = query
        self.answer = answer


class _Session:
    def __init__(self, interactions):
        self.interactions = list(interactions)


class TestConsistencyGuard:
    def test_inconsistent_candidate_is_rejected(self):
        bench = benchmark_by_name("p01_accumulate")
        outcome = Pipeline().analyze(load_source(bench))
        # I contains n >= 0, so the "learned fact" n < 0 is satisfiable
        # on its own but contradicts the axioms: UNSAT premises would
        # prove any obligation, so the guard must reject it unspliced
        bad = lt(LinTerm.var(outcome.analysis.input_vars["n"]), 0)
        session = _Session([
            _Interaction(_Query("invariant", bad), Answer.YES),
        ])
        patches = synthesize_repairs(outcome.program, outcome.analysis,
                                     session=session)
        rejected = [p for p in patches
                    if p.rejected == "inconsistent"]
        assert rejected, "the inconsistent candidate was not rejected"
        for patch in rejected:
            assert not patch.verified
            assert patch.patched_source == ""  # never spliced
        # the genuine abduced candidate still yields a verified patch,
        # and every inconsistent one ranks strictly below it
        assert patches[0].verified
        assert all(p.rank > patches[0].rank for p in rejected)

    def test_only_rejected_patches_is_a_failure_exit(self):
        result = RepairResult(
            program="p", verdict=TriageVerdict.FALSE_ALARM,
            patches=(RepairPatch(
                rank=1, kind="guard", formula=lt(LinTerm.var(Var("n")), 0),
                edits=(), diff="", patched_source="", verified=False,
                rejected="inconsistent", cost=(1, 1)),),
        )
        assert result.verified_count == 0
        assert result.exit_status == 1  # no patch == not repaired


# ---------------------------------------------------------------------------
# splice round-trip: parse(render(patch(p))) == patch(ast)
# ---------------------------------------------------------------------------

_CORPUS = [b.name for b in BENCHMARKS]


def _variables(program):
    return sorted({p.name for p in program.params} | set(program.locals))


@st.composite
def _patched_programs(draw):
    """A suite program with one randomly placed, randomly built edit."""
    name = draw(st.sampled_from(_CORPUS))
    program = parse_program(load_source(benchmark_by_name(name)))
    names = _variables(program)
    left = Name(draw(st.sampled_from(names)))
    op = draw(st.sampled_from(["<=", "<", "==", "!=", ">=", ">"]))
    right = draw(st.one_of(
        st.integers(min_value=0, max_value=9).map(Const),
        st.sampled_from(names).map(Name),
    ))
    pred = Cmp(op, left, right)
    if draw(st.booleans()):
        pred = BoolOp("&&", (pred, Cmp("<=", Const(0), left)))
    sites = [Edit(kind="guard", pred=pred)]
    from repro.lang.ast import Havoc, While

    for stmt in program.body.walk():
        if isinstance(stmt, Havoc):
            sites.append(Edit(kind="assume", pred=pred,
                              target=stmt.target,
                              span_start=stmt.span.start))
        elif isinstance(stmt, While):
            sites.append(Edit(kind="post", pred=pred,
                              label=stmt.label))
    edit = draw(st.sampled_from(sites))
    return apply_edits(program, [edit])


class TestSpliceRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(_patched_programs())
    def test_patched_programs_survive_render_parse(self, patched):
        assert parse_program(render_program(patched)) == patched


# ---------------------------------------------------------------------------
# envelope: repro.result/3, the repairs block, the upgrader
# ---------------------------------------------------------------------------

class TestRepairEnvelope:
    def test_repair_envelope_shape(self):
        result = Pipeline().repair("p03_square", max_patches=2)
        payload = json.loads(result.to_json())
        assert payload["schema"] == "repro.result/3" == SCHEMA_VERSION
        assert payload["kind"] == "repair"
        assert payload["verdict"] == "false alarm"
        assert payload["verified_patches"] >= 1
        assert len(payload["repairs"]) <= 2
        first = payload["repairs"][0]
        for key in ("rank", "kind", "formula", "gamma_digest", "cost",
                    "verified", "edits", "diff", "patched_source"):
            assert key in first
        assert first["rank"] == 1
        assert first["cost"].keys() == {"variables", "size"}
        assert read_envelope(payload)["schema"] == SCHEMA_VERSION

    def test_old_envelopes_upgrade_in_place(self):
        old = {"schema": "repro.result/2", "kind": "triage_outcome",
               "verdict": "false alarm", "degraded": False}
        upgraded = read_envelope(old)
        assert upgraded["schema"] == "repro.result/3"
        assert old["schema"] == "repro.result/2"  # input untouched
        v1 = {"schema": "repro.result/1", "kind": "triage_outcome",
              "verdict": "real bug"}
        assert read_envelope(v1)["degraded"] is False


# ---------------------------------------------------------------------------
# the serve surface: repair flag, patches route
# ---------------------------------------------------------------------------

class TestServeRepair:
    def _wait(self, service, job_id):
        import time

        for _ in range(400):
            job = service.registry.get(job_id)
            if job.status == "done":
                return job
            time.sleep(0.05)
        raise AssertionError("job did not finish")

    def test_repair_job_and_patches_route(self):
        from repro.serve.service import TriageService

        service = TriageService(workers=1)
        service.start()
        try:
            status, body = service.submit(
                {"source": CLEAN_SOURCE, "repair": True})
            assert status == 202
            job = self._wait(service, body["job_id"])
            assert job.result["kind"] == "repair"
            assert job.result["already_clean"] is True
            assert job.exit_code == 0
            status, patches = service.patches(job.id)
            assert status == 200
            assert patches["already_clean"] is True
            assert patches["patches"] == []

            # a plain triage job records no patches
            status, body = service.submit({"source": CLEAN_SOURCE})
            assert status in (200, 202)
            job_id = body.get("job_id") or body["id"]
            plain = self._wait(service, job_id)
            status, err = service.patches(plain.id)
            assert status == 404 and "repair" in err["error"]
            # ... and coalesces separately from the repair job
            assert plain.id != job.id
        finally:
            service.stop()

    def test_repair_flag_must_be_boolean(self):
        from repro.serve.service import BadRequest, TriageService

        service = TriageService(workers=1)
        with pytest.raises(BadRequest):
            service.submit({"source": CLEAN_SOURCE, "repair": "yes"})
