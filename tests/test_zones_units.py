"""Focused unit tests for the zone (DBM) domain internals."""

import random

from repro.abstract.zones import Zone, _difference_form
from repro.lang.ast import BinOp, Cmp, Const, Name


def cmp(op, left, right):
    return Cmp(op, left, right)


class TestDifferenceForm:
    def test_constant(self):
        assert _difference_form(Const(5)) == (None, 5)

    def test_plain_name(self):
        assert _difference_form(Name("x")) == ("x", 0)

    def test_name_plus_const(self):
        expr = BinOp("+", Name("x"), Const(3))
        assert _difference_form(expr) == ("x", 3)

    def test_name_minus_const(self):
        expr = BinOp("-", Name("x"), Const(3))
        assert _difference_form(expr) == ("x", -3)

    def test_const_plus_name(self):
        expr = BinOp("+", Const(3), Name("x"))
        assert _difference_form(expr) == ("x", 3)

    def test_nonlinear_unrecognized(self):
        expr = BinOp("*", Name("x"), Name("y"))
        assert _difference_form(expr) is None

    def test_two_names_unrecognized(self):
        expr = BinOp("+", Name("x"), Name("y"))
        assert _difference_form(expr) is None


class TestClosure:
    def test_transitive_bound(self):
        zone = Zone.top(("x", "y", "z"))
        zone.assume(cmp("<=", Name("x"), Name("y")))
        zone.assume(cmp("<=", Name("y"), Name("z")))
        zone.assume(cmp("<=", Name("z"), Const(5)))
        zone.close()
        facts = [str(f) for f in zone.facts()]
        assert "x <= 5" in facts

    def test_join_loses_precision_soundly(self):
        a = Zone.top(("x",))
        a.assume(cmp("==", Name("x"), Const(1)))
        b = Zone.top(("x",))
        b.assume(cmp("==", Name("x"), Const(5)))
        joined = a.join(b)
        facts = [str(f) for f in joined.facts()]
        assert "x >= 1" in facts and "x <= 5" in facts

    def test_widen_drops_growing_bound(self):
        a = Zone.top(("x",))
        a.assume(cmp("<=", Name("x"), Const(3)))
        b = Zone.top(("x",))
        b.assume(cmp("<=", Name("x"), Const(4)))
        widened = a.widen(b)
        facts = [str(f) for f in widened.facts()]
        assert not any("x <=" in f for f in facts)

    def test_le_reflexive_and_ordered(self):
        a = Zone.top(("x",))
        a.assume(cmp("<=", Name("x"), Const(3)))
        assert a.le(a)
        top = Zone.top(("x",))
        assert a.le(top)
        assert not top.le(a)


class TestAssignments:
    def test_self_shift_preserves_relations(self):
        zone = Zone.top(("x", "y"))
        zone.assume(cmp("==", Name("x"), Name("y")))
        zone.assign("x", BinOp("+", Name("x"), Const(5)))
        facts = " && ".join(str(f) for f in zone.facts())
        # now x == y + 5
        assert "x <= (y + 5)" in facts

    def test_copy_assignment(self):
        zone = Zone.top(("x", "y"))
        zone.assume(cmp(">=", Name("y"), Const(2)))
        zone.assign("x", Name("y"))
        facts = [str(f) for f in zone.facts()]
        assert "x >= 2" in facts

    def test_unrecognized_assignment_forgets(self):
        zone = Zone.top(("x", "y"))
        zone.assume(cmp("==", Name("x"), Const(1)))
        zone.assign("x", BinOp("*", Name("y"), Name("y")))
        facts = [str(f) for f in zone.facts()]
        assert not any(f.startswith("x ") for f in facts)


class TestRandomizedSoundness:
    def test_random_constraint_sequences(self):
        """Random difference constraints: the closed zone must contain
        every integer point satisfying all recorded constraints."""
        rng = random.Random(9)
        for _ in range(30):
            names = ("a", "b")
            zone = Zone.top(names)
            recorded = []
            for _ in range(rng.randint(1, 4)):
                kind = rng.randint(0, 2)
                c = rng.randint(-3, 3)
                if kind == 0:
                    pred = cmp("<=", Name("a"), Const(c))
                elif kind == 1:
                    pred = cmp(">=", Name("b"), Const(c))
                else:
                    pred = cmp("<=", Name("a"),
                               BinOp("+", Name("b"), Const(c)))
                recorded.append(pred)
                zone.assume(pred)
            zone.close()
            from repro.lang.interp import eval_pred

            for a in range(-5, 6):
                for b in range(-5, 6):
                    env = {"a": a, "b": b}
                    if all(eval_pred(p, env) for p in recorded):
                        assert not zone.bottom
                        for fact in zone.facts():
                            assert eval_pred(fact, env), (
                                recorded, fact, env
                            )
