"""Tests for the lazy SMT solver, cross-checked against brute force."""

from hypothesis import given, settings

from repro.logic import (
    FALSE,
    TRUE,
    LinTerm,
    Var,
    conj,
    disj,
    eq,
    exists,
    forall,
    ge,
    gt,
    le,
    lt,
    ne,
    neg,
    parse_formula,
)
from repro.smt import SmtSolver, entails, equivalent, is_sat, is_valid
from .helpers import assert_model, brute_force_sat
from .strategies import VARS, formulas

x, y, z = Var("x"), Var("y"), Var("z")


class TestBasicSat:
    def test_constants(self):
        assert is_sat(TRUE)
        assert not is_sat(FALSE)

    def test_single_atom(self):
        assert is_sat(le(x, 3))
        assert not is_sat(conj(le(x, 0), ge(x, 1)))

    def test_boolean_structure(self):
        phi = conj(disj(le(x, 0), ge(x, 10)), ge(x, 5), le(x, 20))
        solver = SmtSolver()
        result = solver.check(phi)
        assert result.sat
        assert_model(phi, result.model)
        assert 10 <= result.model[x] <= 20

    def test_unsat_needs_theory(self):
        # propositionally consistent, theory-inconsistent across atoms
        phi = conj(lt(x, y), lt(y, z), lt(z, x))
        assert not is_sat(phi)

    def test_shared_atom_polarity(self):
        # x <= 0 and its negation must share a boolean variable
        phi = conj(disj(le(x, 0), ge(x, 5)), neg(le(x, 0)), le(x, 7))
        solver = SmtSolver()
        result = solver.check(phi)
        assert result.sat
        assert 5 <= result.model[x] <= 7

    def test_equality_disequality_pair(self):
        phi = conj(disj(eq(x, 3), eq(x, 4)), ne(x, 3))
        model = SmtSolver().get_model(phi)
        assert model[x] == 4


class TestValidityEntailment:
    def test_valid_tautology(self):
        assert is_valid(disj(le(x, 5), ge(x, 5)))
        assert is_valid(disj(le(x, 4), ge(x, 5)))
        assert not is_valid(disj(le(x, 3), ge(x, 5)))

    def test_entailment(self):
        assert entails(le(x, 3), le(x, 10))
        assert not entails(le(x, 10), le(x, 3))
        assert entails(conj(le(x, y), le(y, z)), le(x, z))

    def test_equivalent(self):
        assert equivalent(lt(x, 3), le(x, 2))
        assert not equivalent(lt(x, 3), le(x, 3))

    def test_paper_running_example_neither_entailment(self):
        """Section 1.1: I |/= phi and I |/= !phi for the foo example."""
        inv = parse_formula(
            "ann >= 0 && ai >= 0 && ai > n && n >= 0"
        )
        phi = parse_formula(
            "(1 + ai + aj > 2*n && flag == 0) ||"
            " (ann + ai + aj > 2*n && flag != 0)"
        )
        assert not entails(inv, phi)
        assert not entails(inv, neg(phi))

    def test_paper_proof_obligation_discharges(self):
        """With aj >= n added, I entails phi (the paper's Gamma)."""
        inv = parse_formula(
            "ann >= 0 && ai >= 0 && ai > n && n >= 0"
        )
        phi = parse_formula(
            "(1 + ai + aj > 2*n && flag == 0) ||"
            " (ann + ai + aj > 2*n && flag != 0)"
        )
        gamma = parse_formula("aj >= n")
        assert entails(conj(inv, gamma), phi)

    def test_paper_failure_witness_validates(self):
        """With !flag and ai + aj < 0, I entails !phi."""
        inv = parse_formula(
            "ann >= 0 && ai >= 0 && ai > n && n >= 0"
        )
        phi = parse_formula(
            "(1 + ai + aj > 2*n && flag == 0) ||"
            " (ann + ai + aj > 2*n && flag != 0)"
        )
        upsilon = parse_formula("flag == 0 && ai + aj < 0")
        assert is_sat(conj(inv, upsilon))
        assert entails(conj(inv, upsilon), neg(phi))


class TestQuantifiedInput:
    def test_exists_handled_via_qe(self):
        phi = exists([y], conj(eq(LinTerm.var(y, 2), LinTerm.var(x)),
                               ge(y, 1)))
        solver = SmtSolver()
        result = solver.check(phi)
        assert result.sat
        assert result.model[x] % 2 == 0 and result.model[x] >= 2

    def test_forall_valid(self):
        phi = forall([x], disj(le(x, 10), gt(x, 5)))
        assert is_valid(phi)


@settings(max_examples=200, deadline=None)
@given(formulas())
def test_smt_agrees_with_brute_force(phi):
    solver = SmtSolver()
    result = solver.check(phi)
    if result.sat:
        assert_model(phi, result.model)
    else:
        witness = brute_force_sat(phi, VARS, 4)
        assert witness is None, (
            f"SMT said UNSAT but {witness} satisfies {phi}"
        )


@settings(max_examples=100, deadline=None)
@given(formulas(max_depth=2))
def test_validity_matches_negation_unsat(phi):
    solver = SmtSolver()
    assert solver.is_valid(phi) == (not solver.is_sat(neg(phi)))
