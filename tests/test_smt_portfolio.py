"""Tests for the racing solver portfolio.

Every strategy is a complete decision procedure, so the portfolio must
agree with the plain sequential solver on every formula — the race is a
latency optimisation, never a verdict change.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro import limits as _limits
from repro import obs
from repro.limits import Limits, ResourceExhausted, governed
from repro.logic import LinTerm, Var, conj, disj, le, neg
from repro.smt import SmtSolver
from repro.smt.portfolio import STRATEGIES, PortfolioSolver

from .strategies import formulas

x, y = Var("x"), Var("y")


def _fixture_formulas():
    return [
        le(LinTerm.var(x), 5),
        conj(le(LinTerm.var(x), 3), le(LinTerm.var(x, -1), -7)),  # unsat
        disj(le(LinTerm.var(x), 0), le(LinTerm.var(y), 0)),
        conj(le(LinTerm.make([(x, 2), (y, 3)]), 12),
             le(LinTerm.make([(x, -1), (y, -1)]), -2)),
        neg(disj(le(LinTerm.var(x), 10), le(LinTerm.var(x, -1), 0))),
    ]


class TestVerdicts:
    def test_agrees_with_plain_solver_on_fixtures(self):
        portfolio = PortfolioSolver()
        plain = SmtSolver()
        for phi in _fixture_formulas():
            assert portfolio.is_sat(phi) == plain.is_sat(phi), phi

    @settings(max_examples=40, deadline=None)
    @given(formulas())
    def test_agrees_with_plain_solver_on_random(self, phi):
        assert PortfolioSolver().is_sat(phi) == SmtSolver().is_sat(phi)

    def test_subset_portfolios_agree(self):
        plain = SmtSolver()
        for subset in (("qe",), ("fresh",), ("incremental", "qe")):
            portfolio = PortfolioSolver(strategies=subset)
            for phi in _fixture_formulas():
                assert portfolio.is_sat(phi) == plain.is_sat(phi)


class TestConstruction:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            PortfolioSolver(strategies=("qe", "oracle"))

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            PortfolioSolver(strategies=())

    def test_default_strategy_order(self):
        assert STRATEGIES == ("incremental", "fresh", "qe")


class TestAccounting:
    def test_wins_and_counters_recorded(self):
        portfolio = PortfolioSolver()
        queries = _fixture_formulas()
        obs.enable()
        try:
            with obs.capture() as cap:
                for phi in queries:
                    portfolio.is_sat(phi)
        finally:
            obs.disable()
        counters = cap.snapshot["counters"]
        assert counters["smt.portfolio.races"] == len(queries)
        wins = {k: v for k, v in counters.items()
                if k.startswith("smt.portfolio.win.")}
        assert sum(wins.values()) == len(queries)
        assert sum(portfolio.wins.values()) == len(queries)

    def test_winner_spend_folds_into_ambient_governor(self):
        phi = conj(le(LinTerm.make([(x, 2), (y, 3)]), 12),
                   le(LinTerm.make([(x, -1), (y, -1)]), -2))
        with governed(Limits(deadline=30.0)) as governor:
            assert PortfolioSolver().is_sat(phi)
            assert sum(governor.spend.values()) > 0

    def test_main_thread_stays_on_ambient_governor(self):
        with governed(Limits(deadline=30.0)) as governor:
            PortfolioSolver().is_sat(le(LinTerm.var(x), 5))
            assert _limits.current_governor() is governor


class TestGoverned:
    def test_all_strategies_exhausted_raises(self):
        phi = conj(*[
            disj(le(LinTerm.make([(x, i), (y, 1)]), 7 * i),
                 le(LinTerm.make([(x, -1), (y, i)]), i))
            for i in range(1, 6)
        ])
        with governed(Limits(max_steps=1)):
            with pytest.raises(ResourceExhausted) as info:
                PortfolioSolver().is_sat(phi)
        assert info.value.kind != "cancelled"

    def test_ungoverned_query_needs_no_governor(self):
        assert _limits.current_governor() is None
        assert PortfolioSolver().is_sat(le(LinTerm.var(x), 5))


class TestWiring:
    def test_smt_solver_portfolio_flag(self):
        racing = SmtSolver(portfolio=True)
        plain = SmtSolver()
        for phi in _fixture_formulas():
            assert racing.is_sat(phi) == plain.is_sat(phi)

    def test_engine_config_exposes_flag(self):
        from repro.diagnosis.engine import EngineConfig

        assert EngineConfig().solver_portfolio is False
        assert EngineConfig(solver_portfolio=True).solver_portfolio
