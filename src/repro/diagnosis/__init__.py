"""Query-guided error diagnosis (Section 4 of the paper)."""

from .abduction import Abducer, Abduction
from .cost import formula_cost, pi_p, pi_w, uniform
from .engine import (
    DiagnosisEngine,
    DiagnosisResult,
    EngineConfig,
    Interaction,
    Verdict,
    diagnose_error,
)
from .oracles import (
    ChainOracle,
    ExhaustiveOracle,
    FunctionOracle,
    InteractiveOracle,
    Oracle,
    SamplingOracle,
    ScriptedOracle,
)
from .report import render_report
from .queries import (
    Answer,
    Query,
    QueryRenderer,
    decompose_invariant,
    decompose_witness,
)

__all__ = [
    "Abducer", "Abduction",
    "formula_cost", "pi_p", "pi_w", "uniform",
    "DiagnosisEngine", "DiagnosisResult", "EngineConfig", "Interaction",
    "Verdict", "diagnose_error",
    "ChainOracle", "ExhaustiveOracle", "FunctionOracle",
    "InteractiveOracle", "Oracle", "SamplingOracle", "ScriptedOracle",
    "Answer", "Query", "QueryRenderer",
    "decompose_invariant", "decompose_witness",
    "render_report",
]
