"""Human-readable session reports.

Turns a :class:`DiagnosisResult` into text or Markdown a reviewer can
read without knowing the analysis internals: the verdict, the question/
answer transcript, what the engine learned, and where the abstraction
variables came from.
"""

from __future__ import annotations

from .engine import DiagnosisResult, Verdict
from .queries import QueryRenderer


def render_report(result: DiagnosisResult, *, markdown: bool = False) -> str:
    """Render a diagnosis session as text (or GitHub-flavored Markdown)."""
    renderer = QueryRenderer(result.analysis)
    program = result.analysis.program

    def heading(text: str) -> str:
        return f"## {text}" if markdown else f"=== {text} ==="

    def bullet(text: str) -> str:
        return f"- {text}" if markdown else f"  * {text}"

    lines: list[str] = []
    title = f"Diagnosis report: {program.name}"
    lines.append(f"# {title}" if markdown else title)
    lines.append("")

    lines.append(heading("verdict"))
    verdict_text = {
        Verdict.DISCHARGED: "FALSE ALARM — the checked assertion holds "
                            "on every execution",
        Verdict.VALIDATED: "REAL BUG — some execution violates the "
                           "checked assertion",
        Verdict.UNRESOLVED: "UNRESOLVED — the available answers did not "
                            "settle the report",
        Verdict.RESOURCE_EXHAUSTED: "UNKNOWN (RESOURCE) — a resource "
                                    "limit ran out before the report "
                                    "was settled",
    }[result.verdict]
    if result.verdict is Verdict.RESOURCE_EXHAUSTED \
            and result.exhausted_stage:
        verdict_text += (
            f" (stage {result.exhausted_stage}, "
            f"{result.exhausted_kind or 'steps'})"
        )
    lines.append(verdict_text)
    lines.append(
        f"({result.num_queries} queries, {result.rounds} engine rounds, "
        f"{result.elapsed_seconds:.2f}s)"
    )
    lines.append("")

    if result.interactions:
        lines.append(heading("transcript"))
        for index, interaction in enumerate(result.interactions, 1):
            q = interaction.query
            kind = ("invariant" if q.kind == "invariant"
                    else "failure witness")
            lines.append(f"{index}. [{kind}] {q.text}")
            for note in q.notes:
                lines.append(bullet(f"where {note}"))
            lines.append(bullet(f"answer: {interaction.answer.value}"))
        lines.append("")

    if result.witnesses:
        lines.append(heading("learned witnesses"))
        for witness in result.witnesses:
            lines.append(bullet(renderer.format_formula(witness)))
        lines.append("")

    abstractions = [
        info for info in result.analysis.info.values()
        if info.kind != "input"
    ]
    if abstractions:
        lines.append(heading("sources of analysis imprecision"))
        for info in abstractions:
            lines.append(bullet(info.description))
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
