"""Abductive inference of proof obligations and failure witnesses
(Sections 4.1 and 4.2, Lemmas 3 and 5).

Given invariants ``I`` and success condition ``phi``:

* a *weakest minimum proof obligation* ``Gamma`` satisfies
  ``Gamma ∧ I |= phi`` and ``SAT(Gamma ∧ I)`` with minimum cost under
  ``Pi_p``, and is the weakest such formula at that cost;
* a *weakest minimum failure witness* ``Upsilon`` satisfies
  ``Upsilon ∧ I |= ¬phi`` and ``SAT(Upsilon ∧ I)`` with minimum cost
  under ``Pi_w``.

Both are computed the same way (Lemma 3 / Lemma 5):

1. find a minimum satisfying assignment of ``I => target`` consistent
   with the required side formulas (the invariants — plus, for proof
   obligations, all learned witnesses);
2. universally eliminate every variable *not* in the assignment from
   ``I => target``;
3. simplify the result with ``I`` as the critical constraint so the user
   is not asked about facts the analysis already knows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .. import obs
from ..logic.formulas import Formula, implies, neg
from ..obs import provenance as prov
from ..logic.terms import Var
from ..msa import MsaResult, MsaSolver
from ..qe import eliminate_forall
from ..simplify import Simplifier
from ..smt import SmtSolver
from .cost import CostFn, formula_cost


def _relevant_variables(goal: Formula,
                        seeds: frozenset[Var]) -> list[Var]:
    """Variables connected to ``seeds`` through shared atoms of ``goal``.

    A variable in a connected component disjoint from the target can only
    influence ``I => target`` by falsifying its own slice of ``I`` —
    which consistency with ``I`` (Definition 6) forbids — so no optimal
    assignment ever mentions it.  Restricting the MSA search to the
    connected variables is therefore exact, and it prunes the search
    space dramatically on programs with many independent facts.
    """
    adjacency: dict[Var, set[Var]] = {}
    for atom in goal.atoms():
        group = atom.free_vars()
        for v in group:
            adjacency.setdefault(v, set()).update(group)
    reached = set(seeds) & set(adjacency)
    frontier = list(reached)
    while frontier:
        v = frontier.pop()
        for u in adjacency.get(v, ()):
            if u not in reached:
                reached.add(u)
                frontier.append(u)
    return sorted(reached, key=lambda v: v.name)


@dataclass(frozen=True)
class Abduction:
    """A computed query formula with its provenance."""

    formula: Formula
    cost: int
    kind: str                      # 'proof_obligation' | 'failure_witness'
    msa: MsaResult
    unsimplified: Formula

    @property
    def is_trivial(self) -> bool:
        return self.formula.is_true


class Abducer:
    """Shared abduction engine (one SMT solver/cache for all steps)."""

    def __init__(self, *, msa_strategy: str = "branch_bound",
                 use_simplification: bool = True,
                 solver: SmtSolver | None = None):
        self._solver = solver if solver is not None else SmtSolver()
        self._msa = MsaSolver(self._solver)
        self._simplifier = Simplifier(self._solver)
        self._strategy = msa_strategy
        self._use_simplification = use_simplification

    # ------------------------------------------------------------------
    def proof_obligation(
        self,
        invariants: Formula,
        success: Formula,
        costs: CostFn,
        witnesses: Sequence[Formula] = (),
        extra_consistency: Sequence[Formula] = (),
    ) -> Abduction | None:
        """Compute a weakest minimum proof obligation (Definition 3).

        The MSA must be consistent with ``I`` and with every learned
        witness (Figure 6, line 5) and with any ``extra_consistency``
        formulas (the potential witnesses of Section 5).
        """
        return self._abduce(
            invariants,
            target=success,
            costs=costs,
            consistency=[invariants, *witnesses, *extra_consistency],
            kind="proof_obligation",
        )

    def failure_witness(
        self,
        invariants: Formula,
        success: Formula,
        costs: CostFn,
        extra_consistency: Sequence[Formula] = (),
    ) -> Abduction | None:
        """Compute a weakest minimum failure witness (Definition 10).

        Consistency with learned witnesses is *not* required (a witness
        needs to hold in only one execution), but Section 5's potential
        invariants are passed via ``extra_consistency``.
        """
        return self._abduce(
            invariants,
            target=neg(success),
            costs=costs,
            consistency=[invariants, *extra_consistency],
            kind="failure_witness",
        )

    # ------------------------------------------------------------------
    def _abduce(
        self,
        invariants: Formula,
        target: Formula,
        costs: CostFn,
        consistency: list[Formula],
        kind: str,
    ) -> Abduction | None:
        obs.inc(f"abduce.{kind}")
        goal = implies(invariants, target)
        relevant = _relevant_variables(goal, target.free_vars())
        with obs.span("abduce.msa", kind=kind):
            msa = self._msa.find(
                goal, costs, consistency=consistency,
                strategy=self._strategy, restrict=relevant,
            )
        if msa is None:
            obs.inc(f"abduce.{kind}.infeasible")
            if prov.is_enabled():
                prov.record("abduce", abduction_kind=kind, cost=None,
                            formula="(infeasible)")
            return None
        keep = msa.variables
        eliminate = [v for v in goal.free_vars() if v not in keep]
        with obs.span("abduce.eliminate", kind=kind):
            raw = eliminate_forall(eliminate, goal)
        if self._use_simplification:
            with obs.span("abduce.simplify", kind=kind):
                formula = self._simplifier.simplify(
                    raw, critical=invariants
                )
        else:
            formula = raw
        cost = formula_cost(formula, costs)
        if obs.is_enabled():
            obs.observe("abduce.formula_size", formula.size())
            raw_size = raw.size()
            if raw_size:
                obs.observe("abduce.simplify_ratio",
                            formula.size() / raw_size)
        if prov.is_enabled():
            prov.record(
                "abduce", abduction_kind=kind, cost=cost,
                formula=prov.fmla(formula),
                msa_variables=[v.name for v in msa.variables],
                msa_cost=msa.cost,
            )
        return Abduction(
            formula=formula,
            cost=cost,
            kind=kind,
            msa=msa,
            unsimplified=raw,
        )

    # convenience handles for the engine ---------------------------------
    @property
    def solver(self) -> SmtSolver:
        return self._solver

    @property
    def msa_solver(self) -> MsaSolver:
        return self._msa

    @property
    def simplifier(self) -> Simplifier:
        return self._simplifier
