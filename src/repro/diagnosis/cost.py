"""Query cost models (Definitions 2 and 9).

The paper's cost functions steer abduction toward queries humans find
easy:

* ``Pi_p`` (proof obligations): abstraction variables cost 1, input
  variables cost ``|Vars(phi) ∪ Vars(I)|`` — constraining the execution
  environment should be a last resort when trying to *discharge* an
  error;
* ``Pi_w`` (failure witnesses): dual — input variables cost 1,
  abstraction variables cost ``|Vars(phi) ∪ Vars(I)|`` — witnesses about
  inputs are easy to confirm by running the program.

A uniform model is provided for the cost-function ablation (A1).
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..logic.formulas import Formula
from ..logic.terms import Var

CostFn = Callable[[Var], int]


def total_vars(invariants: Formula, success: Formula) -> int:
    """``|Vars(phi) ∪ Vars(I)|`` — the expensive tier of both models."""
    return len(invariants.free_vars() | success.free_vars())


def pi_p(invariants: Formula, success: Formula) -> CostFn:
    """Definition 2: the proof-obligation cost map."""
    expensive = max(1, total_vars(invariants, success))

    def cost(v: Var) -> int:
        return 1 if v.is_abstraction else expensive

    return cost


def pi_w(invariants: Formula, success: Formula) -> CostFn:
    """Definition 9: the failure-witness cost map."""
    expensive = max(1, total_vars(invariants, success))

    def cost(v: Var) -> int:
        return 1 if v.is_input else expensive

    return cost


def uniform(_invariants: Formula, _success: Formula) -> CostFn:
    """Ablation A1: every variable costs 1."""
    return lambda v: 1


def formula_cost(phi: Formula, cost: CostFn) -> int:
    """``Cost(Gamma) = sum of costs of Vars(Gamma)`` (Definitions 2/9)."""
    return sum(cost(v) for v in phi.free_vars())


def assignment_cost(variables: Iterable[Var], cost: CostFn) -> int:
    return sum(cost(v) for v in variables)
