"""From formulas to user-facing queries (Section 4.4).

Two concerns live here:

* **Translation** — analysis variables are internal names; queries must
  speak in program terms.  Input variables print as the parameter name,
  loop abstraction variables as the program variable (with a note tying
  it to "immediately after the loop at line N"), havoc/product variables
  as a readable phrase.
* **Decomposition** — users should not be asked about complex boolean
  structure.  Invariant queries distribute over CNF clauses (each clause
  must independently be an invariant); witness queries distribute over
  DNF clauses (some clause must be realizable).  Conjunctive witness
  clauses additionally decompose into a chain of sub-questions ("can X
  hold?", "...and can Y hold in that same execution?").
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..analysis import AnalysisResult
from ..logic.formulas import Atom, Dvd, Formula, Rel, conj
from ..logic.normal_forms import cnf_clauses, dnf_clauses
from ..logic.terms import LinTerm, Var


class Answer(Enum):
    YES = "yes"
    NO = "no"
    UNKNOWN = "unknown"

    @staticmethod
    def parse(text: str) -> "Answer":
        norm = text.strip().lower()
        if norm in ("y", "yes", "true", "1"):
            return Answer.YES
        if norm in ("n", "no", "false", "0"):
            return Answer.NO
        if norm in ("?", "unknown", "dont know", "don't know", "dk", "idk"):
            return Answer.UNKNOWN
        raise ValueError(f"cannot interpret answer {text!r}")


@dataclass(frozen=True)
class Query:
    """A single question posed to the user.

    ``formula`` is over analysis variables; ``text`` and ``notes`` are the
    human rendering; ``subquestions`` is the Section 4.4 chain
    decomposition for conjunctive witness clauses.
    """

    kind: str                      # 'invariant' | 'witness'
    formula: Formula
    text: str
    notes: tuple[str, ...] = ()
    subquestions: tuple[str, ...] = ()

    def render(self) -> str:
        lines = [self.text]
        for index, sub in enumerate(self.subquestions, 1):
            lines.append(f"    {index}. {sub}")
        for note in self.notes:
            lines.append(f"  where {note}")
        return "\n".join(lines)


class QueryRenderer:
    """Renders analysis-variable formulas in program terms."""

    def __init__(self, analysis: AnalysisResult):
        self._analysis = analysis
        self._display: dict[Var, str] = {}
        self._build_display_names()

    def _build_display_names(self) -> None:
        used: set[str] = set()
        for v, info in self._analysis.info.items():
            if info.kind == "input":
                name = info.program_var or v.name
            elif info.kind == "loop":
                name = info.program_var or v.name
            elif info.kind == "havoc":
                name = info.program_var or v.name
            else:  # 'mul'
                name = v.name
            if name in used:
                line = info.span.line if info.span else 0
                name = f"{name}#L{line}"
            used.add(name)
            self._display[v] = name

    def display_name(self, v: Var) -> str:
        return self._display.get(v, v.name)

    # ------------------------------------------------------------------
    def format_term_pair(self, term: LinTerm) -> tuple[str, str]:
        """Split ``term REL 0`` into human-friendly lhs/rhs strings."""
        positive: list[str] = []
        negative: list[str] = []
        for v, c in term.coeffs:
            name = self.display_name(v)
            text = name if abs(c) == 1 else f"{abs(c)}*{name}"
            (positive if c > 0 else negative).append(text)
        const = term.const
        if const > 0:
            positive.append(str(const))
        elif const < 0:
            negative.append(str(-const))
        lhs = " + ".join(positive) if positive else "0"
        rhs = " + ".join(negative) if negative else "0"
        return lhs, rhs

    def format_atom(self, a: Formula) -> str:
        if isinstance(a, Atom):
            lhs, rhs = self.format_term_pair(a.term)
            op = {Rel.LE: "<=", Rel.EQ: "==", Rel.NE: "!="}[a.rel]
            return f"{lhs} {op} {rhs}"
        if isinstance(a, Dvd):
            inner = self._format_term(a.term)
            op = "does not divide" if a.negated_flag else "divides"
            return f"{a.divisor} {op} {inner}"
        raise TypeError(f"not an atom: {a!r}")

    def _format_term(self, term: LinTerm) -> str:
        parts: list[str] = []
        for v, c in term.coeffs:
            name = self.display_name(v)
            if not parts:
                prefix = "" if c == 1 else "-" if c == -1 else f"{c}*"
                parts.append(f"{prefix}{name}")
            else:
                sign = "+" if c > 0 else "-"
                mag = "" if abs(c) == 1 else f"{abs(c)}*"
                parts.append(f" {sign} {mag}{name}")
        if term.const:
            if parts:
                sign = "+" if term.const > 0 else "-"
                parts.append(f" {sign} {abs(term.const)}")
            else:
                parts.append(str(term.const))
        return "".join(parts) or "0"

    def format_formula(self, phi: Formula) -> str:
        if phi.is_true:
            return "true"
        if phi.is_false:
            return "false"
        if isinstance(phi, (Atom, Dvd)):
            return self.format_atom(phi)
        from ..logic.formulas import And, Not, Or

        if isinstance(phi, And):
            return " and ".join(
                self._wrap(arg) for arg in phi.args
            )
        if isinstance(phi, Or):
            return " or ".join(
                self._wrap(arg) for arg in phi.args
            )
        if isinstance(phi, Not):
            return f"not ({self.format_formula(phi.arg)})"
        return str(phi)

    def _wrap(self, phi: Formula) -> str:
        text = self.format_formula(phi)
        if isinstance(phi, (Atom, Dvd)) or phi.is_true or phi.is_false:
            return text
        return f"({text})"

    def notes_for(self, phi: Formula) -> tuple[str, ...]:
        notes: list[str] = []
        seen: set[str] = set()
        for v in sorted(phi.free_vars(), key=lambda u: u.name):
            info = self._analysis.info.get(v)
            if info is None or info.kind == "input":
                continue
            note = f"{self.display_name(v)} is {info.description}"
            if note not in seen:
                seen.add(note)
                notes.append(note)
        return tuple(notes)

    # ------------------------------------------------------------------
    def invariant_query(self, clause: Formula) -> Query:
        text = (
            f"Is it true that  {self.format_formula(clause)}  holds in "
            f"EVERY execution of the program?"
        )
        return Query(
            kind="invariant",
            formula=clause,
            text=text,
            notes=self.notes_for(clause),
        )

    def witness_query(self, clause: Formula) -> Query:
        text = (
            f"Can  {self.format_formula(clause)}  hold in SOME execution "
            f"of the program?"
        )
        subquestions: tuple[str, ...] = ()
        from ..logic.formulas import And

        if isinstance(clause, And) and len(clause.args) > 1:
            chain = [
                f"Can  {self.format_formula(clause.args[0])}  hold in some "
                f"execution?"
            ]
            for part in clause.args[1:]:
                chain.append(
                    f"...and can  {self.format_formula(part)}  also hold "
                    f"in that same execution?"
                )
            subquestions = tuple(chain)
        return Query(
            kind="witness",
            formula=clause,
            text=text,
            notes=self.notes_for(clause),
            subquestions=subquestions,
        )


def decompose_invariant(gamma: Formula) -> list[Formula]:
    """CNF clauses of an invariant query, each an independent question."""
    clauses = cnf_clauses(gamma)
    from ..logic.formulas import disj

    return [disj(*clause) for clause in clauses]


def decompose_witness(upsilon: Formula) -> list[Formula]:
    """DNF clauses of a witness query, each an independent question."""
    clauses = dnf_clauses(upsilon)
    return [conj(*clause) for clause in clauses]
