"""The diagnosis loop as named, cacheable pipeline stages.

The Figure 6 engine used to interleave its solver calls with its control
flow; this module splits one round of the loop into pure stages —

    analyze -> entail(I, phi) -> abduce(Gamma) / abduce(Upsilon)
            -> choose -> decompose

— each a function from *digested* inputs to a serializable artifact.
Every stage takes an optional :class:`repro.cache.CacheStore`; with a
store, the artifact is looked up under a content digest of everything
it depends on (the judgment formulas, the learned facts, the engine
configuration and :data:`STAGE_VERSION`) before any solver work runs,
and persisted after a miss.  Because the keys are content digests
(:mod:`repro.logic.digest`), artifacts computed by one process — or one
batch worker — are hits for every other process that sees the same
judgment, which is what makes warm re-triage of an unchanged report
perform zero MSA/QE work.

Provenance is cache-transparent: a stage emits the *same*
``prov.record`` payloads whether it computed its artifact or replayed
it, so derivation DAGs do not change shape when a cache warms up.
Telemetry is not: hits skip the solver counters/spans by construction
(that is the observable proof of the skipped work) and surface instead
as ``cache.<stage>.hit`` counters from the store.

The ``analyze`` stage lives with the batch driver
(:mod:`repro.batch.driver`), which owns program loading; its artifact
maps a *source* digest to the judgment digests so an unchanged report
can be recognized without re-running the abstract interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..obs import provenance as prov
from ..logic.digest import digest, digest_many
from ..logic.formulas import Formula, conj, implies, neg
from ..logic.serialize import (
    formula_from_obj,
    formula_to_obj,
    var_from_obj,
    var_to_obj,
)
from ..msa import MsaResult
from .abduction import Abducer, Abduction
from .cost import formula_cost, pi_p, pi_w, uniform

__all__ = [
    "STAGE_VERSION",
    "EntailOutcome",
    "abduce_stage",
    "choose_stage",
    "config_fingerprint",
    "decompose_stage",
    "entail_stage",
]

#: Version of the stage artifact formats; folded into every stage key so
#: a change to any artifact schema invalidates old entries wholesale.
STAGE_VERSION = "s1"


def config_fingerprint(config) -> str:
    """Digest of every :class:`EngineConfig` knob a stage artifact can
    depend on (the round budget, SMT mode and solver portfolio do not
    change verdicts)."""
    return digest_many(
        "engine-config", STAGE_VERSION, config.cost_model,
        config.msa_strategy, str(int(config.use_simplification)),
        str(int(config.use_abduction)),
    )


# ---------------------------------------------------------------------------
# entail(I, phi)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EntailOutcome:
    """Verdicts of the round-opening entailment checks (Figure 6,
    lines 1-4, plus the learned-witness closure of Lemma 2).

    Fields after the first decisive one are ``None`` — the compute path
    short-circuits, and the replay path reproduces exactly the checks
    that ran.
    """

    consistent: bool
    discharged: bool | None = None
    validated: bool | None = None
    witness_index: int | None = None   # learned witness that closed it
    cached: bool = False


def _entail_prov(outcome: EntailOutcome, invariants: Formula,
                 success: Formula, witnesses: tuple[Formula, ...],
                 round_index: int) -> None:
    """Emit the entailment derivation records for ``outcome`` — the same
    payloads whether the verdicts were computed or replayed."""
    prov.record(
        "entailment", lemma="consistency",
        check=f"SAT({prov.fmla(invariants)})",
        verdict=outcome.consistent, round=round_index,
    )
    if not outcome.consistent:
        return
    prov.record(
        "entailment", lemma="lemma-1",
        check=f"I |= {prov.fmla(success)}",
        verdict=bool(outcome.discharged), round=round_index,
    )
    if outcome.discharged:
        return
    prov.record(
        "entailment", lemma="lemma-2",
        check=f"UNSAT(I and {prov.fmla(success)})",
        verdict=bool(outcome.validated), round=round_index,
    )
    if outcome.validated:
        return
    for index, psi in enumerate(witnesses):
        closes = outcome.witness_index == index
        prov.record(
            "entailment", lemma="lemma-2",
            check=f"UNSAT(I and {prov.fmla(psi)} and phi)",
            verdict=closes, round=round_index,
        )
        if closes:
            return


def entail_stage(solver, invariants: Formula, success: Formula,
                 witnesses: tuple[Formula, ...] = (),
                 *, round_index: int = 0, store=None) -> EntailOutcome:
    """Decide whether ``(I, phi)`` (relative to learned witnesses) can be
    closed outright: consistency, Lemma 1, Lemma 2, witness closure."""
    key = None
    if store is not None:
        key = digest_many("entail", STAGE_VERSION, invariants, success,
                          str(len(witnesses)), *witnesses)
        artifact = store.get("entail", key)
        if artifact is not None:
            outcome = EntailOutcome(
                consistent=artifact["consistent"],
                discharged=artifact["discharged"],
                validated=artifact["validated"],
                witness_index=artifact["witness"],
                cached=True,
            )
            if prov.is_enabled():
                _entail_prov(outcome, invariants, success, witnesses,
                             round_index)
            return outcome

    # Inconsistent knowledge would make every check below vacuous; bail
    # out before trusting it (only reachable via an oracle that
    # contradicted itself).
    consistent = solver.is_sat(invariants)
    discharged = validated = witness_index = None
    if consistent:
        # Figure 6, lines 3-4: try to close the report outright.
        discharged = solver.is_valid(implies(invariants, success))
        if not discharged:
            # Lemma 2: I |= !phi — every execution fails the check
            validated = not solver.is_sat(conj(invariants, success))
            if not validated:
                for index, psi in enumerate(witnesses):
                    if not solver.is_sat(conj(invariants, psi, success)):
                        witness_index = index
                        break
    outcome = EntailOutcome(
        consistent=consistent, discharged=discharged,
        validated=validated, witness_index=witness_index,
    )
    if prov.is_enabled():
        _entail_prov(outcome, invariants, success, witnesses, round_index)
    if store is not None:
        store.put("entail", key, {
            "consistent": consistent, "discharged": discharged,
            "validated": validated, "witness": witness_index,
        })
    return outcome


# ---------------------------------------------------------------------------
# abduce(Gamma) / abduce(Upsilon)
# ---------------------------------------------------------------------------

def _abduction_to_artifact(abduction: Abduction | None) -> dict:
    if abduction is None:
        return {"feasible": False}
    return {
        "feasible": True,
        "kind": abduction.kind,
        "formula": formula_to_obj(abduction.formula),
        "cost": abduction.cost,
        "unsimplified": formula_to_obj(abduction.unsimplified),
        "msa": [[var_to_obj(v), value]
                for v, value in abduction.msa.assignment],
        "msa_cost": abduction.msa.cost,
    }


def _abduction_from_artifact(artifact: dict, kind: str,
                             emit_prov: bool) -> Abduction | None:
    """Replay a cached abduction.  ``emit_prov`` mirrors whether the
    compute path (Abducer vs. the A2 trivial path) records derivations,
    keeping provenance identical between cold and warm runs."""
    if not artifact["feasible"]:
        if emit_prov and prov.is_enabled():
            prov.record("abduce", abduction_kind=kind, cost=None,
                        formula="(infeasible)")
        return None
    formula = formula_from_obj(artifact["formula"])
    msa = MsaResult(
        tuple((var_from_obj(v), value) for v, value in artifact["msa"]),
        artifact["msa_cost"],
    )
    if emit_prov and prov.is_enabled():
        # the same derivation record Abducer._abduce emits on compute
        prov.record(
            "abduce", abduction_kind=kind, cost=artifact["cost"],
            formula=prov.fmla(formula),
            msa_variables=[v.name for v in msa.variables],
            msa_cost=msa.cost,
        )
    return Abduction(
        formula=formula,
        cost=artifact["cost"],
        kind=kind,
        msa=msa,
        unsimplified=formula_from_obj(artifact["unsimplified"]),
    )


def _trivial_abduction(solver, target: Formula, invariants: Formula,
                       costs, kind: str) -> Abduction | None:
    """Ablation A2: the trivial obligation ``Gamma = phi`` (and trivial
    witness ``Upsilon = not phi``) when consistent with ``I``."""
    if not solver.is_sat(conj(target, invariants)):
        return None
    return Abduction(
        formula=target,
        cost=formula_cost(target, costs),
        kind=kind,
        msa=MsaResult((), 0),
        unsimplified=target,
    )


def abduce_stage(
    abducer: Abducer,
    config,
    invariants: Formula,
    success: Formula,
    witnesses: tuple[Formula, ...] = (),
    potential_invariants: tuple[Formula, ...] = (),
    potential_witnesses: tuple[Formula, ...] = (),
    *, store=None,
) -> tuple[Abduction | None, Abduction | None]:
    """Compute (or replay) the round's proof obligation ``Gamma`` and
    failure witness ``Upsilon``.

    The two artifacts are keyed independently: ``Gamma`` depends on the
    learned witnesses and potential witnesses (its MSA must be
    consistent with them), ``Upsilon`` only on the potential invariants
    — so learning a witness invalidates one cache line, not both.
    """
    fingerprint = config_fingerprint(config)
    gamma_key = upsilon_key = gamma_artifact = upsilon_artifact = None
    if store is not None:
        gamma_key = digest_many(
            "abduce", STAGE_VERSION, "proof_obligation", fingerprint,
            invariants, success, "W", *witnesses,
            "PW", *potential_witnesses,
        )
        upsilon_key = digest_many(
            "abduce", STAGE_VERSION, "failure_witness", fingerprint,
            invariants, success, "PI", *potential_invariants,
        )
        gamma_artifact = store.get("abduce", gamma_key)
        upsilon_artifact = store.get("abduce", upsilon_key)

    cost_p = cost_w = None
    if gamma_artifact is None or upsilon_artifact is None:
        if config.cost_model == "uniform":
            cost_p = uniform(invariants, success)
            cost_w = uniform(invariants, success)
        else:
            cost_p = pi_p(invariants, success)
            cost_w = pi_w(invariants, success)

    # Resolve Gamma, then Upsilon — replayed or computed, the derivation
    # records come out in the same order as an all-compute round.
    if gamma_artifact is not None:
        gamma = _abduction_from_artifact(
            gamma_artifact, "proof_obligation", config.use_abduction)
    else:
        if config.use_abduction:
            gamma = abducer.proof_obligation(
                invariants, success, cost_p,
                witnesses=witnesses,
                extra_consistency=potential_witnesses,
            )
        else:
            gamma = _trivial_abduction(
                abducer.solver, success, invariants, cost_p,
                "proof_obligation",
            )
        if store is not None:
            store.put("abduce", gamma_key, _abduction_to_artifact(gamma))
    if upsilon_artifact is not None:
        upsilon = _abduction_from_artifact(
            upsilon_artifact, "failure_witness", config.use_abduction)
    else:
        if config.use_abduction:
            upsilon = abducer.failure_witness(
                invariants, success, cost_w,
                extra_consistency=potential_invariants,
            )
        else:
            upsilon = _trivial_abduction(
                abducer.solver, neg(success), invariants, cost_w,
                "failure_witness",
            )
        if store is not None:
            store.put("abduce", upsilon_key,
                      _abduction_to_artifact(upsilon))
    return gamma, upsilon


# ---------------------------------------------------------------------------
# choose
# ---------------------------------------------------------------------------

def choose_stage(gamma: Abduction | None, upsilon: Abduction | None,
                 *, round_index: int = 0) -> bool:
    """Figure 6, line 9: ask the cheaper side first.  True means the
    invariant query (``Gamma``) is asked this round.

    A pure comparison — never persisted; the store would be slower than
    the subtraction.
    """
    ask_invariant = upsilon is None or (
        gamma is not None and gamma.cost <= upsilon.cost
    )
    if prov.is_enabled():
        prov.record(
            "choice",
            chosen="invariant" if ask_invariant else "witness",
            gamma_cost=None if gamma is None else gamma.cost,
            upsilon_cost=None if upsilon is None else upsilon.cost,
            round=round_index,
        )
    return ask_invariant


# ---------------------------------------------------------------------------
# decompose
# ---------------------------------------------------------------------------

def decompose_stage(kind: str, formula: Formula,
                    *, store=None) -> list[Formula]:
    """Split a query into independently askable clauses (Section 4.4):
    CNF clauses for an invariant query, DNF clauses for a witness query.
    """
    from .queries import decompose_invariant, decompose_witness

    mode = "cnf" if kind == "invariant" else "dnf"
    key = None
    clauses = None
    if store is not None:
        key = digest_many("decompose", STAGE_VERSION, kind, formula)
        artifact = store.get("decompose", key)
        if artifact is not None:
            clauses = [formula_from_obj(c) for c in artifact["clauses"]]
    if clauses is None:
        if kind == "invariant":
            clauses = decompose_invariant(formula)
        else:
            clauses = decompose_witness(formula)
        if store is not None:
            store.put("decompose", key, {
                "clauses": [formula_to_obj(c) for c in clauses],
            })
    if prov.is_enabled():
        prov.record("decompose", query_kind=kind, mode=mode,
                    clauses=len(clauses), formula=prov.fmla(formula))
    return clauses
