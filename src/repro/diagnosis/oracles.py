"""Oracles: sources of answers to invariant/witness queries.

The paper's oracle is a human programmer.  The reproduction provides:

* :class:`InteractiveOracle` — a human at a terminal;
* :class:`ScriptedOracle`   — a fixed answer sequence (tests, replays);
* :class:`ExhaustiveOracle` — ground truth by exhaustive execution over a
  bounded input box (used to calibrate the benchmark suite and as the
  truth source for the simulated user study);
* :class:`SamplingOracle`   — random testing: it can definitively answer
  "yes" to witness queries and "no" to invariant queries when it finds a
  concrete execution, and says "unknown" otherwise — exactly the
  Section 8 future-work idea of discharging witness queries dynamically;
* :class:`ChainOracle`      — try oracles in order until one is decisive.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Sequence

from ..analysis import AnalysisResult
from ..lang.ast import Program
from ..lang.interp import ExecutionResult, HavocPolicy, Interpreter, OutOfFuel
from ..logic.terms import Var
from .queries import Answer, Query


class Oracle:
    """Base class: maps queries to answers."""

    def answer(self, query: Query) -> Answer:
        raise NotImplementedError


class ScriptedOracle(Oracle):
    """Answers from a fixed sequence; exhausted -> ``default``."""

    def __init__(self, answers: Sequence[Answer | str],
                 default: Answer = Answer.UNKNOWN):
        self._answers = [
            a if isinstance(a, Answer) else Answer.parse(a) for a in answers
        ]
        self._default = default
        self._index = 0
        self.asked: list[Query] = []

    def answer(self, query: Query) -> Answer:
        self.asked.append(query)
        if self._index < len(self._answers):
            result = self._answers[self._index]
            self._index += 1
            return result
        return self._default


class FunctionOracle(Oracle):
    """Answers computed by a callback (used by the user-study simulator)."""

    def __init__(self, fn):
        self._fn = fn

    def answer(self, query: Query) -> Answer:
        return self._fn(query)


class InteractiveOracle(Oracle):
    """Asks a human on stdin/stdout."""

    def __init__(self, input_fn=input, print_fn=print):
        self._input = input_fn
        self._print = print_fn

    def answer(self, query: Query) -> Answer:
        self._print()
        self._print(query.render())
        while True:
            try:
                raw = self._input("[yes/no/unknown] > ")
            except EOFError:
                return Answer.UNKNOWN
            try:
                return Answer.parse(raw)
            except ValueError:
                self._print("please answer yes, no, or unknown")


class ChainOracle(Oracle):
    """Tries each oracle in turn; first non-UNKNOWN answer wins."""

    def __init__(self, oracles: Sequence[Oracle]):
        self._oracles = list(oracles)

    def answer(self, query: Query) -> Answer:
        for oracle in self._oracles:
            result = oracle.answer(query)
            if result is not Answer.UNKNOWN:
                return result
        return Answer.UNKNOWN


# ---------------------------------------------------------------------------
# execution-backed oracles
# ---------------------------------------------------------------------------

class _ExecutionEvaluator:
    """Evaluates query formulas against concrete executions.

    Analysis variables are bound from an instrumented run: inputs from
    the run's inputs, loop abstractions from the loop's last exit
    environment, havoc/product abstractions from recorded site values.
    An execution that never reaches a referenced site does not bind the
    query (such runs are skipped).
    """

    def __init__(self, analysis: AnalysisResult):
        self._analysis = analysis

    def bind(self, inputs: dict[str, int],
             run: ExecutionResult) -> dict[Var, int] | None:
        env: dict[Var, int] = {}
        for name, nu in self._analysis.input_vars.items():
            env[nu] = inputs[name]
        for v, info in self._analysis.info.items():
            if info.kind == "input":
                continue
            if info.kind == "loop":
                exits = run.loop_exit_envs.get(info.label or -1)
                if not exits:
                    continue
                assert info.program_var is not None
                env[v] = exits[-1][info.program_var]
            else:  # havoc / mul
                if info.span is None:
                    continue
                value = run.site_values.get(info.span.start)
                if value is not None:
                    env[v] = value
        return env

    def holds(self, query: Query, env: dict[Var, int]) -> bool | None:
        """Whether the query formula holds on this execution; ``None`` if
        the execution does not bind every variable the query mentions."""
        needed = query.formula.free_vars()
        if not needed <= env.keys():
            return None
        return query.formula.evaluate({v: env[v] for v in needed})


def _input_space(program: Program, radius: int) -> Iterable[dict[str, int]]:
    """All input vectors in the box (unsigned params clipped at 0)."""
    ranges = []
    for param in program.params:
        low = 0 if param.unsigned else -radius
        ranges.append(range(low, radius + 1))
    for combo in itertools.product(*ranges):
        yield dict(zip((p.name for p in program.params), combo))


class ExhaustiveOracle(Oracle):
    """Ground truth by exhaustive execution over a bounded input box.

    Within the box the answers are exact; the benchmark suite is
    calibrated so that box-exhaustive answers coincide with the true
    (unbounded) answers.  Programs with havocs are run ``havoc_rounds``
    times per input with different seeds.
    """

    def __init__(self, program: Program, analysis: AnalysisResult,
                 *, radius: int = 6, havoc_rounds: int = 8,
                 fuel: int = 100_000):
        self._program = program
        self._analysis = analysis
        self._radius = radius
        self._havoc_rounds = havoc_rounds
        self._fuel = fuel
        self._evaluator = _ExecutionEvaluator(analysis)
        self._runs: list[tuple[dict[str, int], ExecutionResult]] | None = None

    def _executions(self) -> list[tuple[dict[str, int], ExecutionResult]]:
        if self._runs is None:
            self._runs = []
            has_havoc = any(
                True for s in self._program.body.walk()
                if s.__class__.__name__ == "Havoc"
            )
            rounds = self._havoc_rounds if has_havoc else 1
            for inputs in _input_space(self._program, self._radius):
                for seed in range(rounds):
                    interp = Interpreter(
                        fuel=self._fuel,
                        havoc_policy=HavocPolicy(random.Random(seed)),
                    )
                    try:
                        run = interp.run(self._program, inputs)
                    except OutOfFuel:
                        continue
                    self._runs.append((inputs, run))
        return self._runs

    def answer(self, query: Query) -> Answer:
        found_holding = False
        found_violating = False
        for inputs, run in self._executions():
            env = self._evaluator.bind(inputs, run)
            holds = self._evaluator.holds(query, env)
            if holds is None:
                continue
            if holds:
                found_holding = True
            else:
                found_violating = True
            if query.kind == "witness" and found_holding:
                return Answer.YES
            if query.kind == "invariant" and found_violating:
                return Answer.NO
        if query.kind == "witness":
            return Answer.NO
        return Answer.YES


class SamplingOracle(Oracle):
    """Random testing: decisive only in the existential direction.

    Finds witnesses ("yes" to witness queries, "no" to invariant queries)
    by running the program on random inputs; in the absence of a witness
    it answers "unknown" — it cannot prove universal facts.
    """

    def __init__(self, program: Program, analysis: AnalysisResult,
                 *, samples: int = 400, radius: int = 50,
                 rng: random.Random | None = None, fuel: int = 100_000):
        self._program = program
        self._analysis = analysis
        self._samples = samples
        self._radius = radius
        self._rng = rng or random.Random(12345)
        self._fuel = fuel
        self._evaluator = _ExecutionEvaluator(analysis)

    def _random_inputs(self) -> dict[str, int]:
        inputs = {}
        for param in self._program.params:
            low = 0 if param.unsigned else -self._radius
            # mix small values (where corner cases live) with larger ones
            if self._rng.random() < 0.6:
                value = self._rng.randint(max(low, -6), 6)
            else:
                value = self._rng.randint(low, self._radius)
            inputs[param.name] = max(value, 0) if param.unsigned else value
        return inputs

    def answer(self, query: Query) -> Answer:
        for _ in range(self._samples):
            inputs = self._random_inputs()
            interp = Interpreter(
                fuel=self._fuel,
                havoc_policy=HavocPolicy(
                    random.Random(self._rng.getrandbits(32))
                ),
            )
            try:
                run = interp.run(self._program, inputs)
            except OutOfFuel:
                continue
            env = self._evaluator.bind(inputs, run)
            holds = self._evaluator.holds(query, env)
            if holds is None:
                continue
            if query.kind == "witness" and holds:
                return Answer.YES
            if query.kind == "invariant" and not holds:
                return Answer.NO
        return Answer.UNKNOWN
