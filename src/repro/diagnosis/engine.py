"""The full diagnosis algorithm (Figure 6) with Section 5's extensions.

Given the analysis judgment ``(I, phi)`` and an oracle (normally a
human), the engine alternates:

1. try to close the report outright — ``I |= phi`` discharges it
   (Lemma 1), and a learned witness ``psi`` with ``UNSAT(I ∧ psi ∧ phi)``
   validates it (Lemma 2 relativized to learned facts);
2. otherwise compute a weakest minimum proof obligation and failure
   witness by abduction, and ask whichever is cheaper;
3. fold the answer back in: "yes" closes the report; "no" still teaches
   the engine something (a refuted invariant is a witness, a refuted
   witness is an invariant); "I don't know" (Section 5) records potential
   invariants/witnesses that steer later MSAs away from unanswerable
   queries.

Queries are decomposed per Section 4.4 — invariant queries split into
CNF clauses, witness queries into DNF clauses — and the engine learns
from every subquery even when the enclosing query fails.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum

from .. import limits as _limits_mod
from .. import obs
from ..obs import provenance as prov
from ..analysis import AnalysisResult
from ..limits import Limits, ResourceExhausted
from ..logic.digest import digest
from ..logic.formulas import Formula, conj, neg
from ..schema import TriageVerdict, dump_json, envelope
from .abduction import Abducer
from .oracles import Oracle
from .queries import Answer, Query, QueryRenderer
from .stages import abduce_stage, choose_stage, decompose_stage, \
    entail_stage


class Verdict(Enum):
    DISCHARGED = "discharged"      # proven error-free: false alarm
    VALIDATED = "validated"        # proven buggy: real bug
    UNRESOLVED = "unresolved"
    RESOURCE_EXHAUSTED = "resource exhausted"  # a governed limit ran out


@dataclass(frozen=True)
class Interaction:
    query: Query
    answer: Answer


@dataclass
class DiagnosisResult:
    """Outcome of a diagnosis session."""

    verdict: Verdict
    interactions: list[Interaction]
    rounds: int
    invariants: Formula            # final (possibly strengthened) I
    witnesses: list[Formula]       # learned witnesses W
    analysis: AnalysisResult
    elapsed_seconds: float = 0.0
    immediate: bool = False        # closed with zero queries
    telemetry: dict | None = None  # obs snapshot delta, when enabled
    limits: dict | None = None     # rendering of the governing Limits
    resource_spend: dict | None = None   # per-stage spend (governed runs)
    exhausted_stage: str | None = None   # stage whose checkpoint fired
    exhausted_kind: str | None = None    # steps | nodes | deadline | ...
    cache: dict | None = None            # store provenance, when active

    @property
    def classification(self) -> str:
        return self.triage_verdict.value

    @property
    def triage_verdict(self) -> TriageVerdict:
        """The unified result vocabulary (see :mod:`repro.schema`)."""
        if self.verdict is Verdict.DISCHARGED:
            return TriageVerdict.FALSE_ALARM
        if self.verdict is Verdict.VALIDATED:
            return TriageVerdict.REAL_BUG
        if self.verdict is Verdict.RESOURCE_EXHAUSTED:
            return TriageVerdict.UNKNOWN_RESOURCE
        return TriageVerdict.UNKNOWN

    @property
    def num_queries(self) -> int:
        return len(self.interactions)

    def to_dict(self) -> dict:
        """The stable ``repro.result`` payload (see docs/API.md)."""
        return envelope(
            "diagnosis",
            self.triage_verdict,
            program=self.analysis.program.name,
            rounds=self.rounds,
            num_queries=self.num_queries,
            elapsed_seconds=self.elapsed_seconds,
            immediate=self.immediate,
            interactions=[
                {
                    "kind": i.query.kind,
                    "text": i.query.text,
                    "answer": i.answer.value,
                }
                for i in self.interactions
            ],
            invariants=str(self.invariants),
            witnesses=[str(w) for w in self.witnesses],
            telemetry=self.telemetry,
            limits=self.limits,
            resource_spend=self.resource_spend,
            exhausted_stage=self.exhausted_stage,
            exhausted_kind=self.exhausted_kind,
            cache=self.cache,
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return dump_json(self.to_dict(), indent=indent)


@dataclass
class EngineConfig:
    """Knobs exposed for the ablation experiments (A1–A4)."""

    cost_model: str = "paper"          # 'paper' | 'uniform'
    msa_strategy: str = "branch_bound"  # 'branch_bound' | 'subsets'
    use_simplification: bool = True
    use_abduction: bool = True          # False: trivial Gamma = phi (A2)
    max_rounds: int = 25
    incremental_smt: bool = True        # persistent assumption-based context
    solver_portfolio: bool = False      # race strategies on boolean queries


class DiagnosisEngine:
    """Drives the Figure 6 interaction loop."""

    def __init__(self, analysis: AnalysisResult, oracle: Oracle,
                 config: EngineConfig | None = None,
                 limits: Limits | None = None):
        self._analysis = analysis
        self._oracle = oracle
        self._config = config or EngineConfig()
        self._limits = limits
        from ..smt import SmtSolver

        self._abducer = Abducer(
            msa_strategy=self._config.msa_strategy,
            use_simplification=self._config.use_simplification,
            solver=SmtSolver(
                incremental=self._config.incremental_smt,
                portfolio=self._config.solver_portfolio,
            ),
        )
        self._renderer = QueryRenderer(analysis)
        self._asked: dict[tuple[str, Formula], Answer] = {}

    # ------------------------------------------------------------------
    def run(self) -> DiagnosisResult:
        from ..cache import current_store

        store = current_store()
        before = store.stats() if store is not None else None
        with obs.capture() as cap, obs.span("engine.session"):
            if self._limits is not None:
                with _limits_mod.governed(self._limits) as governor:
                    result = self._run()
                result.limits = self._limits.to_dict()
            else:
                # an ambient governor (e.g. installed by the batch
                # driver around the whole report) still attributes spend
                governor = _limits_mod.current_governor()
                result = self._run()
            if governor is not None:
                result.resource_spend = governor.spend_snapshot()
        if cap.snapshot is not None:
            result.telemetry = cap.snapshot
        if store is not None:
            result.cache = self._cache_provenance(store, before)
        return result

    def _cache_provenance(self, store, before: dict) -> dict:
        """Store path, judgment digests and this run's hit/miss delta —
        the ``cache`` block of the result envelope."""
        after = store.stats()
        return {
            "store": after["path"],
            "invariants_digest": digest(self._analysis.invariants),
            "success_digest": digest(self._analysis.success),
            "hits": after["hits"] - before["hits"],
            "misses": after["misses"] - before["misses"],
            "puts": after["puts"] - before["puts"],
        }

    def _run(self) -> DiagnosisResult:
        from ..cache import current_store

        start = time.perf_counter()
        invariants = self._analysis.invariants
        success = self._analysis.success
        solver = self._abducer.solver
        store = current_store()

        witnesses: list[Formula] = []
        potential_invariants: list[Formula] = []
        potential_witnesses: list[Formula] = []
        interactions: list[Interaction] = []

        def finish(verdict: Verdict, rounds: int,
                   reason: str = "") -> DiagnosisResult:
            if prov.is_enabled():
                prov.record(
                    "verdict", verdict=verdict.value, rounds=rounds,
                    queries=len(interactions), reason=reason,
                )
            return DiagnosisResult(
                verdict=verdict,
                interactions=interactions,
                rounds=rounds,
                invariants=invariants,
                witnesses=witnesses,
                analysis=self._analysis,
                elapsed_seconds=time.perf_counter() - start,
                immediate=not interactions,
            )

        round_index = 0
        try:
            for round_index in range(self._config.max_rounds):
                obs.inc("engine.rounds")
                # entail stage: consistency, Lemma 1, Lemma 2, and the
                # learned-witness closure — possibly replayed from the
                # persistent store (see repro.diagnosis.stages).
                entail = entail_stage(
                    solver, invariants, success, tuple(witnesses),
                    round_index=round_index, store=store,
                )
                if not entail.consistent:
                    return finish(Verdict.UNRESOLVED, round_index,
                                  reason="knowledge base inconsistent")
                if entail.discharged:
                    return finish(Verdict.DISCHARGED, round_index,
                                  reason="I entails the success condition"
                                         " (Lemma 1)")
                if entail.validated:
                    return finish(Verdict.VALIDATED, round_index,
                                  reason="I contradicts the success"
                                         " condition (Lemma 2)")
                if entail.witness_index is not None:
                    confirmed = witnesses[entail.witness_index]
                    return finish(
                        Verdict.VALIDATED, round_index,
                        reason="learned witness "
                               f"{prov.fmla(confirmed)} rules out"
                               " success (Lemma 2)")

                with obs.span("engine.abduce", round=round_index):
                    gamma, upsilon = abduce_stage(
                        self._abducer, self._config, invariants, success,
                        tuple(witnesses),
                        tuple(potential_invariants),
                        tuple(potential_witnesses),
                        store=store,
                    )
                if gamma is not None:
                    obs.gauge("engine.obligation_cost", gamma.cost)
                if upsilon is not None:
                    obs.gauge("engine.witness_cost", upsilon.cost)
                if gamma is None and upsilon is None:
                    return finish(Verdict.UNRESOLVED, round_index,
                                  reason="no abducible proof obligation"
                                         " or failure witness")

                ask_invariant = choose_stage(
                    gamma, upsilon, round_index=round_index
                )

                if ask_invariant:
                    assert gamma is not None
                    yes_clauses = self._ask_invariant(
                        gamma.formula, interactions, witnesses,
                        potential_invariants, potential_witnesses,
                        store=store,
                    )
                    # every affirmed clause is a learned invariant, even
                    # when the query as a whole was not (Section 4.4)
                    invariants = conj(invariants, *yes_clauses)
                else:
                    assert upsilon is not None
                    validated, refuted = self._ask_witness(
                        upsilon.formula, interactions, witnesses,
                        potential_invariants, potential_witnesses,
                        store=store,
                    )
                    if validated:
                        return finish(Verdict.VALIDATED, round_index + 1,
                                      reason="oracle affirmed a failure"
                                             " witness clause")
                    # a refuted witness clause is a learned invariant
                    invariants = conj(invariants, *refuted)
        except ResourceExhausted as exc:
            # A governed limit ran out mid-round.  This is a *verdict*,
            # not an error: the report stays open, the exception says
            # which solver stage's checkpoint noticed and why.
            obs.inc("engine.resource_exhausted")
            obs.inc(f"engine.resource_exhausted.{exc.stage}")
            result = finish(Verdict.RESOURCE_EXHAUSTED, round_index,
                            reason=f"{exc.kind} limit hit in {exc.stage}")
            result.exhausted_stage = exc.stage
            result.exhausted_kind = exc.kind
            return result

        return finish(Verdict.UNRESOLVED, self._config.max_rounds,
                      reason="round budget exhausted")

    # ------------------------------------------------------------------
    def _ask(self, query: Query) -> Answer:
        key = (query.kind, query.formula)
        if key in self._asked:
            obs.inc("engine.queries.deduplicated")
            answer = self._asked[key]
            if prov.is_enabled():
                prov.record("query", query_kind=query.kind,
                            text=query.text, answer=answer.value,
                            cached=True)
            return answer
        obs.inc("engine.queries")
        obs.inc(f"engine.queries.{query.kind}")
        answer = self._oracle.answer(query)
        self._asked[key] = answer
        if prov.is_enabled():
            prov.record("query", query_kind=query.kind, text=query.text,
                        answer=answer.value)
        return answer

    def _ask_invariant(
        self,
        gamma: Formula,
        interactions: list[Interaction],
        witnesses: list[Formula],
        potential_invariants: list[Formula],
        potential_witnesses: list[Formula],
        store=None,
    ) -> list[Formula]:
        """Ask the CNF clauses of an invariant query.

        Returns the clauses affirmed by the oracle (learned invariants).
        Refuted clauses are appended to ``witnesses``; unanswerable ones
        are recorded as potential invariants/witnesses (Section 5).
        """
        clauses = decompose_stage("invariant", gamma, store=store)
        yes_clauses: list[Formula] = []
        for clause in clauses:
            query = self._renderer.invariant_query(clause)
            answer = self._ask(query)
            interactions.append(Interaction(query, answer))
            if answer is Answer.YES:
                yes_clauses.append(clause)
            elif answer is Answer.NO:
                witnesses.append(neg(clause))
            else:
                potential_invariants.append(clause)
                potential_witnesses.append(neg(clause))
        return yes_clauses

    def _ask_witness(
        self,
        upsilon: Formula,
        interactions: list[Interaction],
        witnesses: list[Formula],
        potential_invariants: list[Formula],
        potential_witnesses: list[Formula],
        store=None,
    ) -> tuple[bool, list[Formula]]:
        """Ask the DNF clauses of a witness query.

        Returns ``(validated, refuted_negations)``: validation succeeds
        the moment a clause is affirmed; negations of refuted clauses are
        learned invariants.
        """
        clauses = decompose_stage("witness", upsilon, store=store)
        refuted: list[Formula] = []
        for clause in clauses:
            query = self._renderer.witness_query(clause)
            answer = self._ask(query)
            interactions.append(Interaction(query, answer))
            if answer is Answer.YES:
                witnesses.append(clause)
                return True, refuted
            if answer is Answer.NO:
                refuted.append(neg(clause))
            else:
                potential_witnesses.append(clause)
                potential_invariants.append(neg(clause))
        return False, refuted


def diagnose_error(analysis: AnalysisResult, oracle: Oracle,
                   config: EngineConfig | None = None,
                   limits: Limits | None = None) -> DiagnosisResult:
    """Run the Figure 6 algorithm on an analysis result."""
    return DiagnosisEngine(analysis, oracle, config, limits=limits).run()
