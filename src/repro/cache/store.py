"""A persistent, content-addressed artifact store.

Every entry is one JSON file at ``root/<format-version>/<stage>/<k[:2]>/
<k>.json``, where ``k`` is a content digest (see
:mod:`repro.logic.digest`) of everything the artifact is a pure function
of.  Properties the rest of the system relies on:

* **versioned keys** — the store format version and the digest scheme
  version are both part of the path, so either can be bumped without
  serving stale artifacts to new code;
* **corruption tolerance** — a truncated, garbled or non-JSON entry
  reads as a *miss* (and is deleted), never as an exception: a cache
  must not be able to break a triage run;
* **concurrency tolerance** — writes are atomic (temp file + rename), so
  the batch driver's forked workers can share one store; duplicate
  writes of the same key are idempotent by construction (same content
  address, same content);
* **LRU eviction** — reads refresh an entry's mtime and eviction drops
  the oldest entries once the store exceeds ``max_entries``, so a
  long-lived cache directory stays bounded.

Counters (hits/misses/puts/evictions/corrupt drops, per stage and
overall) stream into :mod:`repro.obs` as ``cache.store.*`` /
``cache.<stage>.*``, so they travel with the existing telemetry
snapshots across worker processes.  When structured logging is on at
``debug`` level, every get/put additionally emits one ``cache.op``
record carrying the stage, outcome and the caller's trace context —
the per-operation view the aggregate counters can't give.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from .. import obs
from ..obs import logging as olog
from ..logic.digest import DIGEST_VERSION

__all__ = ["CacheStore", "STORE_VERSION"]

#: Store layout version; part of every entry path.
STORE_VERSION = "v1"


class CacheStore:
    """A small on-disk content-addressed store of JSON artifacts."""

    def __init__(self, root: str | os.PathLike,
                 *, max_entries: int = 8_192):
        self.root = Path(root)
        self._base = self.root / f"{STORE_VERSION}-{DIGEST_VERSION}"
        self._base.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._counts: dict[str, dict[str, int]] = {}
        # entry count is maintained incrementally and re-synced from a
        # directory scan whenever eviction runs
        self._entries = sum(1 for _ in self._iter_entries())

    # ------------------------------------------------------------------
    def _path(self, stage: str, key: str) -> Path:
        return self._base / stage / key[:2] / f"{key}.json"

    def _iter_entries(self):
        yield from self._base.glob("*/*/*.json")

    def _count(self, stage: str, event: str,
               key: str | None = None) -> None:
        per = self._counts.setdefault(
            stage, {"hits": 0, "misses": 0, "puts": 0,
                    "evictions": 0, "corrupt": 0})
        per[event] += 1
        short = {"hits": "hit", "misses": "miss", "puts": "put",
                 "evictions": "eviction", "corrupt": "corrupt"}[event]
        obs.inc(f"cache.store.{short}")
        obs.inc(f"cache.{stage}.{short}")
        if olog.is_enabled("debug"):
            olog.debug("cache.op", op=short, stage=stage,
                       key=(key or "")[:12])

    # ------------------------------------------------------------------
    def get(self, stage: str, key: str) -> dict | None:
        """The artifact stored under ``stage/key``, or None.

        Any read problem — missing file, partial write from a crashed
        process, hand-edited garbage — is a miss; undecodable entries
        are deleted so they cannot poison later runs.
        """
        path = self._path(stage, key)
        try:
            data = path.read_bytes()
        except OSError:
            self._count(stage, "misses", key)
            return None
        try:
            artifact = json.loads(data)
            if not isinstance(artifact, dict):
                raise ValueError("artifact is not an object")
        except (ValueError, UnicodeDecodeError):
            self._count(stage, "corrupt", key)
            self._count(stage, "misses", key)
            try:
                path.unlink()
                self._entries = max(0, self._entries - 1)
            except OSError:
                pass
            return None
        self._count(stage, "hits", key)
        try:
            os.utime(path)  # refresh recency for LRU eviction
        except OSError:
            pass
        return artifact

    def put(self, stage: str, key: str, artifact: dict) -> None:
        """Store ``artifact`` under ``stage/key`` (atomic, best-effort).

        A full disk or permission problem is swallowed: failing to cache
        must never fail the computation that produced the artifact.
        """
        path = self._path(stage, key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not path.exists()
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(artifact, handle, separators=(",", ":"))
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self._count(stage, "puts", key)
        if fresh:
            self._entries += 1
            if self._entries > self.max_entries:
                self._evict()

    @staticmethod
    def _mtime(path: Path) -> float:
        """Sort key tolerant of a concurrent unlink between the scan and
        the stat (another store sharing this root may be evicting too)."""
        try:
            return path.stat().st_mtime
        except OSError:
            return 0.0

    def _evict(self) -> None:
        """Drop oldest entries down to 90% of capacity (re-scans, so the
        incremental count is also corrected for concurrent writers).

        Safe under shared roots: before unlinking, each victim's mtime
        is re-checked against the scan start — an entry a peer process
        wrote or refreshed *after* this scan began is spared, so two
        stores evicting concurrently can never drop each other's fresh
        writes (the invariant ``tests/test_cache.py`` exercises under
        threads)."""
        scan_start = time.time()
        entries = sorted(self._iter_entries(), key=self._mtime)
        self._entries = len(entries)
        target = max(1, (self.max_entries * 9) // 10)
        for path in entries[: max(0, self._entries - target)]:
            stage = path.parent.parent.name
            try:
                if path.stat().st_mtime >= scan_start:
                    continue  # freshly (re)written by a peer: spare it
                path.unlink()
            except OSError:
                continue
            self._entries -= 1
            self._count(stage, "evictions")

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counters per stage plus totals and the store location."""
        totals = {"hits": 0, "misses": 0, "puts": 0,
                  "evictions": 0, "corrupt": 0}
        for per in self._counts.values():
            for name in totals:
                totals[name] += per[name]
        return {
            "path": str(self.root),
            "entries": self._entries,
            "max_entries": self.max_entries,
            "stages": {s: dict(c) for s, c in sorted(self._counts.items())},
            **totals,
        }

    def clear(self) -> None:
        """Delete every entry (the layout directories stay)."""
        for path in list(self._iter_entries()):
            try:
                path.unlink()
            except OSError:
                pass
        self._entries = 0
