"""Persistent content-addressed caching for the staged triage pipeline.

PR 1's speedups — hash-consing, QE memo tables, incremental SMT — are
all process-lifetime and keyed by in-process object identity or salted
Python hashes, so nothing survives a restart and nothing is shared
between the batch driver's workers beyond fork-time state.  This package
converts those in-process wins into cross-run, cross-worker wins:

* :class:`CacheStore` (:mod:`repro.cache.store`) is a small on-disk
  store mapping ``stage/content-digest`` to a JSON artifact, with
  versioned keys, LRU eviction and corruption-tolerant reads;
* the *active store* (:func:`use_store` / :func:`current_store`) is how
  the solver stack finds it: the QE elimination and clause caches and
  the SMT verdict cache consult the active store on a memory miss, and
  the diagnosis engine's stage functions (:mod:`repro.diagnosis.stages`)
  persist whole stage artifacts through it.

Opening a store is idempotent per path (:func:`open_store` memoizes), so
the batch driver and its forked workers can all "open" the same
directory cheaply.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

from .store import STORE_VERSION, CacheStore

__all__ = [
    "CacheStore",
    "STORE_VERSION",
    "current_store",
    "open_store",
    "set_store",
    "use_store",
    "use_store_here",
]

_active: CacheStore | None = None
_opened: dict[str, CacheStore] = {}

# Thread-local store overrides.  ``use_store`` swaps the process-global
# slot, which is not reentrant across threads: two concurrent ``repro
# serve`` worker threads interleaving their enter/exit would restore
# each other's stores into the global.  Thread-scoped attempts therefore
# bind via ``use_store_here``; the install counter keeps the ubiquitous
# ``current_store`` call a global load plus a falsy check while no
# thread-local binding is live.
_tl = threading.local()
_tl_installs = 0
_tl_lock = threading.Lock()


def open_store(root: str | os.PathLike,
               *, max_entries: int = 8_192) -> CacheStore:
    """Open (and memoize per path) the store rooted at ``root``."""
    key = os.path.abspath(os.fspath(root))
    store = _opened.get(key)
    if store is None or store.max_entries != max_entries:
        store = CacheStore(key, max_entries=max_entries)
        _opened[key] = store
    return store


def current_store() -> CacheStore | None:
    """The active store (None when caching is off).  A thread-local
    :func:`use_store_here` binding shadows the process-wide slot."""
    if _tl_installs:
        store = getattr(_tl, "store", None)
        if store is not None:
            return store
    return _active


def set_store(store: CacheStore | None) -> CacheStore | None:
    """Install ``store`` as the active store; returns the previous one."""
    global _active
    previous = _active
    _active = store
    return previous


@contextmanager
def use_store(store: CacheStore | None) -> Iterator[CacheStore | None]:
    """Scope the active store to a ``with`` block (process-wide)."""
    previous = set_store(store)
    try:
        yield store
    finally:
        set_store(previous)


@contextmanager
def use_store_here(store: CacheStore | None
                   ) -> Iterator[CacheStore | None]:
    """Scope the active store to a ``with`` block on *this thread* only.

    Other threads keep seeing the process-global store.  Used wherever
    a triage attempt runs on a worker thread sharing its process with
    concurrent attempts (``repro serve``, the solver portfolio's
    strategy threads): the global slot of :func:`use_store` is not
    reentrant across threads.  Binding ``None`` does not mask the
    global — it is a no-op scope.
    """
    global _tl_installs
    previous = getattr(_tl, "store", None)
    with _tl_lock:
        _tl_installs += 1
    _tl.store = store
    try:
        yield store
    finally:
        _tl.store = previous
        with _tl_lock:
            _tl_installs -= 1
