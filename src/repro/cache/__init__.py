"""Persistent content-addressed caching for the staged triage pipeline.

PR 1's speedups — hash-consing, QE memo tables, incremental SMT — are
all process-lifetime and keyed by in-process object identity or salted
Python hashes, so nothing survives a restart and nothing is shared
between the batch driver's workers beyond fork-time state.  This package
converts those in-process wins into cross-run, cross-worker wins:

* :class:`CacheStore` (:mod:`repro.cache.store`) is a small on-disk
  store mapping ``stage/content-digest`` to a JSON artifact, with
  versioned keys, LRU eviction and corruption-tolerant reads;
* the *active store* (:func:`use_store` / :func:`current_store`) is how
  the solver stack finds it: the QE elimination and clause caches and
  the SMT verdict cache consult the active store on a memory miss, and
  the diagnosis engine's stage functions (:mod:`repro.diagnosis.stages`)
  persist whole stage artifacts through it.

Opening a store is idempotent per path (:func:`open_store` memoizes), so
the batch driver and its forked workers can all "open" the same
directory cheaply.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from .store import STORE_VERSION, CacheStore

__all__ = [
    "CacheStore",
    "STORE_VERSION",
    "current_store",
    "open_store",
    "set_store",
    "use_store",
]

_active: CacheStore | None = None
_opened: dict[str, CacheStore] = {}


def open_store(root: str | os.PathLike,
               *, max_entries: int = 8_192) -> CacheStore:
    """Open (and memoize per path) the store rooted at ``root``."""
    key = os.path.abspath(os.fspath(root))
    store = _opened.get(key)
    if store is None or store.max_entries != max_entries:
        store = CacheStore(key, max_entries=max_entries)
        _opened[key] = store
    return store


def current_store() -> CacheStore | None:
    """The process-wide active store (None when caching is off)."""
    return _active


def set_store(store: CacheStore | None) -> CacheStore | None:
    """Install ``store`` as the active store; returns the previous one."""
    global _active
    previous = _active
    _active = store
    return previous


@contextmanager
def use_store(store: CacheStore | None) -> Iterator[CacheStore | None]:
    """Scope the active store to a ``with`` block."""
    previous = set_store(store)
    try:
        yield store
    finally:
        set_store(previous)
