"""Hash-consing (interning) support for terms and formulas.

Every term and formula node is interned at construction: structurally
equal nodes built anywhere in the process are the *same* object.  This
makes equality an identity check on the hot paths (memo tables in the
SMT encoder, DNF clause sets, QE caches), lets every node carry its hash
as a precomputed field, and deduplicates the persistent caches that the
solver stack keeps across calls.

Interning is an optimization, never a semantic requirement: structural
``__eq__``/``__hash__`` remain correct for nodes that escape the tables
(table overflow, unpickled objects from other processes), so the tables
may be capped or cleared at any time.

Each node class registers its table here so that operational tooling —
the batch driver, the benchmarks, long-running services — can observe
and bound memory:

* :func:`intern_stats` returns the live entry count per table;
* :func:`clear_intern_tables` empties every table (existing nodes stay
  valid; future constructions simply re-intern).
"""

from __future__ import annotations

from typing import Dict

# Per-table cap: beyond this many distinct nodes of one class, new nodes
# are constructed without being recorded (correctness is unaffected).
INTERN_LIMIT = 1_000_000

_TABLES: Dict[str, dict] = {}


def register_table(name: str, table: dict) -> dict:
    """Register a class's intern table for stats/clearing; returns it."""
    _TABLES[name] = table
    return table


def intern_stats() -> dict[str, int]:
    """Live entry count of every intern table, keyed by class name."""
    return {name: len(table) for name, table in sorted(_TABLES.items())}


def clear_intern_tables() -> None:
    """Drop all interned nodes (a memory valve for long-running processes)."""
    for table in _TABLES.values():
        table.clear()
