"""Negation, conjunctive and disjunctive normal forms.

NNF is required by both the Omega-test frontend and Cooper quantifier
elimination.  CNF/DNF (by distribution — formula sizes in this system are
small) drive the query decomposition of Section 4.4: invariant queries
distribute over CNF clauses, witness queries over DNF clauses.
"""

from __future__ import annotations

from typing import Iterable

from .intern import register_table
from .formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Dvd,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    conj,
    disj,
    exists,
    forall,
    neg,
)


# Cross-call result caches.  Both conversions are pure functions of the
# (hash-consed) input formula, and the abduction loop converts the same
# guard formulas round after round.  Registered as intern tables so the
# memory valve (:func:`repro.logic.intern.clear_intern_tables`) clears
# them alongside the node tables.
_NNF_CACHE_LIMIT = 1 << 15
_nnf_cache: dict[Formula, Formula] = register_table("nnf()", {})
_DNF_CACHE_LIMIT = 1 << 13
_dnf_cache: dict = register_table("dnf_clauses()", {})


def nnf(phi: Formula) -> Formula:
    """Negation normal form: negations pushed onto atoms and eliminated.

    Works on quantified formulas too (negation flips quantifiers).  Atoms
    absorb their negations (the atom language is closed under negation),
    so the result contains no ``Not`` nodes at all.  Memoized over the
    shared-subformula DAG: formulas built by the symbolic analysis share
    guard subtrees heavily, and a structural recursion would revisit them
    exponentially often.
    """
    cached = _nnf_cache.get(phi)
    if cached is None:
        cached = _nnf(phi, {})
        if len(_nnf_cache) < _NNF_CACHE_LIMIT:
            _nnf_cache[phi] = cached
    return cached


def _nnf(phi: Formula, memo: dict[Formula, Formula]) -> Formula:
    cached = memo.get(phi)
    if cached is not None:
        return cached
    result = _nnf_raw(phi, memo)
    memo[phi] = result
    return result


def _nnf_raw(phi: Formula, memo: dict[Formula, Formula]) -> Formula:
    if isinstance(phi, (Atom, Dvd)) or phi is TRUE or phi is FALSE:
        return phi
    if isinstance(phi, And):
        return conj(*(_nnf(a, memo) for a in phi.args))
    if isinstance(phi, Or):
        return disj(*(_nnf(a, memo) for a in phi.args))
    if isinstance(phi, Exists):
        return exists(phi.variables, _nnf(phi.body, memo))
    if isinstance(phi, Forall):
        return forall(phi.variables, _nnf(phi.body, memo))
    if isinstance(phi, Not):
        inner = phi.arg
        if isinstance(inner, (Atom, Dvd)):
            return inner.negated()
        if inner is TRUE:
            return FALSE
        if inner is FALSE:
            return TRUE
        if isinstance(inner, Not):
            return _nnf(inner.arg, memo)
        if isinstance(inner, And):
            return disj(*(_nnf(neg(a), memo) for a in inner.args))
        if isinstance(inner, Or):
            return conj(*(_nnf(neg(a), memo) for a in inner.args))
        if isinstance(inner, Exists):
            return forall(inner.variables, _nnf(neg(inner.body), memo))
        if isinstance(inner, Forall):
            return exists(inner.variables, _nnf(neg(inner.body), memo))
    raise TypeError(f"unexpected formula node {phi!r}")


Clause = tuple[Formula, ...]


def _literals(phi: Formula) -> bool:
    return isinstance(phi, (Atom, Dvd))


def dnf_clauses(phi: Formula, *, limit: int = 200_000) -> list[list[Formula]]:
    """Disjunctive normal form as a list of conjunctive clauses of literals.

    ``phi`` must be quantifier-free; it is first converted to NNF.  Trivial
    clauses are dropped, and clauses containing complementary literals are
    removed.  ``limit`` guards against exponential blowup.
    """
    key = (phi, limit)
    cached = _dnf_cache.get(key)
    if cached is None:
        budget = [limit]
        cached = tuple(
            tuple(clause)
            for clause, _negs in _dnf(nnf(phi), budget, {})
        )
        if len(_dnf_cache) < _DNF_CACHE_LIMIT:
            _dnf_cache[key] = cached
    return [list(clause) for clause in cached]


# a clause paired with the set of negations of its literals, so the
# contradiction test during an And-merge is one frozenset.isdisjoint
# call instead of a scan of the merged clause
_Clause = tuple[frozenset[Formula], frozenset[Formula]]


def _dnf(phi: Formula, budget: list[int],
         memo: dict[Formula, list[_Clause]]) -> list[_Clause]:
    """DNF over the shared-subformula DAG, memoized per top-level call.

    Guard formulas from the symbolic analysis share subtrees heavily; a
    plain structural recursion re-walks each shared node once per path
    to it (30x+ on the Figure-7 workloads).  The memo makes each node
    convert exactly once.  Clauses carry their negation sets: both sides
    of a merge are contradiction-free by induction, so the merged clause
    is contradictory iff a literal of one side appears negated in the
    other — literal negation is an involution on hash-consed atoms, so
    checking one direction (``left`` against ``right``'s negations)
    covers both.
    """
    cached = memo.get(phi)
    if cached is not None:
        return cached
    result = _dnf_raw(phi, budget, memo)
    memo[phi] = result
    return result


def _dnf_raw(phi: Formula, budget: list[int],
             memo: dict[Formula, list[_Clause]]) -> list[_Clause]:
    if phi is TRUE:
        return [(frozenset(), frozenset())]
    if phi is FALSE:
        return []
    if _literals(phi):
        assert isinstance(phi, (Atom, Dvd))
        return [(frozenset([phi]), frozenset([phi.negated()]))]
    if isinstance(phi, Or):
        result: list[_Clause] = []
        seen: set[frozenset[Formula]] = set()
        for arg in phi.args:
            for pair in _dnf(arg, budget, memo):
                if pair[0] not in seen:
                    seen.add(pair[0])
                    result.append(pair)
        return result
    if isinstance(phi, And):
        acc: list[_Clause] = [(frozenset(), frozenset())]
        for arg in phi.args:
            sub = _dnf(arg, budget, memo)
            merged: list[_Clause] = []
            seen = set()
            for left, left_negs in acc:
                for right, right_negs in sub:
                    budget[0] -= 1
                    if budget[0] < 0:
                        raise MemoryError("DNF conversion exceeded size limit")
                    if not left.isdisjoint(right_negs):
                        continue  # complementary pair: drop the clause
                    clause = left | right
                    if clause not in seen:
                        seen.add(clause)
                        merged.append((clause, left_negs | right_negs))
            acc = merged
            if not acc:
                return []
        return acc
    raise TypeError(f"dnf: unexpected node {phi!r} (quantifier-free input?)")


def cnf_clauses(phi: Formula, *, limit: int = 200_000) -> list[list[Formula]]:
    """Conjunctive normal form as a list of disjunctive clauses of literals.

    Implemented by duality: CNF(phi) = negate clauses of DNF(not phi).
    """
    negated = dnf_clauses(neg(phi), limit=limit)
    clauses: list[list[Formula]] = []
    for clause in negated:
        lits = []
        for lit in clause:
            assert isinstance(lit, (Atom, Dvd))
            lits.append(lit.negated())
        clauses.append(lits)
    return clauses


def from_dnf(clauses: Iterable[Iterable[Formula]]) -> Formula:
    return disj(*(conj(*clause) for clause in clauses))


def from_cnf(clauses: Iterable[Iterable[Formula]]) -> Formula:
    return conj(*(disj(*clause) for clause in clauses))
