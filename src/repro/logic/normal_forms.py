"""Negation, conjunctive and disjunctive normal forms.

NNF is required by both the Omega-test frontend and Cooper quantifier
elimination.  CNF/DNF (by distribution — formula sizes in this system are
small) drive the query decomposition of Section 4.4: invariant queries
distribute over CNF clauses, witness queries over DNF clauses.
"""

from __future__ import annotations

from typing import Iterable

from .formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Dvd,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    conj,
    disj,
    exists,
    forall,
    neg,
)


def nnf(phi: Formula) -> Formula:
    """Negation normal form: negations pushed onto atoms and eliminated.

    Works on quantified formulas too (negation flips quantifiers).  Atoms
    absorb their negations (the atom language is closed under negation),
    so the result contains no ``Not`` nodes at all.  Memoized over the
    shared-subformula DAG: formulas built by the symbolic analysis share
    guard subtrees heavily, and a structural recursion would revisit them
    exponentially often.
    """
    return _nnf(phi, {})


def _nnf(phi: Formula, memo: dict[Formula, Formula]) -> Formula:
    cached = memo.get(phi)
    if cached is not None:
        return cached
    result = _nnf_raw(phi, memo)
    memo[phi] = result
    return result


def _nnf_raw(phi: Formula, memo: dict[Formula, Formula]) -> Formula:
    if isinstance(phi, (Atom, Dvd)) or phi.is_true or phi.is_false:
        return phi
    if isinstance(phi, And):
        return conj(*(_nnf(a, memo) for a in phi.args))
    if isinstance(phi, Or):
        return disj(*(_nnf(a, memo) for a in phi.args))
    if isinstance(phi, Exists):
        return exists(phi.variables, _nnf(phi.body, memo))
    if isinstance(phi, Forall):
        return forall(phi.variables, _nnf(phi.body, memo))
    if isinstance(phi, Not):
        inner = phi.arg
        if isinstance(inner, (Atom, Dvd)):
            return inner.negated()
        if inner.is_true:
            return FALSE
        if inner.is_false:
            return TRUE
        if isinstance(inner, Not):
            return _nnf(inner.arg, memo)
        if isinstance(inner, And):
            return disj(*(_nnf(neg(a), memo) for a in inner.args))
        if isinstance(inner, Or):
            return conj(*(_nnf(neg(a), memo) for a in inner.args))
        if isinstance(inner, Exists):
            return forall(inner.variables, _nnf(neg(inner.body), memo))
        if isinstance(inner, Forall):
            return exists(inner.variables, _nnf(neg(inner.body), memo))
    raise TypeError(f"unexpected formula node {phi!r}")


Clause = tuple[Formula, ...]


def _literals(phi: Formula) -> bool:
    return isinstance(phi, (Atom, Dvd))


def dnf_clauses(phi: Formula, *, limit: int = 200_000) -> list[list[Formula]]:
    """Disjunctive normal form as a list of conjunctive clauses of literals.

    ``phi`` must be quantifier-free; it is first converted to NNF.  Trivial
    clauses are dropped, and clauses containing complementary literals are
    removed.  ``limit`` guards against exponential blowup.
    """
    phi = nnf(phi)
    budget = [limit]
    clauses = _dnf(phi, budget)
    return [list(clause) for clause in clauses]


def _dnf(phi: Formula, budget: list[int]) -> list[frozenset[Formula]]:
    if phi.is_true:
        return [frozenset()]
    if phi.is_false:
        return []
    if _literals(phi):
        return [frozenset([phi])]
    if isinstance(phi, Or):
        result: list[frozenset[Formula]] = []
        seen: set[frozenset[Formula]] = set()
        for arg in phi.args:
            for clause in _dnf(arg, budget):
                if clause not in seen:
                    seen.add(clause)
                    result.append(clause)
        return result
    if isinstance(phi, And):
        acc: list[frozenset[Formula]] = [frozenset()]
        for arg in phi.args:
            sub = _dnf(arg, budget)
            merged: list[frozenset[Formula]] = []
            seen: set[frozenset[Formula]] = set()
            for left in acc:
                for right in sub:
                    budget[0] -= 1
                    if budget[0] < 0:
                        raise MemoryError("DNF conversion exceeded size limit")
                    clause = left | right
                    if _clause_contradictory(clause):
                        continue
                    if clause not in seen:
                        seen.add(clause)
                        merged.append(clause)
            acc = merged
            if not acc:
                return []
        return acc
    raise TypeError(f"dnf: unexpected node {phi!r} (quantifier-free input?)")


def cnf_clauses(phi: Formula, *, limit: int = 200_000) -> list[list[Formula]]:
    """Conjunctive normal form as a list of disjunctive clauses of literals.

    Implemented by duality: CNF(phi) = negate clauses of DNF(not phi).
    """
    negated = dnf_clauses(neg(phi), limit=limit)
    clauses: list[list[Formula]] = []
    for clause in negated:
        lits = []
        for lit in clause:
            assert isinstance(lit, (Atom, Dvd))
            lits.append(lit.negated())
        clauses.append(lits)
    return clauses


def _clause_contradictory(clause: frozenset[Formula]) -> bool:
    for lit in clause:
        if isinstance(lit, (Atom, Dvd)) and lit.negated() in clause:
            return True
    return False


def from_dnf(clauses: Iterable[Iterable[Formula]]) -> Formula:
    return disj(*(conj(*clause) for clause in clauses))


def from_cnf(clauses: Iterable[Iterable[Formula]]) -> Formula:
    return conj(*(disj(*clause) for clause in clauses))
