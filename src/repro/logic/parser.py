"""A small concrete syntax for formulas, used by tests, examples and the CLI.

Grammar (precedence low to high)::

    formula  := quant | iff
    quant    := ("forall" | "exists") ident ("," ident)* "." formula
    iff      := impl ("<->" impl)*
    impl     := or ("->" or)*        (right associative)
    or       := and ("||" and)*
    and      := unary ("&&" unary)*
    unary    := "!" unary | "(" formula ")" | cmp | "true" | "false"
               | int "dvd" term
    cmp      := term (("<=" | "<" | ">=" | ">" | "==" | "=" | "!=") term)+
    term     := product (("+" | "-") product)*
    product  := int "*" atomT | atomT | "-" product | int
    atomT    := ident | "(" term ")"

Chained comparisons (``0 <= x < n``) expand to conjunctions.  Variable
kinds default to PROGRAM; a ``kinds`` mapping can override (the analysis
itself builds formulas programmatically and never round-trips through this
parser).
"""

from __future__ import annotations

import re
from typing import Mapping

from .formulas import (
    FALSE,
    TRUE,
    Formula,
    conj,
    disj,
    dvd,
    eq,
    exists,
    forall,
    ge,
    gt,
    implies,
    le,
    lt,
    ne,
    neg,
)
from .terms import LinTerm, Var, VarKind

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<int>\d+)|(?P<ident>[A-Za-z_$][A-Za-z_0-9$@]*)"
    r"|(?P<op><->|->|<=|>=|==|!=|\|\||&&|[-+*().,<>=!|]))"
)

_KEYWORDS = {"true", "false", "forall", "exists", "dvd"}


class FormulaParseError(ValueError):
    """Raised on malformed formula text, with position information."""

    def __init__(self, message: str, text: str, pos: int):
        snippet = text[max(0, pos - 20):pos + 20]
        super().__init__(f"{message} at position {pos}: ...{snippet!r}...")
        self.pos = pos


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.tokens: list[tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None or match.end() == pos:
                if text[pos:].strip():
                    raise FormulaParseError("unexpected character", text, pos)
                break
            if match.group("int") is not None:
                self.tokens.append(("int", match.group("int"), match.start()))
            elif match.group("ident") is not None:
                word = match.group("ident")
                kind = "kw" if word in _KEYWORDS else "ident"
                self.tokens.append((kind, word, match.start()))
            else:
                self.tokens.append(("op", match.group("op"), match.start()))
            pos = match.end()
        self.index = 0

    def peek(self) -> tuple[str, str, int]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return ("eof", "", len(self.text))

    def next(self) -> tuple[str, str, int]:
        token = self.peek()
        self.index += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token[0] == kind and (value is None or token[1] == value):
            self.index += 1
            return True
        return False

    def expect(self, kind: str, value: str | None = None) -> tuple[str, str, int]:
        token = self.peek()
        if token[0] != kind or (value is not None and token[1] != value):
            want = value if value is not None else kind
            raise FormulaParseError(
                f"expected {want!r}, found {token[1]!r}", self.text, token[2]
            )
        return self.next()


class _Parser:
    def __init__(self, text: str, kinds: Mapping[str, VarKind]):
        self.tokens = _Tokens(text)
        self.kinds = kinds
        self.vars: dict[str, Var] = {}

    def variable(self, name: str) -> Var:
        if name not in self.vars:
            kind = self.kinds.get(name, VarKind.PROGRAM)
            self.vars[name] = Var(name, kind)
        return self.vars[name]

    # formula levels ------------------------------------------------------
    def formula(self) -> Formula:
        token = self.tokens.peek()
        if token[0] == "kw" and token[1] in ("forall", "exists"):
            self.tokens.next()
            names = [self.tokens.expect("ident")[1]]
            while self.tokens.accept("op", ","):
                names.append(self.tokens.expect("ident")[1])
            self.tokens.expect("op", ".")
            body = self.formula()
            binder = forall if token[1] == "forall" else exists
            return binder([self.variable(n) for n in names], body)
        return self.iff()

    def iff(self) -> Formula:
        left = self.impl()
        while self.tokens.accept("op", "<->"):
            right = self.impl()
            left = left.iff(right)
        return left

    def impl(self) -> Formula:
        left = self.disjunction()
        if self.tokens.accept("op", "->"):
            right = self.impl()
            return implies(left, right)
        return left

    def disjunction(self) -> Formula:
        parts = [self.conjunction()]
        while self.tokens.accept("op", "||"):
            parts.append(self.conjunction())
        return disj(*parts)

    def conjunction(self) -> Formula:
        parts = [self.unary()]
        while self.tokens.accept("op", "&&"):
            parts.append(self.unary())
        return conj(*parts)

    def unary(self) -> Formula:
        token = self.tokens.peek()
        if token == ("op", "!", token[2]):
            self.tokens.next()
            return neg(self.unary())
        if token[0] == "kw" and token[1] == "true":
            self.tokens.next()
            return TRUE
        if token[0] == "kw" and token[1] == "false":
            self.tokens.next()
            return FALSE
        if token[0] == "op" and token[1] == "(":
            # could be a parenthesized formula or a parenthesized term;
            # try formula first by lookahead on what follows the match.
            save = self.tokens.index
            try:
                self.tokens.next()
                inner = self.formula()
                self.tokens.expect("op", ")")
                # if a comparison operator follows, this was a term paren
                follow = self.tokens.peek()
                if follow[0] == "op" and follow[1] in _CMP_OPS:
                    raise FormulaParseError("term context", self.tokens.text,
                                            follow[2])
                return inner
            except FormulaParseError:
                self.tokens.index = save
                return self.comparison()
        if token[0] == "int":
            # either "d dvd term" or the start of a comparison
            save = self.tokens.index
            self.tokens.next()
            if self.tokens.accept("kw", "dvd"):
                term = self.term()
                return dvd(int(token[1]), term)
            self.tokens.index = save
            return self.comparison()
        return self.comparison()

    # comparisons and terms -------------------------------------------------
    def comparison(self) -> Formula:
        left = self.term()
        token = self.tokens.peek()
        if not (token[0] == "op" and token[1] in _CMP_OPS):
            raise FormulaParseError(
                "expected comparison operator", self.tokens.text, token[2]
            )
        parts: list[Formula] = []
        while True:
            token = self.tokens.peek()
            if not (token[0] == "op" and token[1] in _CMP_OPS):
                break
            self.tokens.next()
            right = self.term()
            parts.append(_CMP_OPS[token[1]](left, right))
            left = right
        return conj(*parts)

    def term(self) -> LinTerm:
        left = self.product()
        while True:
            if self.tokens.accept("op", "+"):
                left = left + self.product()
            elif self.tokens.accept("op", "-"):
                left = left - self.product()
            else:
                return left

    def product(self) -> LinTerm:
        token = self.tokens.peek()
        if token[0] == "op" and token[1] == "-":
            self.tokens.next()
            return -self.product()
        if token[0] == "int":
            self.tokens.next()
            value = int(token[1])
            if self.tokens.accept("op", "*"):
                return self.term_atom().scale(value)
            return LinTerm.constant(value)
        factor = self.term_atom()
        if self.tokens.accept("op", "*"):
            scale_token = self.tokens.expect("int")
            return factor.scale(int(scale_token[1]))
        return factor

    def term_atom(self) -> LinTerm:
        token = self.tokens.peek()
        if token[0] == "ident":
            self.tokens.next()
            return LinTerm.var(self.variable(token[1]))
        if token[0] == "op" and token[1] == "(":
            self.tokens.next()
            inner = self.term()
            self.tokens.expect("op", ")")
            return inner
        if token[0] == "int":
            self.tokens.next()
            return LinTerm.constant(int(token[1]))
        raise FormulaParseError("expected term", self.tokens.text, token[2])


_CMP_OPS = {
    "<=": le,
    "<": lt,
    ">=": ge,
    ">": gt,
    "==": eq,
    "=": eq,
    "!=": ne,
}


def parse_formula(text: str,
                  kinds: Mapping[str, VarKind] | None = None) -> Formula:
    """Parse ``text`` into a formula.

    ``kinds`` maps variable names to their :class:`VarKind`; unlisted
    variables default to ``PROGRAM``.
    """
    parser = _Parser(text, kinds or {})
    result = parser.formula()
    trailing = parser.tokens.peek()
    if trailing[0] != "eof":
        raise FormulaParseError(
            f"trailing input {trailing[1]!r}", text, trailing[2]
        )
    return result


def parse_term(text: str,
               kinds: Mapping[str, VarKind] | None = None) -> LinTerm:
    """Parse a bare linear term."""
    parser = _Parser(text, kinds or {})
    result = parser.term()
    trailing = parser.tokens.peek()
    if trailing[0] != "eof":
        raise FormulaParseError(
            f"trailing input {trailing[1]!r}", text, trailing[2]
        )
    return result
