"""Linear integer arithmetic terms and formulas.

This package is the logical foundation of the reproduction: immutable
linear terms, normalized Presburger formulas, normal forms, and a small
concrete syntax.  Decision procedures live in :mod:`repro.lia`,
:mod:`repro.smt` and :mod:`repro.qe`.
"""

from .formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Dvd,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Rel,
    atom,
    conj,
    disj,
    dvd,
    eq,
    exists,
    forall,
    ge,
    gt,
    implies,
    is_quantifier_free,
    le,
    lt,
    map_atoms,
    ne,
    neg,
    rename_vars,
    unique_atoms,
)
from .digest import DIGEST_VERSION, digest, digest_many, digest_text
from .normal_forms import cnf_clauses, dnf_clauses, from_cnf, from_dnf, nnf
from .serialize import (
    formula_from_obj,
    formula_to_obj,
    term_from_obj,
    term_to_obj,
)
from .parser import FormulaParseError, parse_formula, parse_term
from .printer import term_to_source, to_source
from .smtlib import to_smtlib
from .terms import (
    LinTerm,
    Var,
    VarKind,
    VarSupply,
    abstraction_var,
    gcd_all,
    input_var,
    lcm,
    lcm_all,
)

__all__ = [
    "FALSE", "TRUE", "And", "Atom", "Dvd", "Exists", "Forall", "Formula",
    "Not", "Or", "Rel", "atom", "conj", "disj", "dvd", "eq", "exists",
    "forall", "ge", "gt", "implies", "is_quantifier_free", "le", "lt",
    "map_atoms", "ne", "neg", "rename_vars", "unique_atoms",
    "cnf_clauses", "dnf_clauses", "from_cnf", "from_dnf", "nnf",
    "DIGEST_VERSION", "digest", "digest_many", "digest_text",
    "formula_from_obj", "formula_to_obj", "term_from_obj", "term_to_obj",
    "FormulaParseError", "parse_formula", "parse_term",
    "term_to_source", "to_source", "to_smtlib",
    "LinTerm", "Var", "VarKind", "VarSupply", "abstraction_var", "gcd_all",
    "input_var", "lcm", "lcm_all",
]
