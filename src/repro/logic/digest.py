"""Stable content digests for terms and formulas.

Hash-consing (:mod:`repro.logic.intern`) gives every node an in-process
identity and a cached *Python* hash — but Python hashes are salted per
process (``PYTHONHASHSEED``) and identity dies at the process boundary,
so neither can key anything persistent.  This module gives every
:class:`~repro.logic.terms.Var`, :class:`~repro.logic.terms.LinTerm` and
:class:`~repro.logic.formulas.Formula` a *content digest*: a short hex
string computed purely from the node's structure, so it is

* independent of intern-table state (clearing the tables, or rebuilding
  a structurally equal node from scratch, yields the same digest);
* valid across processes and pickling (no Python ``hash()`` anywhere in
  its computation); and
* cached on the node (the ``_dg`` slot), so the amortized cost is one
  BLAKE2b call per *new* node — children's digests are already cached.

Digests are the keys of the persistent caches: the on-disk
content-addressed store (:mod:`repro.cache`), the QE elimination memo
(:mod:`repro.qe.cooper`) and the SMT verdict cache
(:mod:`repro.smt.solver`).  :data:`DIGEST_VERSION` is folded into every
digest so a change to the digest scheme (or to node semantics) can
invalidate every derived cache at once.
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Iterable

from .formulas import (
    And,
    Atom,
    Dvd,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    _FalseFormula,
    _TrueFormula,
)
from .terms import LinTerm, Var

__all__ = ["DIGEST_VERSION", "digest", "digest_many", "digest_text"]

#: Bump to invalidate every digest-keyed cache (on-disk stores included).
DIGEST_VERSION = "dg1"

_SIZE = 16  # 128-bit digests: collision-safe for any realistic workload


def _hash(*parts: str) -> str:
    h = blake2b(digest_size=_SIZE)
    h.update(DIGEST_VERSION.encode())
    for part in parts:
        h.update(b"\x00")
        h.update(part.encode())
    return h.hexdigest()


def digest_text(text: str) -> str:
    """Digest of raw text (program sources, config fingerprints)."""
    return _hash("text", text)


def digest_many(*parts: "str | Var | LinTerm | Formula") -> str:
    """One digest over a heterogeneous sequence of nodes and strings.

    The combination is order-sensitive and unambiguous (each part is a
    fixed-size digest), so composite cache keys — ``(stage, I, phi,
    witnesses...)`` — are themselves stable content addresses.
    """
    return _hash("many", *(p if isinstance(p, str) else digest(p)
                           for p in parts))


# Digests of the two singletons, which have no ``_dg`` slot.
_TRUE_DG = _hash("true")
_FALSE_DG = _hash("false")


def digest(node: "Var | LinTerm | Formula") -> str:
    """The content digest of a variable, term or formula node."""
    if isinstance(node, _TrueFormula):
        return _TRUE_DG
    if isinstance(node, _FalseFormula):
        return _FALSE_DG
    cached = getattr(node, "_dg", None)
    if cached is not None:
        return cached
    d = _compute(node)
    object.__setattr__(node, "_dg", d)
    return d


def _compute(node: "Var | LinTerm | Formula") -> str:
    if isinstance(node, Var):
        return _hash("var", node.name, node.kind.value)
    if isinstance(node, LinTerm):
        parts: list[str] = ["term", str(node.const)]
        for v, c in node.coeffs:
            parts.append(digest(v))
            parts.append(str(c))
        return _hash(*parts)
    if isinstance(node, Atom):
        return _hash("atom", node.rel.value, digest(node.term))
    if isinstance(node, Dvd):
        return _hash("dvd", str(node.divisor),
                     "1" if node.negated_flag else "0", digest(node.term))
    if isinstance(node, Not):
        return _hash("not", digest(node.arg))
    if isinstance(node, (And, Or)):
        tag = "and" if isinstance(node, And) else "or"
        return _hash(tag, *(digest(a) for a in node.args))
    if isinstance(node, (Exists, Forall)):
        tag = "exists" if isinstance(node, Exists) else "forall"
        return _hash(tag, *(digest(v) for v in node.variables),
                     digest(node.body))
    raise TypeError(f"cannot digest {node!r}")
