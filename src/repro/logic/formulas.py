"""Formulas of linear integer arithmetic (Presburger arithmetic).

The formula language is the paper's constraint language — boolean
combinations of linear comparisons over integers — extended with the
divisibility atoms that Cooper's quantifier-elimination procedure
introduces, and with quantifiers (needed transiently by Lemmas 3 and 5).

Atoms are aggressively normalized at construction time:

* every comparison becomes ``t <= 0``, ``t = 0`` or ``t != 0`` for a linear
  term ``t`` (strict comparisons are integer-tightened: ``t < 0`` becomes
  ``t + 1 <= 0``);
* coefficients are divided by their gcd, with sound rounding of the
  constant (``2x - 3 <= 0`` becomes ``x - 1 <= 0`` over the integers);
* ground atoms fold to ``TRUE`` / ``FALSE``.

Connectives are n-ary and flattened; duplicate and trivial operands are
removed.  The AST is immutable and hashable so formulas can live in sets.

Every node is hash-consed (see :mod:`repro.logic.intern`): structurally
equal formulas are the same object, equality is usually an identity
check, ``__hash__`` is a precomputed field, and each atom caches its
negation — the three operations that dominate the solver stack.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, ClassVar, Iterator, Mapping, Sequence

from .intern import INTERN_LIMIT, register_table
from .terms import LinTerm, Var, gcd_all


class Rel(Enum):
    """Normalized atom relations."""

    LE = "<="   # t <= 0
    EQ = "="    # t = 0
    NE = "!="   # t != 0


def _floor_div(a: int, b: int) -> int:
    """Floor division that matches mathematical floor for any signs."""
    return a // b  # Python's // floors


class Formula:
    """Base class for all formula nodes."""

    __slots__ = ()

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    # -- structural queries -------------------------------------------------
    def free_vars(self) -> frozenset[Var]:
        raise NotImplementedError

    def atoms(self) -> Iterator["Formula"]:
        """Yield every atomic subformula (Atom / Dvd), including under Not."""
        raise NotImplementedError

    def substitute(self, mapping: Mapping[Var, LinTerm]) -> "Formula":
        raise NotImplementedError

    def evaluate(self, env: Mapping[Var, int]) -> bool:
        """Evaluate a quantifier-free formula under a total assignment."""
        raise NotImplementedError

    # -- operators ----------------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    def __invert__(self) -> "Formula":
        return neg(self)

    def implies(self, other: "Formula") -> "Formula":
        return disj(neg(self), other)

    def iff(self, other: "Formula") -> "Formula":
        return conj(self.implies(other), other.implies(self))

    # -- convenience --------------------------------------------------------
    @property
    def is_true(self) -> bool:
        return isinstance(self, _TrueFormula)

    @property
    def is_false(self) -> bool:
        return isinstance(self, _FalseFormula)

    def size(self) -> int:
        """Number of AST nodes (a crude complexity measure for reporting)."""
        return 1


class _TrueFormula(Formula):

    __slots__ = ()
    _neg = None                    # read by neg(); never written
    _instance: ClassVar["_TrueFormula | None"] = None

    def __new__(cls) -> "_TrueFormula":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_TrueFormula, ())

    def free_vars(self) -> frozenset[Var]:
        return frozenset()

    def atoms(self) -> Iterator[Formula]:
        return iter(())

    def substitute(self, mapping: Mapping[Var, LinTerm]) -> Formula:
        return self

    def evaluate(self, env: Mapping[Var, int]) -> bool:
        return True

    def __str__(self) -> str:
        return "true"

    __repr__ = __str__


class _FalseFormula(Formula):

    __slots__ = ()
    _neg = None
    _instance: ClassVar["_FalseFormula | None"] = None

    def __new__(cls) -> "_FalseFormula":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_FalseFormula, ())

    def free_vars(self) -> frozenset[Var]:
        return frozenset()

    def atoms(self) -> Iterator[Formula]:
        return iter(())

    def substitute(self, mapping: Mapping[Var, LinTerm]) -> Formula:
        return self

    def evaluate(self, env: Mapping[Var, int]) -> bool:
        return False

    def __str__(self) -> str:
        return "false"

    __repr__ = __str__


TRUE: Formula = _TrueFormula()
FALSE: Formula = _FalseFormula()


class Atom(Formula):
    """A normalized linear atom ``term REL 0``.

    Use the :func:`le`, :func:`lt`, :func:`eq_atom` ... helpers (or
    :func:`atom`) rather than the raw constructor: they perform the
    normalization the rest of the system relies on.
    """

    __slots__ = ("rel", "term", "_hc", "_neg", "_dg")

    _intern: ClassVar[dict] = register_table("Atom", {})

    def __new__(cls, rel: Rel, term: LinTerm) -> "Atom":
        key = (rel, term)
        table = cls._intern
        self = table.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "rel", rel)
        _set(self, "term", term)
        _set(self, "_hc", hash(("Atom", rel, term)))
        _set(self, "_neg", None)
        if len(table) < INTERN_LIMIT:
            table[key] = self
        return self

    def __reduce__(self):
        return (Atom, (self.rel, self.term))

    def __hash__(self) -> int:
        return self._hc

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not Atom:
            return NotImplemented
        return (self._hc == other._hc and self.rel is other.rel
                and self.term == other.term)

    def free_vars(self) -> frozenset[Var]:
        return self.term.variables

    def atoms(self) -> Iterator[Formula]:
        yield self

    def substitute(self, mapping: Mapping[Var, LinTerm]) -> Formula:
        return atom(self.rel, self.term.substitute(mapping))

    def evaluate(self, env: Mapping[Var, int]) -> bool:
        value = self.term.evaluate(env)
        if self.rel is Rel.LE:
            return value <= 0
        if self.rel is Rel.EQ:
            return value == 0
        return value != 0

    def negated(self) -> Formula:
        """The negation of this atom, itself in atom form (memoized; the
        negation of a normalized atom never folds to a constant)."""
        cached = self._neg
        if cached is not None:
            return cached
        if self.rel is Rel.LE:           # not(t <= 0)  <=>  -t + 1 <= 0
            result = atom(Rel.LE, -self.term + 1)
        elif self.rel is Rel.EQ:
            result = atom(Rel.NE, self.term)
        else:
            result = atom(Rel.EQ, self.term)
        object.__setattr__(self, "_neg", result)
        if isinstance(result, (Atom, Dvd)) and result._neg is None:
            object.__setattr__(result, "_neg", self)
        return result

    def __str__(self) -> str:
        return f"{self.term} {self.rel.value} 0"

    __repr__ = __str__


class Dvd(Formula):
    """Divisibility atom ``divisor | term`` (or its negation).

    These appear in Cooper quantifier-elimination results.  ``divisor`` is
    always >= 2 after normalization.
    """

    __slots__ = ("divisor", "term", "negated_flag", "_hc", "_neg", "_dg")

    _intern: ClassVar[dict] = register_table("Dvd", {})

    def __new__(cls, divisor: int, term: LinTerm,
                negated_flag: bool = False) -> "Dvd":
        key = (divisor, term, negated_flag)
        table = cls._intern
        self = table.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "divisor", divisor)
        _set(self, "term", term)
        _set(self, "negated_flag", negated_flag)
        _set(self, "_hc", hash(("Dvd", divisor, term, negated_flag)))
        _set(self, "_neg", None)
        if len(table) < INTERN_LIMIT:
            table[key] = self
        return self

    def __reduce__(self):
        return (Dvd, (self.divisor, self.term, self.negated_flag))

    def __hash__(self) -> int:
        return self._hc

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not Dvd:
            return NotImplemented
        return (self._hc == other._hc
                and self.divisor == other.divisor
                and self.negated_flag == other.negated_flag
                and self.term == other.term)

    def free_vars(self) -> frozenset[Var]:
        return self.term.variables

    def atoms(self) -> Iterator[Formula]:
        yield self

    def substitute(self, mapping: Mapping[Var, LinTerm]) -> Formula:
        return dvd(self.divisor, self.term.substitute(mapping),
                   self.negated_flag)

    def evaluate(self, env: Mapping[Var, int]) -> bool:
        divides = self.term.evaluate(env) % self.divisor == 0
        return divides != self.negated_flag

    def negated(self) -> Formula:
        cached = self._neg
        if cached is not None:
            return cached
        result = dvd(self.divisor, self.term, not self.negated_flag)
        object.__setattr__(self, "_neg", result)
        if isinstance(result, (Atom, Dvd)) and result._neg is None:
            object.__setattr__(result, "_neg", self)
        return result

    def __str__(self) -> str:
        op = "!|" if self.negated_flag else "|"
        return f"{self.divisor} {op} ({self.term})"

    __repr__ = __str__


class Not(Formula):
    """Negation.  Smart constructors push ``Not`` onto atoms eagerly, so a
    ``Not`` node in a normalized formula always wraps a quantifier."""

    __slots__ = ("arg", "_hc", "_neg", "_dg", "_sz")

    _intern: ClassVar[dict] = register_table("Not", {})

    def __new__(cls, arg: Formula) -> "Not":
        table = cls._intern
        self = table.get(arg)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "arg", arg)
        _set(self, "_hc", hash(("Not", arg)))
        _set(self, "_neg", arg)
        _set(self, "_sz", None)
        if len(table) < INTERN_LIMIT:
            table[arg] = self
        return self

    def __reduce__(self):
        return (Not, (self.arg,))

    def __hash__(self) -> int:
        return self._hc

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not Not:
            return NotImplemented
        return self._hc == other._hc and self.arg == other.arg

    def free_vars(self) -> frozenset[Var]:
        return self.arg.free_vars()

    def atoms(self) -> Iterator[Formula]:
        return self.arg.atoms()

    def substitute(self, mapping: Mapping[Var, LinTerm]) -> Formula:
        return neg(self.arg.substitute(mapping))

    def evaluate(self, env: Mapping[Var, int]) -> bool:
        return not self.arg.evaluate(env)

    def size(self) -> int:
        cached = self._sz
        if cached is None:
            cached = 1 + self.arg.size()
            object.__setattr__(self, "_sz", cached)
        return cached

    def __str__(self) -> str:
        return f"!({self.arg})"

    __repr__ = __str__


class And(Formula):

    __slots__ = ("args", "_hc", "_neg", "_fv", "_dg", "_sz")

    _intern: ClassVar[dict] = register_table("And", {})

    def __new__(cls, args: tuple[Formula, ...]) -> "And":
        table = cls._intern
        self = table.get(args)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "args", args)
        _set(self, "_hc", hash(("And", args)))
        _set(self, "_neg", None)
        _set(self, "_fv", None)
        _set(self, "_sz", None)
        if len(table) < INTERN_LIMIT:
            table[args] = self
        return self

    def __reduce__(self):
        return (And, (self.args,))

    def __hash__(self) -> int:
        return self._hc

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not And:
            return NotImplemented
        return self._hc == other._hc and self.args == other.args

    def free_vars(self) -> frozenset[Var]:
        cached = self._fv
        if cached is None:
            result: frozenset[Var] = frozenset()
            for arg in self.args:
                result |= arg.free_vars()
            object.__setattr__(self, "_fv", result)
            return result
        return cached

    def atoms(self) -> Iterator[Formula]:
        for arg in self.args:
            yield from arg.atoms()

    def substitute(self, mapping: Mapping[Var, LinTerm]) -> Formula:
        return conj(*(arg.substitute(mapping) for arg in self.args))

    def evaluate(self, env: Mapping[Var, int]) -> bool:
        return all(arg.evaluate(env) for arg in self.args)

    def size(self) -> int:
        cached = self._sz
        if cached is None:
            cached = 1 + sum(arg.size() for arg in self.args)
            object.__setattr__(self, "_sz", cached)
        return cached

    def __str__(self) -> str:
        return "(" + " & ".join(str(a) for a in self.args) + ")"

    __repr__ = __str__


class Or(Formula):

    __slots__ = ("args", "_hc", "_neg", "_fv", "_dg", "_sz")

    _intern: ClassVar[dict] = register_table("Or", {})

    def __new__(cls, args: tuple[Formula, ...]) -> "Or":
        table = cls._intern
        self = table.get(args)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "args", args)
        _set(self, "_hc", hash(("Or", args)))
        _set(self, "_neg", None)
        _set(self, "_fv", None)
        _set(self, "_sz", None)
        if len(table) < INTERN_LIMIT:
            table[args] = self
        return self

    def __reduce__(self):
        return (Or, (self.args,))

    def __hash__(self) -> int:
        return self._hc

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not Or:
            return NotImplemented
        return self._hc == other._hc and self.args == other.args

    def free_vars(self) -> frozenset[Var]:
        cached = self._fv
        if cached is None:
            result: frozenset[Var] = frozenset()
            for arg in self.args:
                result |= arg.free_vars()
            object.__setattr__(self, "_fv", result)
            return result
        return cached

    def atoms(self) -> Iterator[Formula]:
        for arg in self.args:
            yield from arg.atoms()

    def substitute(self, mapping: Mapping[Var, LinTerm]) -> Formula:
        return disj(*(arg.substitute(mapping) for arg in self.args))

    def evaluate(self, env: Mapping[Var, int]) -> bool:
        return any(arg.evaluate(env) for arg in self.args)

    def size(self) -> int:
        cached = self._sz
        if cached is None:
            cached = 1 + sum(arg.size() for arg in self.args)
            object.__setattr__(self, "_sz", cached)
        return cached

    def __str__(self) -> str:
        return "(" + " | ".join(str(a) for a in self.args) + ")"

    __repr__ = __str__


class Exists(Formula):

    __slots__ = ("variables", "body", "_hc", "_neg", "_dg", "_sz")

    _intern: ClassVar[dict] = register_table("Exists", {})

    def __new__(cls, variables: tuple[Var, ...], body: Formula) -> "Exists":
        key = (variables, body)
        table = cls._intern
        self = table.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "variables", variables)
        _set(self, "body", body)
        _set(self, "_hc", hash(("Exists", variables, body)))
        _set(self, "_neg", None)
        _set(self, "_sz", None)
        if len(table) < INTERN_LIMIT:
            table[key] = self
        return self

    def __reduce__(self):
        return (Exists, (self.variables, self.body))

    def __hash__(self) -> int:
        return self._hc

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not Exists:
            return NotImplemented
        return (self._hc == other._hc and self.variables == other.variables
                and self.body == other.body)

    def free_vars(self) -> frozenset[Var]:
        return self.body.free_vars() - frozenset(self.variables)

    def atoms(self) -> Iterator[Formula]:
        return self.body.atoms()

    def substitute(self, mapping: Mapping[Var, LinTerm]) -> Formula:
        clean = {v: t for v, t in mapping.items() if v not in self.variables}
        for v in self.variables:
            for target in clean.values():
                if v in target.variables:
                    raise ValueError(
                        f"substitution would capture bound variable {v}"
                    )
        return exists(self.variables, self.body.substitute(clean))

    def evaluate(self, env: Mapping[Var, int]) -> bool:
        raise ValueError("cannot evaluate a quantified formula directly")

    def size(self) -> int:
        cached = self._sz
        if cached is None:
            cached = 1 + self.body.size()
            object.__setattr__(self, "_sz", cached)
        return cached

    def __str__(self) -> str:
        names = ", ".join(str(v) for v in self.variables)
        return f"(exists {names}. {self.body})"

    __repr__ = __str__


class Forall(Formula):

    __slots__ = ("variables", "body", "_hc", "_neg", "_dg", "_sz")

    _intern: ClassVar[dict] = register_table("Forall", {})

    def __new__(cls, variables: tuple[Var, ...], body: Formula) -> "Forall":
        key = (variables, body)
        table = cls._intern
        self = table.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        _set = object.__setattr__
        _set(self, "variables", variables)
        _set(self, "body", body)
        _set(self, "_hc", hash(("Forall", variables, body)))
        _set(self, "_neg", None)
        _set(self, "_sz", None)
        if len(table) < INTERN_LIMIT:
            table[key] = self
        return self

    def __reduce__(self):
        return (Forall, (self.variables, self.body))

    def __hash__(self) -> int:
        return self._hc

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not Forall:
            return NotImplemented
        return (self._hc == other._hc and self.variables == other.variables
                and self.body == other.body)

    def free_vars(self) -> frozenset[Var]:
        return self.body.free_vars() - frozenset(self.variables)

    def atoms(self) -> Iterator[Formula]:
        return self.body.atoms()

    def substitute(self, mapping: Mapping[Var, LinTerm]) -> Formula:
        clean = {v: t for v, t in mapping.items() if v not in self.variables}
        for v in self.variables:
            for target in clean.values():
                if v in target.variables:
                    raise ValueError(
                        f"substitution would capture bound variable {v}"
                    )
        return forall(self.variables, self.body.substitute(clean))

    def evaluate(self, env: Mapping[Var, int]) -> bool:
        raise ValueError("cannot evaluate a quantified formula directly")

    def size(self) -> int:
        cached = self._sz
        if cached is None:
            cached = 1 + self.body.size()
            object.__setattr__(self, "_sz", cached)
        return cached

    def __str__(self) -> str:
        names = ", ".join(str(v) for v in self.variables)
        return f"(forall {names}. {self.body})"

    __repr__ = __str__


# ---------------------------------------------------------------------------
# smart constructors
# ---------------------------------------------------------------------------

def atom(rel: Rel, term: LinTerm) -> Formula:
    """Build a normalized atom ``term rel 0``.

    Folds ground atoms, divides by the coefficient gcd (with sound
    integer rounding for LE), and canonicalizes the sign of EQ/NE atoms.
    """
    if term.is_constant:
        value = term.const
        if rel is Rel.LE:
            return TRUE if value <= 0 else FALSE
        if rel is Rel.EQ:
            return TRUE if value == 0 else FALSE
        return TRUE if value != 0 else FALSE

    g = term.content()
    if g > 1:
        coeffs = [(v, c // g) for v, c in term.coeffs]
        if rel is Rel.LE:
            # g*t' + c <= 0  <=>  t' <= floor(-c/g)  <=>  t' - floor(-c/g) <= 0
            bound = _floor_div(-term.const, g)
            term = LinTerm.make(coeffs, -bound)
        else:
            if term.const % g != 0:
                return FALSE if rel is Rel.EQ else TRUE
            term = LinTerm.make(coeffs, term.const // g)

    if rel in (Rel.EQ, Rel.NE):
        # canonical sign: first (lexicographically least) coefficient > 0
        first_coeff = term.coeffs[0][1]
        if first_coeff < 0:
            term = -term
    return Atom(rel, term)


def dvd(divisor: int, term: LinTerm, negated: bool = False) -> Formula:
    """Build a normalized divisibility atom ``divisor | term``."""
    if divisor == 0:
        raise ValueError("zero divisor in divisibility atom")
    divisor = abs(divisor)
    if divisor == 1:
        return FALSE if negated else TRUE
    # reduce coefficients modulo the divisor
    coeffs = [(v, c % divisor) for v, c in term.coeffs]
    term = LinTerm.make(coeffs, term.const % divisor)
    if term.is_constant:
        holds = term.const % divisor == 0
        return TRUE if holds != negated else FALSE
    g = gcd_all([c for _, c in term.coeffs] + [divisor])
    if g > 1:
        if term.const % g != 0:
            # d | g*t' + c with g | d and g !| c: never divisible
            return TRUE if negated else FALSE
        divisor //= g
        term = term.exact_div(g)
        if divisor == 1:
            return FALSE if negated else TRUE
    return Dvd(divisor, term, negated)


# The smart constructors are pure functions of their argument tuples,
# and the QE/abduction loops rebuild the same conjunctions round after
# round; a bounded result cache turns those rebuilds into one dict hit.
# Registered as intern tables so the memory valve clears them too.
_CONNECTIVE_CACHE_LIMIT = 1 << 15
_conj_cache: dict = register_table("conj()", {})
_disj_cache: dict = register_table("disj()", {})


def conj(*parts: Formula) -> Formula:
    """N-ary conjunction with flattening, deduplication and folding.

    TRUE/FALSE are singletons, so the constant checks are identity
    tests, and the complement check only materializes a negation for
    literal-shaped parts (it can never fold on And/Or anyway).
    """
    cached = _conj_cache.get(parts)
    if cached is not None:
        return cached
    result = _conj_uncached(parts)
    if len(_conj_cache) < _CONNECTIVE_CACHE_LIMIT:
        _conj_cache[parts] = result
    return result


def _conj_uncached(parts: tuple[Formula, ...]) -> Formula:
    flat: list[Formula] = []
    seen: set[Formula] = set()
    stack = list(reversed(parts))
    while stack:
        part = stack.pop()
        if part is TRUE:
            continue
        if part is FALSE:
            return FALSE
        if isinstance(part, And):
            stack.extend(reversed(part.args))
            continue
        if part in seen:
            continue
        if isinstance(part, (Atom, Dvd, Not)) and neg(part) in seen:
            return FALSE
        seen.add(part)
        flat.append(part)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*parts: Formula) -> Formula:
    """N-ary disjunction with flattening, deduplication and folding."""
    cached = _disj_cache.get(parts)
    if cached is not None:
        return cached
    result = _disj_uncached(parts)
    if len(_disj_cache) < _CONNECTIVE_CACHE_LIMIT:
        _disj_cache[parts] = result
    return result


def _disj_uncached(parts: tuple[Formula, ...]) -> Formula:
    flat: list[Formula] = []
    seen: set[Formula] = set()
    stack = list(reversed(parts))
    while stack:
        part = stack.pop()
        if part is FALSE:
            continue
        if part is TRUE:
            return TRUE
        if isinstance(part, Or):
            stack.extend(reversed(part.args))
            continue
        if part in seen:
            continue
        if isinstance(part, (Atom, Dvd, Not)) and neg(part) in seen:
            return TRUE
        seen.add(part)
        flat.append(part)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(phi: Formula) -> Formula:
    """Negation, pushed through constants, atoms and double negations.

    Memoized on the node: every formula caches its negation (and the
    negation caches the original), so repeated negation — ubiquitous in
    DNF/CNF conversion and QE — costs one attribute read.
    """
    if phi is TRUE:
        return FALSE
    if phi is FALSE:
        return TRUE
    cached = phi._neg
    if cached is not None:
        return cached
    if isinstance(phi, (Atom, Dvd)):
        return phi.negated()
    # And / Or / Exists / Forall (Not caches its arg at construction)
    result = Not(phi)
    object.__setattr__(phi, "_neg", result)
    return result


def exists(variables: Sequence[Var], body: Formula) -> Formula:
    vs = tuple(v for v in variables if v in body.free_vars())
    if not vs:
        return body
    if isinstance(body, Exists):
        return Exists(tuple(dict.fromkeys(vs + body.variables)), body.body)
    return Exists(vs, body)


def forall(variables: Sequence[Var], body: Formula) -> Formula:
    vs = tuple(v for v in variables if v in body.free_vars())
    if not vs:
        return body
    if isinstance(body, Forall):
        return Forall(tuple(dict.fromkeys(vs + body.variables)), body.body)
    return Forall(vs, body)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    return disj(neg(antecedent), consequent)


# ---------------------------------------------------------------------------
# comparison helpers (the surface API used across the codebase)
# ---------------------------------------------------------------------------

def _as_term(value: LinTerm | Var | int) -> LinTerm:
    if isinstance(value, LinTerm):
        return value
    if isinstance(value, Var):
        return LinTerm.var(value)
    if isinstance(value, int):
        return LinTerm.constant(value)
    raise TypeError(f"cannot interpret {value!r} as a term")


def le(lhs: LinTerm | Var | int, rhs: LinTerm | Var | int) -> Formula:
    """lhs <= rhs"""
    return atom(Rel.LE, _as_term(lhs) - _as_term(rhs))


def lt(lhs: LinTerm | Var | int, rhs: LinTerm | Var | int) -> Formula:
    """lhs < rhs  (integer-tightened to lhs + 1 <= rhs)"""
    return atom(Rel.LE, _as_term(lhs) - _as_term(rhs) + 1)


def ge(lhs: LinTerm | Var | int, rhs: LinTerm | Var | int) -> Formula:
    return le(rhs, lhs)


def gt(lhs: LinTerm | Var | int, rhs: LinTerm | Var | int) -> Formula:
    return lt(rhs, lhs)


def eq(lhs: LinTerm | Var | int, rhs: LinTerm | Var | int) -> Formula:
    return atom(Rel.EQ, _as_term(lhs) - _as_term(rhs))


def ne(lhs: LinTerm | Var | int, rhs: LinTerm | Var | int) -> Formula:
    return atom(Rel.NE, _as_term(lhs) - _as_term(rhs))


# ---------------------------------------------------------------------------
# traversal utilities
# ---------------------------------------------------------------------------

def is_quantifier_free(phi: Formula) -> bool:
    return _is_qf(phi, {})


def _is_qf(phi: Formula, memo: dict[int, bool]) -> bool:
    # memoized by identity over the shared-subformula DAG
    key = id(phi)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if isinstance(phi, (Exists, Forall)):
        result = False
    elif isinstance(phi, Not):
        result = _is_qf(phi.arg, memo)
    elif isinstance(phi, (And, Or)):
        result = all(_is_qf(a, memo) for a in phi.args)
    else:
        result = True
    memo[key] = result
    return result


def map_atoms(phi: Formula, fn: Callable[[Formula], Formula]) -> Formula:
    """Rebuild ``phi`` applying ``fn`` to every atom (quantifier-free)."""
    if isinstance(phi, (Atom, Dvd)):
        return fn(phi)
    if isinstance(phi, Not):
        return neg(map_atoms(phi.arg, fn))
    if isinstance(phi, And):
        return conj(*(map_atoms(a, fn) for a in phi.args))
    if isinstance(phi, Or):
        return disj(*(map_atoms(a, fn) for a in phi.args))
    if isinstance(phi, Exists):
        return exists(phi.variables, map_atoms(phi.body, fn))
    if isinstance(phi, Forall):
        return forall(phi.variables, map_atoms(phi.body, fn))
    return phi


def rename_vars(phi: Formula, mapping: Mapping[Var, Var]) -> Formula:
    """Rename free variables throughout a formula."""
    subst = {v: LinTerm.var(w) for v, w in mapping.items()}
    return phi.substitute(subst)


def unique_atoms(phi: Formula) -> list[Formula]:
    """Distinct atoms of ``phi`` in first-occurrence order."""
    seen: dict[Formula, None] = {}
    for a in phi.atoms():
        seen.setdefault(a, None)
    return list(seen)
