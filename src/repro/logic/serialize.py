"""JSON-safe serialization of terms and formulas.

The persistent cache (:mod:`repro.cache`) stores stage artifacts as
plain JSON, and several artifacts carry formulas — abduced proof
obligations, failure witnesses, decomposed query clauses.  ``str(phi)``
is lossy (a variable's *kind* does not survive its name), so this module
defines an explicit object encoding that round-trips exactly:

* variables keep their name, kind and origin;
* reconstruction goes through the normalizing smart constructors, so a
  deserialized formula of an already-normalized input is the *same*
  hash-consed node the producer held (``from_obj(to_obj(phi)) is phi``
  in one process, and structurally equal across processes).

Shared subformulas are serialized once per :func:`to_obj` call (the
encoder memoizes by node identity and emits the full subtree each time
it is referenced — formulas here are small; the DAG sharing that matters
is restored on decode by the interner).
"""

from __future__ import annotations

from typing import Any

from .formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Dvd,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Rel,
    conj,
    disj,
    dvd,
    exists,
    forall,
    neg,
)
from .formulas import atom as make_atom
from .terms import LinTerm, Var, VarKind

__all__ = ["formula_from_obj", "formula_to_obj", "term_from_obj",
           "term_to_obj", "var_from_obj", "var_to_obj"]


def _var_to_obj(v: Var) -> dict:
    obj: dict[str, Any] = {"n": v.name, "k": v.kind.value}
    if v.origin:
        obj["o"] = list(v.origin)
    return obj


def _var_from_obj(obj: dict) -> Var:
    return Var(obj["n"], VarKind(obj["k"]), tuple(obj.get("o", ())))


#: Public aliases (stage artifacts encode MSA variables directly).
var_to_obj = _var_to_obj
var_from_obj = _var_from_obj


def term_to_obj(t: LinTerm) -> dict:
    """Encode a linear term as a JSON-safe dict."""
    return {
        "const": t.const,
        "coeffs": [[_var_to_obj(v), c] for v, c in t.coeffs],
    }


def term_from_obj(obj: dict) -> LinTerm:
    """Decode :func:`term_to_obj` output (re-interned on construction)."""
    return LinTerm.make(
        [(_var_from_obj(v), c) for v, c in obj["coeffs"]], obj["const"]
    )


def formula_to_obj(phi: Formula) -> dict:
    """Encode a formula as a JSON-safe dict."""
    if phi.is_true:
        return {"op": "true"}
    if phi.is_false:
        return {"op": "false"}
    if isinstance(phi, Atom):
        return {"op": "atom", "rel": phi.rel.value,
                "term": term_to_obj(phi.term)}
    if isinstance(phi, Dvd):
        return {"op": "dvd", "d": phi.divisor, "neg": phi.negated_flag,
                "term": term_to_obj(phi.term)}
    if isinstance(phi, Not):
        return {"op": "not", "arg": formula_to_obj(phi.arg)}
    if isinstance(phi, (And, Or)):
        return {"op": "and" if isinstance(phi, And) else "or",
                "args": [formula_to_obj(a) for a in phi.args]}
    if isinstance(phi, (Exists, Forall)):
        return {"op": "exists" if isinstance(phi, Exists) else "forall",
                "vars": [_var_to_obj(v) for v in phi.variables],
                "body": formula_to_obj(phi.body)}
    raise TypeError(f"cannot serialize {phi!r}")


def formula_from_obj(obj: dict) -> Formula:
    """Decode :func:`formula_to_obj` output through the smart
    constructors, yielding the interned normalized node."""
    op = obj["op"]
    if op == "true":
        return TRUE
    if op == "false":
        return FALSE
    if op == "atom":
        return make_atom(Rel(obj["rel"]), term_from_obj(obj["term"]))
    if op == "dvd":
        return dvd(obj["d"], term_from_obj(obj["term"]), obj["neg"])
    if op == "not":
        return neg(formula_from_obj(obj["arg"]))
    if op == "and":
        return conj(*(formula_from_obj(a) for a in obj["args"]))
    if op == "or":
        return disj(*(formula_from_obj(a) for a in obj["args"]))
    if op in ("exists", "forall"):
        build = exists if op == "exists" else forall
        return build([_var_from_obj(v) for v in obj["vars"]],
                     formula_from_obj(obj["body"]))
    raise ValueError(f"unknown formula op {op!r}")
