"""SMT-LIB 2 export.

Lets users cross-check any formula this system produces (invariants,
success conditions, proof obligations, failure witnesses) with an
external SMT solver:

    (set-logic LIA)
    (declare-const x Int) ...
    (assert ...)
    (check-sat)

Divisibility atoms are expressed with integer division semantics via
``mod``; quantifiers map to ``forall``/``exists``.
"""

from __future__ import annotations

from .formulas import (
    And,
    Atom,
    Dvd,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Rel,
)
from .terms import LinTerm, Var

_SANITIZE = str.maketrans({"@": "_at_", "$": "_d_", "#": "_h_", "*": "_s_"})


def _symbol(v: Var) -> str:
    """SMT-LIB simple symbols: translate the characters our internal
    names use that SMT-LIB forbids."""
    return v.name.translate(_SANITIZE)


def term_to_sexpr(term: LinTerm) -> str:
    parts: list[str] = []
    for v, c in term.coeffs:
        name = _symbol(v)
        if c == 1:
            parts.append(name)
        elif c == -1:
            parts.append(f"(- {name})")
        else:
            coeff = str(c) if c > 0 else f"(- {-c})"
            parts.append(f"(* {coeff} {name})")
    if term.const or not parts:
        const = (str(term.const) if term.const >= 0
                 else f"(- {-term.const})")
        parts.append(const)
    if len(parts) == 1:
        return parts[0]
    return "(+ " + " ".join(parts) + ")"


def formula_to_sexpr(phi: Formula) -> str:
    if phi.is_true:
        return "true"
    if phi.is_false:
        return "false"
    if isinstance(phi, Atom):
        lhs = term_to_sexpr(phi.term)
        if phi.rel is Rel.LE:
            return f"(<= {lhs} 0)"
        if phi.rel is Rel.EQ:
            return f"(= {lhs} 0)"
        return f"(not (= {lhs} 0))"
    if isinstance(phi, Dvd):
        inner = f"(= (mod {term_to_sexpr(phi.term)} {phi.divisor}) 0)"
        return f"(not {inner})" if phi.negated_flag else inner
    if isinstance(phi, Not):
        return f"(not {formula_to_sexpr(phi.arg)})"
    if isinstance(phi, And):
        return "(and " + " ".join(
            formula_to_sexpr(a) for a in phi.args
        ) + ")"
    if isinstance(phi, Or):
        return "(or " + " ".join(
            formula_to_sexpr(a) for a in phi.args
        ) + ")"
    if isinstance(phi, (Exists, Forall)):
        binder = "exists" if isinstance(phi, Exists) else "forall"
        binding = " ".join(
            f"({_symbol(v)} Int)" for v in phi.variables
        )
        return f"({binder} ({binding}) {formula_to_sexpr(phi.body)})"
    raise TypeError(f"unexpected formula node {phi!r}")


def to_smtlib(phi: Formula, *, logic: str = "LIA",
              check_sat: bool = True, get_model: bool = False) -> str:
    """A complete SMT-LIB 2 script asserting ``phi``."""
    lines = [f"(set-logic {logic})"]
    for v in sorted(phi.free_vars(), key=lambda u: u.name):
        lines.append(f"(declare-const {_symbol(v)} Int)")
    lines.append(f"(assert {formula_to_sexpr(phi)})")
    if check_sat:
        lines.append("(check-sat)")
    if get_model:
        lines.append("(get-model)")
    return "\n".join(lines) + "\n"
