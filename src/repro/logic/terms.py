"""Linear integer terms and analysis variables.

The whole reproduction works in linear arithmetic over the integers (the
theory the paper fixes for its constraints).  A term is an affine expression

    c0 + c1*x1 + ... + cn*xn

with integer coefficients.  Variables carry a *kind* distinguishing the two
sorts of analysis variables the paper introduces (Section 3):

* ``INPUT`` variables (``nu``) model unknown program inputs, and
* ``ABSTRACTION`` variables (``alpha``) model values lost to analysis
  imprecision (loops, non-linear arithmetic, library calls).

``PROGRAM`` variables appear in source-level predicates before the analysis
maps them to analysis variables, and ``AUX`` variables are internal fresh
variables used by decision procedures (quantifier elimination, divisibility
lowering).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction
from typing import ClassVar, Iterable, Iterator, Mapping

from .intern import INTERN_LIMIT, register_table


class VarKind(Enum):
    """Sort of a variable, mirroring the paper's classification."""

    INPUT = "input"          # nu: value of a program input
    ABSTRACTION = "abstraction"  # alpha: value lost to imprecision
    PROGRAM = "program"      # source-level program variable
    AUX = "aux"              # internal fresh variable


@dataclass(frozen=True, order=True)
class Var:
    """An integer-valued variable.

    ``origin`` optionally records the program entity the variable stands
    for (e.g. the program variable havocked at a loop, and the loop label),
    which Section 4.4 uses to render queries in terms the user understands.
    """

    name: str
    kind: VarKind = VarKind.PROGRAM
    origin: tuple[str, ...] = field(default=(), compare=False)
    _hc: int | None = field(default=None, init=False, repr=False,
                            compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name

    def __str__(self) -> str:
        return self.name

    @property
    def is_input(self) -> bool:
        return self.kind is VarKind.INPUT

    @property
    def is_abstraction(self) -> bool:
        return self.kind is VarKind.ABSTRACTION


class VarSupply:
    """A deterministic supply of fresh variables.

    Decision procedures must never capture user variables; they draw fresh
    ``AUX`` variables from a supply seeded with every name already in scope.
    """

    def __init__(self, avoid: Iterable[Var] = (), prefix: str = "$t"):
        self._taken = {v.name for v in avoid}
        self._prefix = prefix
        self._counter = itertools.count()

    def reserve(self, variables: Iterable[Var]) -> None:
        """Mark more names as taken."""
        self._taken.update(v.name for v in variables)

    def fresh(self, hint: str | None = None, kind: VarKind = VarKind.AUX) -> Var:
        """Return a variable whose name collides with nothing reserved."""
        base = hint if hint is not None else self._prefix
        while True:
            name = f"{base}{next(self._counter)}"
            if name not in self._taken:
                self._taken.add(name)
                return Var(name, kind)


def input_var(name: str, origin: tuple[str, ...] = ()) -> Var:
    """Construct an input (nu) variable."""
    return Var(name, VarKind.INPUT, origin)


def abstraction_var(name: str, origin: tuple[str, ...] = ()) -> Var:
    """Construct an abstraction (alpha) variable."""
    return Var(name, VarKind.ABSTRACTION, origin)


class LinTerm:
    """An affine integer term ``const + sum(coeffs[v] * v)``.

    Immutable; all arithmetic returns new terms.  Zero coefficients are
    never stored, which makes structural equality coincide with semantic
    equality of affine forms.

    Terms are hash-consed: structurally equal terms are the same object
    (see :mod:`repro.logic.intern`), so ``__eq__`` is usually an identity
    check and ``__hash__`` a precomputed field.
    """

    __slots__ = ("coeffs", "const", "_hc", "_dg", "_vars")

    _intern: ClassVar[dict] = register_table("LinTerm", {})

    def __new__(cls, coeffs: tuple[tuple[Var, int], ...] = (),
                const: int = 0) -> "LinTerm":
        key = (coeffs, const)
        table = cls._intern
        self = table.get(key)
        if self is not None:
            return self
        self = object.__new__(cls)
        object.__setattr__(self, "coeffs", coeffs)
        object.__setattr__(self, "const", const)
        object.__setattr__(self, "_hc", hash(("LinTerm", coeffs, const)))
        object.__setattr__(self, "_vars", None)
        if len(table) < INTERN_LIMIT:
            table[key] = self
        return self

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LinTerm is immutable")

    def __hash__(self) -> int:
        return self._hc

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(other) is not LinTerm:
            return NotImplemented
        return (self._hc == other._hc and self.const == other.const
                and self.coeffs == other.coeffs)

    def __reduce__(self):
        # unpickling re-interns, restoring identity semantics in-process
        return (LinTerm, (self.coeffs, self.const))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def make(coeffs: Mapping[Var, int] | Iterable[tuple[Var, int]] = (),
             const: int = 0) -> "LinTerm":
        """Normalize a coefficient mapping into a ``LinTerm``.

        Coefficients for the same variable are summed; zeros are dropped;
        variables are stored in sorted order so equal terms compare equal.
        """
        acc: dict[Var, int] = {}
        items = coeffs.items() if isinstance(coeffs, Mapping) else coeffs
        for var, coeff in items:
            if not isinstance(coeff, int):
                raise TypeError(f"non-integer coefficient {coeff!r} for {var}")
            acc[var] = acc.get(var, 0) + coeff
        pruned = tuple(sorted(
            ((v, c) for v, c in acc.items() if c != 0),
            key=lambda item: item[0].name,
        ))
        return LinTerm(pruned, const)

    @staticmethod
    def constant(value: int) -> "LinTerm":
        return LinTerm((), value)

    @staticmethod
    def var(v: Var, coeff: int = 1) -> "LinTerm":
        if coeff == 0:
            return LinTerm((), 0)
        return LinTerm(((v, coeff),), 0)

    ZERO: ClassVar["LinTerm"]
    ONE: ClassVar["LinTerm"]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def coeff(self, v: Var) -> int:
        """Coefficient of ``v`` (0 when absent)."""
        for var, c in self.coeffs:
            if var == v:
                return c
        return 0

    @property
    def variables(self) -> frozenset[Var]:
        # cached: terms are hash-consed, and the Omega test asks for the
        # variable set of the same terms over and over while partitioning
        # constraints by eliminated variable
        cached = self._vars
        if cached is None:
            cached = frozenset(v for v, _ in self.coeffs)
            object.__setattr__(self, "_vars", cached)
        return cached

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def __iter__(self) -> Iterator[tuple[Var, int]]:
        return iter(self.coeffs)

    def coeff_map(self) -> dict[Var, int]:
        return dict(self.coeffs)

    def content(self) -> int:
        """gcd of the variable coefficients (0 for constant terms)."""
        g = 0
        for _, c in self.coeffs:
            g = _gcd(g, abs(c))
        return g

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "LinTerm | int") -> "LinTerm":
        other = _coerce(other)
        merged = dict(self.coeffs)
        for v, c in other.coeffs:
            merged[v] = merged.get(v, 0) + c
        return LinTerm.make(merged, self.const + other.const)

    __radd__ = __add__

    def __sub__(self, other: "LinTerm | int") -> "LinTerm":
        return self + (-_coerce(other))

    def __rsub__(self, other: "LinTerm | int") -> "LinTerm":
        return _coerce(other) + (-self)

    def __neg__(self) -> "LinTerm":
        return self.scale(-1)

    def scale(self, factor: int) -> "LinTerm":
        if factor == 0:
            return LinTerm.ZERO
        if factor == 1:
            return self
        return LinTerm(
            tuple((v, c * factor) for v, c in self.coeffs),
            self.const * factor,
        )

    def __mul__(self, factor: int) -> "LinTerm":
        if not isinstance(factor, int):
            return NotImplemented
        return self.scale(factor)

    __rmul__ = __mul__

    def exact_div(self, divisor: int) -> "LinTerm":
        """Divide every coefficient by ``divisor``; must be exact."""
        if divisor == 0:
            raise ZeroDivisionError("exact_div by zero")
        coeffs = []
        for v, c in self.coeffs:
            q, r = divmod(c, divisor)
            if r:
                raise ValueError(f"{self} not divisible by {divisor}")
            coeffs.append((v, q))
        q, r = divmod(self.const, divisor)
        if r:
            raise ValueError(f"{self} not divisible by {divisor}")
        return LinTerm(tuple(coeffs), q)

    # ------------------------------------------------------------------
    # evaluation and substitution
    # ------------------------------------------------------------------
    def evaluate(self, env: Mapping[Var, int]) -> int:
        """Evaluate under a total assignment to this term's variables."""
        total = self.const
        for v, c in self.coeffs:
            total += c * env[v]
        return total

    def evaluate_fraction(self, env: Mapping[Var, Fraction]) -> Fraction:
        """Evaluate under a rational assignment (used by the LP relaxation)."""
        total = Fraction(self.const)
        for v, c in self.coeffs:
            total += c * env[v]
        return total

    def substitute(self, mapping: Mapping[Var, "LinTerm"]) -> "LinTerm":
        """Replace variables by terms (simultaneous substitution)."""
        if not any(v in mapping for v, _ in self.coeffs):
            return self
        acc = LinTerm.constant(self.const)
        for v, c in self.coeffs:
            replacement = mapping.get(v)
            if replacement is None:
                acc = acc + LinTerm.var(v, c)
            else:
                acc = acc + replacement.scale(c)
        return acc

    def rename(self, mapping: Mapping[Var, Var]) -> "LinTerm":
        """Rename variables (injective renaming)."""
        return LinTerm.make(
            [(mapping.get(v, v), c) for v, c in self.coeffs], self.const
        )

    # ------------------------------------------------------------------
    # display
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if not self.coeffs:
            return str(self.const)
        parts: list[str] = []
        for v, c in self.coeffs:
            if not parts:
                if c == 1:
                    parts.append(f"{v}")
                elif c == -1:
                    parts.append(f"-{v}")
                else:
                    parts.append(f"{c}*{v}")
            else:
                sign = "+" if c > 0 else "-"
                mag = abs(c)
                parts.append(f" {sign} {v}" if mag == 1 else f" {sign} {mag}*{v}")
        if self.const > 0:
            parts.append(f" + {self.const}")
        elif self.const < 0:
            parts.append(f" - {-self.const}")
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinTerm({self})"


LinTerm.ZERO = LinTerm((), 0)
LinTerm.ONE = LinTerm((), 1)


def _coerce(value: "LinTerm | int") -> LinTerm:
    if isinstance(value, LinTerm):
        return value
    if isinstance(value, int):
        return LinTerm.constant(value)
    raise TypeError(f"cannot coerce {value!r} to LinTerm")


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return abs(a)


def gcd_all(values: Iterable[int]) -> int:
    """gcd of a collection (0 for the empty collection)."""
    g = 0
    for v in values:
        g = _gcd(g, v)
    return g


def lcm(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // _gcd(a, b)


def lcm_all(values: Iterable[int]) -> int:
    result = 1
    for v in values:
        result = lcm(result, v)
    return result


# ---------------------------------------------------------------------------
# cached hashing
#
# Terms and formulas are immutable trees that live in sets and dict keys
# throughout the solver stack; recomputing a deep hash on every use turns
# hashing into the dominant cost.  Each node caches its hash at first use
# (children's hashes are already cached, so the amortized cost is O(1) per
# node), and equality fast-paths on identity and hash.
# ---------------------------------------------------------------------------

def _install_hash_cache(cls, field_names):
    def __hash__(self):
        h = self._hc
        if h is None:
            h = hash((cls.__name__,)
                     + tuple(getattr(self, n) for n in field_names))
            object.__setattr__(self, "_hc", h)
        return h

    original_eq = cls.__eq__

    def __eq__(self, other):
        if self is other:
            return True
        if type(other) is not type(self) and not isinstance(other, cls):
            return NotImplemented
        if hash(self) != hash(other):
            return False
        return original_eq(self, other)

    cls.__hash__ = __hash__
    cls.__eq__ = __eq__


_install_hash_cache(Var, ("name", "kind"))
