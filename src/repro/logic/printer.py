"""Serialization of formulas back to concrete syntax.

``to_source(phi)`` emits text that :func:`repro.logic.parse_formula`
parses back to an equal formula (round-tripping is property-tested).
Useful for persisting learned invariants, logging, and the CLI.
"""

from __future__ import annotations

from .formulas import (
    And,
    Atom,
    Dvd,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Rel,
)
from .terms import LinTerm


def term_to_source(term: LinTerm) -> str:
    """Emit a linear term in parseable syntax."""
    if term.is_constant:
        return str(term.const)
    parts: list[str] = []
    for v, c in term.coeffs:
        if not parts:
            if c == 1:
                parts.append(v.name)
            elif c == -1:
                parts.append(f"-{v.name}")
            else:
                parts.append(f"{c}*{v.name}" if c > 0 else f"-{-c}*{v.name}")
        else:
            sign = "+" if c > 0 else "-"
            magnitude = abs(c)
            product = v.name if magnitude == 1 else f"{magnitude}*{v.name}"
            parts.append(f" {sign} {product}")
    if term.const > 0:
        parts.append(f" + {term.const}")
    elif term.const < 0:
        parts.append(f" - {-term.const}")
    return "".join(parts)


def to_source(phi: Formula) -> str:
    """Emit a formula in the syntax :func:`parse_formula` accepts."""
    if phi.is_true:
        return "true"
    if phi.is_false:
        return "false"
    if isinstance(phi, Atom):
        op = {Rel.LE: "<=", Rel.EQ: "==", Rel.NE: "!="}[phi.rel]
        return f"{term_to_source(phi.term)} {op} 0"
    if isinstance(phi, Dvd):
        inner = f"{phi.divisor} dvd {term_to_source(phi.term)}"
        if phi.negated_flag:
            return f"!({inner})"
        return inner
    if isinstance(phi, Not):
        return f"!({to_source(phi.arg)})"
    if isinstance(phi, And):
        return " && ".join(_wrap(a) for a in phi.args)
    if isinstance(phi, Or):
        return " || ".join(_wrap(a) for a in phi.args)
    if isinstance(phi, Exists):
        names = ", ".join(v.name for v in phi.variables)
        return f"exists {names}. {to_source(phi.body)}"
    if isinstance(phi, Forall):
        names = ", ".join(v.name for v in phi.variables)
        return f"forall {names}. {to_source(phi.body)}"
    raise TypeError(f"unexpected formula node {phi!r}")


def _wrap(phi: Formula) -> str:
    text = to_source(phi)
    if isinstance(phi, (And, Or, Exists, Forall)):
        return f"({text})"
    return text
