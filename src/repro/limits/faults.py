"""Deterministic fault injection for the resource-governance paths.

The batch driver's recovery logic (retry, backoff, quarantine, pool
rebuild) only runs when something goes wrong, so without a way to make
things go wrong *on demand* it would ship untested.  This module is
that switch: a single :class:`FaultSpec` names an action, the solver
stage whose first checkpoint should trigger it, and optionally the one
report it applies to.

Specs parse from ``ACTION[:ARG]@STAGE[@REPORT]``:

* ``raise@qe`` — raise :class:`FaultInjected` at the first qe tick;
* ``exhaust@msa`` — the governor raises :class:`ResourceExhausted`
  with ``kind="injected"`` (exercises the UNKNOWN_RESOURCE path);
* ``sleep:30@smt@p03_square`` — sleep 30s at the first smt tick, but
  only while triaging ``p03_square`` (exercises hang detection);
* ``kill@sat`` — SIGKILL the current process, but only when it has
  been marked as a batch worker; elsewhere it downgrades to ``raise``
  so a stray env var cannot kill a test runner or REPL.

Activation is either programmatic (:func:`install`, wins) or via the
``REPRO_FAULT`` environment variable — the env route is what lets the
CI matrix and the acceptance scenario inject faults into worker
processes without any API plumbing.  Each governor fires its fault at
most once, so a retried report fails again deterministically on every
attempt (that is what drives it into quarantine) while reports the
spec does not name are untouched.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

__all__ = [
    "FaultInjected",
    "FaultSpec",
    "active",
    "current_report",
    "fire",
    "in_worker",
    "install",
    "mark_worker",
    "matches",
    "parse_fault",
    "set_report",
]

_ENV_VAR = "REPRO_FAULT"
_ACTIONS = ("raise", "exhaust", "sleep", "kill")


class FaultInjected(RuntimeError):
    """The error a ``raise`` fault (or downgraded ``kill``) produces.

    Deliberately *not* a :class:`ResourceExhausted`: it models an
    arbitrary worker crash, so it must flow through the generic
    error-recovery path, not the graceful exhaustion path.
    """

    def __init__(self, stage: str):
        self.stage = stage
        super().__init__(f"injected fault at stage {stage!r}")


@dataclass(frozen=True)
class FaultSpec:
    action: str                  # raise | exhaust | sleep | kill
    stage: str                   # which solver checkpoint triggers it
    seconds: float = 0.0         # sleep duration (sleep action only)
    report: str | None = None    # restrict to one benchmark report

    def __str__(self) -> str:
        text = self.action
        if self.action == "sleep":
            text += f":{self.seconds:g}"
        text += f"@{self.stage}"
        if self.report is not None:
            text += f"@{self.report}"
        return text


def parse_fault(text: str) -> FaultSpec:
    """Parse ``ACTION[:ARG]@STAGE[@REPORT]`` into a :class:`FaultSpec`."""
    parts = text.strip().split("@")
    if len(parts) not in (2, 3) or not all(parts):
        raise ValueError(
            f"fault spec {text!r} is not ACTION[:ARG]@STAGE[@REPORT]"
        )
    head, stage = parts[0], parts[1]
    report = parts[2] if len(parts) == 3 else None
    action, _, arg = head.partition(":")
    if action not in _ACTIONS:
        raise ValueError(
            f"unknown fault action {action!r} (expected one of {_ACTIONS})"
        )
    seconds = 0.0
    if action == "sleep":
        if not arg:
            raise ValueError("sleep fault needs a duration: sleep:SECS@STAGE")
        seconds = float(arg)
    elif arg:
        raise ValueError(f"fault action {action!r} takes no argument")
    return FaultSpec(action=action, stage=stage, seconds=seconds,
                     report=report)


_installed: FaultSpec | None = None
_installed_explicitly = False
_report: str | None = None
_worker = False


def install(spec: FaultSpec | str | None) -> None:
    """Programmatically set (or with ``None`` clear) the active fault,
    overriding ``REPRO_FAULT``."""
    global _installed, _installed_explicitly
    if isinstance(spec, str):
        spec = parse_fault(spec)
    _installed = spec
    _installed_explicitly = spec is not None


def active() -> FaultSpec | None:
    """The fault spec governors should honor right now, if any."""
    if _installed_explicitly:
        return _installed
    text = os.environ.get(_ENV_VAR)
    if not text:
        return None
    return parse_fault(text)


def set_report(name: str | None) -> None:
    """Record which benchmark report this process is triaging, so
    report-scoped specs can match.  The batch worker sets this."""
    global _report
    _report = name


def current_report() -> str | None:
    return _report


def mark_worker(flag: bool = True) -> None:
    """Flag this process as a disposable batch worker; only then may a
    ``kill`` fault actually SIGKILL it."""
    global _worker
    _worker = flag


def in_worker() -> bool:
    return _worker


def matches(spec: FaultSpec, stage: str) -> bool:
    """Should ``spec`` trigger at a checkpoint of ``stage`` here?"""
    if spec.stage != stage:
        return False
    return spec.report is None or spec.report == _report


def fire(spec: FaultSpec) -> None:
    """Execute a matched ``raise``/``kill`` fault (``exhaust`` and
    ``sleep`` are handled inside the governor, which owns the
    ResourceExhausted/deadline machinery)."""
    if spec.action == "raise":
        raise FaultInjected(spec.stage)
    if spec.action == "sleep":  # pragma: no cover - governor handles it
        time.sleep(spec.seconds)
        return
    if spec.action == "kill":
        if _worker:
            os.kill(os.getpid(), signal.SIGKILL)  # never returns
        raise FaultInjected(spec.stage)  # downgrade outside workers
