"""Cooperative resource governance: deadlines, step budgets, cancellation.

Cooper QE, the MSA search, CDCL and the Omega test are all worst-case
exponential; the paper's sub-0.1s query times hold on the Figure 7
suite, not in general.  A production triage service therefore needs a
way to say "spend at most this much on a report and degrade to an
explicit *unknown* verdict" — this module is that mechanism.

One :class:`Limits` value describes every bound a run may impose:

* ``deadline`` — wall-clock seconds for the whole operation;
* per-stage step budgets (``qe_steps``, ``msa_steps``, ``sat_steps``,
  ``smt_steps``, ``omega_steps``) with ``max_steps`` as the default for
  any stage without its own bound;
* ``max_nodes`` — a memory-ish ceiling on formula nodes charged by QE
  (the ``qe`` stage counts nodes, not iterations);
* ``token`` — a cooperative :class:`CancellationToken`;
* ``retries`` / ``backoff`` — the batch driver's recovery policy.

Enforcement is *cooperative*: every solver calls :func:`tick` at its
loop heads.  While no governor is active a tick is one global load and
a ``None`` check — ``benchmarks/bench_limits_overhead.py`` pins the
enabled-governor cost below 5% of a clean run.  :func:`governed`
installs a :class:`Governor` for the dynamic extent of a block; the
governor accounts per-stage spend and raises a single
:class:`ResourceExhausted` carrying the stage, the spend and the limit,
which the diagnosis engine converts into the ``UNKNOWN_RESOURCE``
verdict (a *result*, not an error).

The deadline is checked inside ``tick`` too, so the exception's stage
names whichever solver loop noticed that time ran out — that is the
per-stage attribution the batch driver reports for degraded runs.

Deterministic fault injection for the recovery paths lives in
:mod:`repro.limits.faults`; the governor consults it on every tick (a
``None`` check when no fault is installed).

This module sits next to :mod:`repro.schema` at the bottom of the
package layering: it imports nothing from the package except
:mod:`repro.obs` (which is itself standalone), so every solver layer
can use it without cycles.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator

from .. import obs
from . import faults

__all__ = [
    "CancellationToken",
    "Governor",
    "Limits",
    "ResourceExhausted",
    "STAGES",
    "current_governor",
    "governed",
    "governed_here",
    "tick",
]

#: The stages solvers attribute spend to.  ``qe`` spend is measured in
#: formula nodes; every other stage counts loop iterations.
STAGES = ("qe", "msa", "sat", "smt", "omega")


class ResourceExhausted(RuntimeError):
    """A solver ran out of a governed resource.

    ``stage`` is the solver stage whose checkpoint fired (one of
    :data:`STAGES`); ``kind`` says which resource ran out — ``"steps"``,
    ``"nodes"``, ``"deadline"``, ``"cancelled"`` or ``"injected"``.
    ``spent``/``limit`` quantify the overrun in the units of ``kind``.
    """

    def __init__(self, stage: str, spent=None, limit=None, *,
                 kind: str = "steps", message: str | None = None):
        self.stage = stage
        self.spent = spent
        self.limit = limit
        self.kind = kind
        if message is None:
            message = f"stage {stage!r} exhausted its {kind} limit"
            if spent is not None and limit is not None:
                message += f" ({spent:g} > {limit:g})"
        super().__init__(message)


class CancellationToken:
    """A cooperative, in-process cancellation flag.

    ``cancel()`` makes every subsequent governed checkpoint raise
    :class:`ResourceExhausted` with ``kind="cancelled"``.  The token is
    plain data (picklable), but a copy shipped to a worker process is
    exactly that — a copy: cancellation does not propagate across the
    process boundary, which is why the batch driver governs workers
    with deadlines instead.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancellationToken(cancelled={self._cancelled})"


@dataclass(frozen=True)
class Limits:
    """Every resource bound a run may impose, in one value.

    The default instance is unlimited (every field ``None``): solvers
    then fall back to their own standalone safety valves.  ``retries``
    and ``backoff`` only matter to the batch driver's recovery loop.
    """

    deadline: float | None = None       # wall-clock seconds
    max_steps: int | None = None        # default per-stage budget
    qe_steps: int | None = None         # QE budget, in formula nodes
    msa_steps: int | None = None        # MSA search nodes
    sat_steps: int | None = None        # CDCL solve-loop iterations
    smt_steps: int | None = None        # lazy-SMT theory rounds
    omega_steps: int | None = None      # Omega elimination steps
    max_nodes: int | None = None        # alias ceiling for the qe stage
    retries: int = 1                    # extra batch attempts per report
    backoff: float = 0.05               # base retry backoff, seconds
    token: CancellationToken | None = field(default=None, compare=False)

    def step_limit(self, stage: str) -> int | None:
        """The effective step budget for ``stage`` (stage-specific
        first, then ``max_nodes`` for qe, then ``max_steps``)."""
        specific = getattr(self, f"{stage}_steps", None)
        if specific is not None:
            return specific
        if stage == "qe" and self.max_nodes is not None:
            return self.max_nodes
        return self.max_steps

    @property
    def unlimited(self) -> bool:
        """True when no bound is set (the governor would be a no-op
        apart from fault injection)."""
        return (self.deadline is None and self.max_steps is None
                and self.max_nodes is None and self.token is None
                and all(getattr(self, f"{s}_steps") is None
                        for s in STAGES))

    def tightened(self, attempt: int) -> "Limits":
        """The limits for retry number ``attempt`` (0 = first try):
        each retry halves the deadline, so a pathological report cannot
        double its cost through the recovery path."""
        if attempt <= 0 or self.deadline is None:
            return self
        return replace(
            self, deadline=max(self.deadline * (0.5 ** attempt), 0.05)
        )

    def backoff_for(self, attempt: int) -> float:
        """Deterministic exponential backoff before retry ``attempt``."""
        return min(self.backoff * (2 ** max(attempt - 1, 0)), 2.0)

    def to_dict(self) -> dict:
        """Plain-data rendering for the JSON envelope (Nones omitted,
        the token rendered as a flag)."""
        payload: dict = {}
        for name in ("deadline", "max_steps", "max_nodes",
                     *(f"{s}_steps" for s in STAGES)):
            value = getattr(self, name)
            if value is not None:
                payload[name] = value
        payload["retries"] = self.retries
        if self.token is not None:
            payload["cancellable"] = True
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Limits":
        known = {f.name for f in cls.__dataclass_fields__.values()} \
            - {"token"}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in payload.items() if k in known})


#: Ticks between wall-clock reads on the deadline path.  Reading the
#: clock is the one expensive part of a checkpoint (QE alone can tick
#: tens of thousands of times per abduction round), so the deadline is
#: polled every Nth tick: detection lags by at most a stride of cheap
#: loop iterations, far below the 0.05s deadline floor.
_CLOCK_STRIDE = 64


class Governor:
    """The active accounting for one governed run.

    Holds the absolute deadline, the per-stage spend map and the
    pre-resolved per-stage limits, so :meth:`tick` is a dict update
    plus two comparisons on the hot path.
    """

    __slots__ = ("limits", "spend", "_stage_limits", "_deadline_at",
                 "_token", "_fault", "_fault_fired", "_started",
                 "_clock_countdown")

    def __init__(self, limits: Limits):
        self.limits = limits
        self.spend: dict[str, int] = {}
        self._stage_limits = {
            stage: limits.step_limit(stage) for stage in STAGES
        }
        self._started = time.monotonic()
        self._deadline_at = (
            self._started + limits.deadline
            if limits.deadline is not None else None
        )
        self._token = limits.token
        self._fault = faults.active()
        self._fault_fired = False
        self._clock_countdown = 0  # check the deadline on the first tick

    # ------------------------------------------------------------------
    def tick(self, stage: str, amount: int = 1) -> None:
        """One checkpoint: charge ``amount`` to ``stage`` and enforce
        every bound.  Raises :class:`ResourceExhausted` past a limit."""
        if self._fault is not None:
            self._maybe_fault(stage)
        spend = self.spend
        n = spend.get(stage, 0) + amount
        spend[stage] = n
        limit = self._stage_limits.get(stage)
        if limit is not None and n > limit:
            obs.inc(f"limits.exhausted.{stage}")
            raise ResourceExhausted(
                stage, n, limit,
                kind="nodes" if stage == "qe" else "steps",
            )
        if self._deadline_at is not None:
            self._clock_countdown -= 1
            if self._clock_countdown < 0:
                self._clock_countdown = _CLOCK_STRIDE
                now = time.monotonic()
                if now > self._deadline_at:
                    obs.inc("limits.exhausted.deadline")
                    raise ResourceExhausted(
                        stage, now - self._started, self.limits.deadline,
                        kind="deadline",
                    )
        if self._token is not None and self._token.cancelled:
            obs.inc("limits.exhausted.cancelled")
            raise ResourceExhausted(stage, kind="cancelled")

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def spend_snapshot(self) -> dict[str, int]:
        """A copy of the per-stage spend map (plain picklable data)."""
        return dict(self.spend)

    # ------------------------------------------------------------------
    def _maybe_fault(self, stage: str) -> None:
        spec = self._fault
        if self._fault_fired or not faults.matches(spec, stage):
            return
        self._fault_fired = True
        if spec.action == "exhaust":
            obs.inc(f"limits.exhausted.{stage}")
            raise ResourceExhausted(
                stage, self.spend.get(stage, 0), 0, kind="injected"
            )
        if spec.action == "sleep":
            # A simulated hang *inside* a checkpoint.  Sleep in slices so
            # the deadline check right after this (still in the same
            # tick) fires as soon as time is up — that is what preserves
            # per-stage attribution for hangs the governor can see.
            end = time.monotonic() + spec.seconds
            while True:
                now = time.monotonic()
                if now >= end:
                    return
                if self._deadline_at is not None and now > self._deadline_at:
                    self._clock_countdown = 0  # force this tick's check
                    return
                time.sleep(min(0.05, end - now))
        faults.fire(spec)  # raise / kill


_active: Governor | None = None

# Thread-local governor overrides.  The solver portfolio races strategy
# threads, each governed by its own deadline/budget/cancellation token;
# a process-global slot cannot express that.  ``_tl_installs`` counts
# live thread-local installs so the ubiquitous ungoverned ``tick`` stays
# one global load plus a falsy check — the ``threading.local`` lookup
# only happens while a portfolio race is actually in flight.
_tl = threading.local()
_tl_installs = 0
_tl_lock = threading.Lock()


def _resolve() -> Governor | None:
    if _tl_installs:
        governor = getattr(_tl, "governor", None)
        if governor is not None:
            return governor
    return _active


def tick(stage: str, amount: int = 1) -> None:
    """The checkpoint every solver loop head calls.  Near-free while no
    governor is active: one global load and a ``None`` check."""
    if _tl_installs:
        governor = getattr(_tl, "governor", None)
        if governor is None:
            governor = _active
    else:
        governor = _active
    if governor is not None:
        governor.tick(stage, amount)


def current_governor() -> Governor | None:
    """The governor installed by the innermost :func:`governed` block
    (a thread-local :func:`governed_here` install shadows the global)."""
    return _resolve()


@contextmanager
def governed(limits: Limits) -> Iterator[Governor]:
    """Install a :class:`Governor` for the dynamic extent of the block.

    Nested blocks shadow the outer governor (innermost wins); on exit
    the per-stage spend is folded into the obs counters
    (``limits.spend.<stage>``) so batch telemetry attributes cost.
    """
    global _active
    previous = _active
    governor = Governor(limits)
    _active = governor
    try:
        yield governor
    finally:
        _active = previous
        for stage, n in governor.spend.items():
            obs.inc(f"limits.spend.{stage}", n)


@contextmanager
def governed_here(limits: Limits,
                  *, fold_spend: bool = False) -> Iterator[Governor]:
    """Install a :class:`Governor` for the *current thread* only.

    Other threads keep seeing the process-global governor.  Used by the
    solver portfolio to give each racing strategy its own deadline and
    cancellation token, and by the batch layer when a triage attempt
    runs on a worker *thread* (``repro serve``) — the process-global
    slot of :func:`governed` is not reentrant across threads, so two
    concurrent governed blocks there could restore each other's expired
    governors.  By default spend is *not* folded into the obs counters
    on exit — the portfolio folds the winning strategy's spend into the
    ambient governor itself, so a race books the same cost a sequential
    solve would have; pass ``fold_spend=True`` to get :func:`governed`'s
    accounting (the batch-attempt case).
    """
    global _tl_installs
    previous = getattr(_tl, "governor", None)
    governor = Governor(limits)
    with _tl_lock:
        _tl_installs += 1
    _tl.governor = governor
    try:
        yield governor
    finally:
        _tl.governor = previous
        with _tl_lock:
            _tl_installs -= 1
        if fold_spend:
            for stage, n in governor.spend.items():
                obs.inc(f"limits.spend.{stage}", n)
