"""Patch splicing: apply structured edits to a program AST.

An :class:`Edit` is one concrete source change, in the vocabulary the
ISSUE/ROADMAP names:

* ``assume`` — conjoin a predicate onto the ``@assume`` of the ``havoc``
  that introduced the relevant abstraction variable (a missing library
  annotation);
* ``post`` — strengthen a loop's ``@post`` annotation (Ilinva-style
  invariant repair);
* ``guard`` — guard the final ``check(p)`` so the error cannot fire
  unless the abduced condition is violated: ``assert(!(Γ') || p)``.

:func:`apply_edits` rewrites the (frozen, immutable) AST structurally —
every node on the path to an edited statement is rebuilt, everything
else is shared — and raises :class:`SpliceError` if an edit's target
does not exist, so a stale plan can never silently produce the original
program back.  Splicing never touches concrete text: rendering the
result is :func:`repro.lang.printer.render_program`'s job, and the
repair tests assert ``parse(render(apply_edits(p, e))) ==
apply_edits(p, e)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..lang.ast import (
    Assert,
    Block,
    BoolOp,
    Havoc,
    If,
    NotPred,
    Pred,
    Program,
    Stmt,
    While,
)

__all__ = ["Edit", "SpliceError", "apply_edits", "conjoin"]


class SpliceError(ValueError):
    """An edit references a statement the program does not contain."""


@dataclass(frozen=True)
class Edit:
    """One structured source change.

    ``target`` identifies the havoc'd variable for ``assume`` edits,
    ``label`` the loop for ``post`` edits; ``span_start`` pins the exact
    havoc statement when the same variable is havocked twice.  ``line``
    is display metadata (the edited statement's source line).
    """

    kind: str                    # 'assume' | 'post' | 'guard'
    pred: Pred
    target: str | None = None    # havoc'd variable ('assume' edits)
    label: int | None = None     # loop label ('post' edits)
    span_start: int | None = None
    line: int = 0


def conjoin(old: Pred | None, new: Pred) -> Pred:
    """``old && new`` (or just ``new`` when there is nothing yet)."""
    if old is None:
        return new
    return BoolOp("&&", (old, new))


def _rewrite(stmt: Stmt, assumes: dict, posts: dict) -> Stmt:
    if isinstance(stmt, Havoc):
        for key in ((stmt.target, stmt.span.start), (stmt.target, None)):
            if key in assumes:
                preds = assumes.pop(key)
                assume = stmt.assume
                for pred in preds:
                    assume = conjoin(assume, pred)
                return Havoc(stmt.target, assume, stmt.span)
        return stmt
    if isinstance(stmt, While):
        body = _rewrite_block(stmt.body, assumes, posts)
        post = stmt.post
        if stmt.label in posts:
            for pred in posts.pop(stmt.label):
                post = conjoin(post, pred)
        if body is stmt.body and post is stmt.post:
            return stmt
        return While(stmt.cond, body, stmt.label, post, stmt.span)
    if isinstance(stmt, If):
        then_branch = _rewrite_block(stmt.then_branch, assumes, posts)
        else_branch = _rewrite_block(stmt.else_branch, assumes, posts)
        if then_branch is stmt.then_branch \
                and else_branch is stmt.else_branch:
            return stmt
        return If(stmt.cond, then_branch, else_branch, stmt.span)
    if isinstance(stmt, Block):
        return _rewrite_block(stmt, assumes, posts)
    return stmt


def _rewrite_block(block: Block, assumes: dict, posts: dict) -> Block:
    body = tuple(_rewrite(s, assumes, posts) for s in block.body)
    if all(new is old for new, old in zip(body, block.body)):
        return block
    return Block(body, block.span)


def apply_edits(program: Program, edits: Sequence[Edit]) -> Program:
    """Apply every edit; unmatched edits raise :class:`SpliceError`."""
    assumes: dict[tuple[str, int | None], list[Pred]] = {}
    posts: dict[int, list[Pred]] = {}
    guards: list[Pred] = []
    for edit in edits:
        if edit.kind == "assume":
            if edit.target is None:
                raise SpliceError("assume edit needs a havoc target")
            key = (edit.target, edit.span_start)
            assumes.setdefault(key, []).append(edit.pred)
        elif edit.kind == "post":
            if edit.label is None:
                raise SpliceError("post edit needs a loop label")
            posts.setdefault(edit.label, []).append(edit.pred)
        elif edit.kind == "guard":
            guards.append(edit.pred)
        else:
            raise SpliceError(f"unknown edit kind {edit.kind!r}")

    body = _rewrite_block(program.body, assumes, posts)
    if assumes:
        target, start = next(iter(assumes))
        raise SpliceError(
            f"no havoc of {target!r}"
            + (f" at offset {start}" if start is not None else "")
        )
    if posts:
        raise SpliceError(f"no loop labeled {next(iter(posts))}")

    check = program.check
    if guards:
        condition = guards[0]
        for extra in guards[1:]:
            condition = conjoin(condition, extra)
        check = Assert(
            BoolOp("||", (NotPred(condition), program.check.pred)),
            program.check.span,
        )
    return Program(
        name=program.name,
        params=program.params,
        locals=program.locals,
        body=body,
        check=check,
        span=program.span,
        source=None,  # the original text no longer describes this AST
    )
