"""From logic formulas back to source-level predicates.

The analysis compiles source predicates *down* to formulas over
analysis variables (:mod:`repro.analysis.transformer`); repair needs the
inverse direction: an abduced proof obligation Γ is a formula over
``alpha``/``nu`` variables, and a patch must state it in the program's
own vocabulary so the front end can compile it right back.

:func:`formula_to_pred` performs that translation under an explicit
variable→program-name mapping (provenance decides the mapping — see
:mod:`repro.repair.candidates`).  The translation is partial by design:

* ``Dvd`` atoms and quantifiers have no surface syntax — ``None``;
* a free variable absent from the mapping has no program name at the
  placement site — ``None``.

Rendered comparisons keep every literal non-negative (the grammar has
no negative constants): an atom ``t <= 0`` splits ``t`` into its
positive and negated-negative halves, ``L <= R``.
"""

from __future__ import annotations

from typing import Mapping

from ..lang.ast import (
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Name,
    NotPred,
    Pred,
)
from ..lang.ast import BinOp
from ..logic.formulas import And, Atom, Dvd, Formula, Not, Or, Rel
from ..logic.terms import LinTerm, Var

__all__ = ["formula_to_pred", "term_to_sides"]

_REL_OPS = {Rel.LE: "<=", Rel.EQ: "==", Rel.NE: "!="}


def _sum(parts: list[Expr]) -> Expr:
    if not parts:
        return Const(0)
    total = parts[0]
    for part in parts[1:]:
        total = BinOp("+", total, part)
    return total


def term_to_sides(term: LinTerm,
                  names: Mapping[Var, str]) -> tuple[Expr, Expr] | None:
    """Split an affine term into ``(left, right)`` with ``term = left -
    right`` and only non-negative literals on either side.  ``None``
    when a variable has no program name in ``names``."""
    left: list[Expr] = []
    right: list[Expr] = []
    for var, coeff in term.coeffs:
        name = names.get(var)
        if name is None:
            return None
        side, magnitude = (left, coeff) if coeff > 0 else (right, -coeff)
        if magnitude == 1:
            side.append(Name(name))
        else:
            side.append(BinOp("*", Const(magnitude), Name(name)))
    if term.const > 0:
        left.append(Const(term.const))
    elif term.const < 0:
        right.append(Const(-term.const))
    return _sum(left), _sum(right)


def formula_to_pred(phi: Formula,
                    names: Mapping[Var, str]) -> Pred | None:
    """Translate a quantifier-free formula into a source predicate under
    ``names``, or ``None`` when it cannot be expressed."""
    if phi.is_true:
        return BoolConst(True)
    if phi.is_false:
        return BoolConst(False)
    if isinstance(phi, Atom):
        sides = term_to_sides(phi.term, names)
        if sides is None:
            return None
        return Cmp(_REL_OPS[phi.rel], sides[0], sides[1])
    if isinstance(phi, Dvd):
        return None  # no divisibility syntax in the source language
    if isinstance(phi, Not):
        inner = formula_to_pred(phi.arg, names)
        if inner is None:
            return None
        return NotPred(inner)
    if isinstance(phi, (And, Or)):
        parts = []
        for arg in phi.args:
            part = formula_to_pred(arg, names)
            if part is None:
                return None
            parts.append(part)
        op = "&&" if isinstance(phi, And) else "||"
        return BoolOp(op, tuple(parts))
    return None  # quantifiers have no surface syntax
