"""From an abduced formula to placed edit plans.

Given a candidate formula ψ (an abduced Γ, or the conjunction of facts a
diagnosis session learned), this module decides *where* in the source ψ
belongs, using the provenance the analysis records for every variable
(:class:`~repro.analysis.transformer.AbstractionInfo`):

* a CNF clause whose only abstraction variable came from a ``havoc``
  goes onto that havoc's ``@assume`` — the paper's missing library
  annotation, restored;
* a clause whose abstraction variables all belong to one loop
  strengthens that loop's ``@post`` — Ilinva's abduction-to-invariant
  move;
* anything else (products, mixed provenance) falls back to a guard on
  the final ``check``, whose variable mapping comes from the *final*
  symbolic store: a program variable maps an analysis variable exactly
  when its value set at the check site is that variable, unguarded.

Each placement is only a *plan*; :mod:`repro.repair.synthesize` verifies
every plan by re-running the front end and the entailment stage on the
patched program, so a wrong mapping is rejected, never shipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..analysis import AnalysisResult
from ..lang.ast import Assign, Havoc, Program
from ..logic.formulas import Formula, conj
from ..logic.normal_forms import cnf_clauses
from ..logic.formulas import disj
from ..logic.terms import Var
from .splice import Edit
from .translate import formula_to_pred

__all__ = [
    "Plan",
    "final_bindings",
    "plan_placements",
    "stable_inputs",
]


@dataclass(frozen=True)
class Plan:
    """One placed patch candidate: the formula plus its edits."""

    formula: Formula
    kind: str                   # 'targeted' | 'guard'
    edits: tuple[Edit, ...]


def stable_inputs(program: Program,
                  analysis: AnalysisResult) -> dict[Var, str]:
    """Input variables whose parameter is never reassigned or havocked
    — their program name denotes the same value at every point, so any
    placement site may mention them."""
    mutated = {
        stmt.target
        for stmt in program.body.walk()
        if isinstance(stmt, (Assign, Havoc))
    }
    return {
        var: name
        for name, var in analysis.input_vars.items()
        if name not in mutated
    }


def final_bindings(analysis: AnalysisResult) -> dict[Var, str]:
    """Analysis variables a program name denotes *at the check site*:
    the name's final value set must be exactly that variable with an
    unconditional guard.  This is the guard placement's vocabulary —
    it can reach loop, havoc, product and input variables alike."""
    bound: dict[Var, str] = {}
    for name in sorted(analysis.store):
        value_set = analysis.store[name]
        if len(value_set.entries) != 1:
            continue
        term, guard = value_set.entries[0]
        if not guard.is_true or term.const != 0:
            continue
        if len(term.coeffs) != 1:
            continue
        var, coeff = term.coeffs[0]
        if coeff == 1 and var not in bound:
            bound[var] = name
    return bound


def _clause_site(clause_vars: frozenset[Var], analysis: AnalysisResult,
                 inputs: dict[Var, str]) -> tuple[str, Any] | None:
    """The most specific placement for a clause: ``('assume', info)``,
    ``('post', label)`` or ``None`` (guard fallback)."""
    abstractions = [v for v in clause_vars if v not in inputs]
    if not abstractions:
        return None  # pure input facts have no introduction site
    infos = []
    for v in abstractions:
        meta = analysis.info.get(v)
        if meta is None:
            return None
        infos.append(meta)
    if len(infos) == 1 and infos[0].kind == "havoc" \
            and infos[0].program_var is not None:
        return "assume", infos[0]
    labels = {info.label for info in infos}
    if all(info.kind == "loop" and info.program_var is not None
           for info in infos) and len(labels) == 1:
        return "post", labels.pop()
    return None


def _find_havoc(program: Program, info) -> Havoc | None:
    """The havoc statement that introduced ``info``'s variable."""
    for stmt in program.body.walk():
        if isinstance(stmt, Havoc) and stmt.target == info.program_var:
            if info.span is None or stmt.span.start == info.span.start:
                return stmt
    return None


def _guard_edit(formula: Formula, analysis: AnalysisResult,
                inputs: dict[Var, str],
                program: Program) -> Edit | None:
    names = dict(final_bindings(analysis))
    names.update(inputs)
    pred = formula_to_pred(formula, names)
    if pred is None:
        return None
    return Edit(kind="guard", pred=pred,
                line=program.check.span.line)


def plan_placements(program: Program, analysis: AnalysisResult,
                    formula: Formula) -> list[Plan]:
    """Every placement plan for ``formula``, most targeted first.

    Produces at most two plans: the provenance-targeted partition of
    the formula's CNF clauses (when at least one clause lands on a
    havoc or loop), and the whole-formula guard fallback.
    """
    inputs = stable_inputs(program, analysis)
    plans: list[Plan] = []

    clauses = [disj(*lits) for lits in cnf_clauses(formula)]
    edits: list[Edit] = []
    leftovers: list[Formula] = []
    targeted = True
    for clause in clauses:
        site = _clause_site(clause.free_vars(), analysis, inputs)
        edit = None
        if site is not None and site[0] == "assume":
            info = site[1]
            havoc = _find_havoc(program, info)
            if havoc is not None:
                names = {info.var: info.program_var, **inputs}
                pred = formula_to_pred(clause, names)
                if pred is not None:
                    edit = Edit(kind="assume", pred=pred,
                                target=havoc.target,
                                span_start=havoc.span.start,
                                line=havoc.span.line)
        elif site is not None and site[0] == "post":
            label = site[1]
            try:
                loop = program.loop_by_label(label)
            except KeyError:
                loop = None
            if loop is not None:
                names = {
                    v: analysis.info[v].program_var
                    for v in clause.free_vars()
                    if v in analysis.info
                    and analysis.info[v].program_var is not None
                }
                names.update(inputs)
                pred = formula_to_pred(clause, names)
                if pred is not None:
                    edit = Edit(kind="post", pred=pred, label=label,
                                line=loop.span.line)
        if edit is not None:
            edits.append(edit)
        else:
            leftovers.append(clause)
    if not edits:
        targeted = False  # everything fell through: guard-only below
    elif leftovers:
        leftover_guard = _guard_edit(conj(*leftovers), analysis,
                                     inputs, program)
        if leftover_guard is None:
            targeted = False  # partial placement cannot be completed
        else:
            edits.append(leftover_guard)
    if targeted:
        plans.append(Plan(formula=formula, kind="targeted",
                          edits=tuple(edits)))

    whole_guard = _guard_edit(formula, analysis, inputs, program)
    if whole_guard is not None:
        plans.append(Plan(formula=formula, kind="guard",
                          edits=(whole_guard,)))
    return plans
