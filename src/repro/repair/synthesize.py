"""Repair synthesis: abduced formulas → ranked, verified patches.

The pipeline (ARGIR's Abduction v2 recipe — minimal premise,
consistency guard, re-check after patch):

1. **Candidates.** The weakest minimum proof obligation Γ for the
   judgment ``(I, φ)`` (via the cached :func:`abduce_stage`), plus —
   when a diagnosis session is available — the conjunction of facts the
   oracle affirmed (every YES invariant clause, every negated NO
   witness clause).  Both satisfy ``I ∧ ψ |= φ``, so a faithful
   placement is a discharge by construction.
2. **Consistency guard.** A candidate with ``UNSAT(I ∧ ψ)`` would
   "repair" the program by making its axioms contradictory; it is
   rejected before any splicing (``repair.rejected.inconsistent``).
3. **Placement.** :func:`repro.repair.candidates.plan_placements` maps
   CNF clauses onto havoc ``@assume``s, loop ``@post``s (Ilinva), or a
   check-site guard.
4. **Verification.** Every plan is spliced, rendered, re-parsed,
   re-annotated and re-analyzed — the byte-identical front end — and
   accepted only if the *patched* judgment discharges outright
   (:func:`entail_stage`: consistent and Lemma 1).  No trust in the
   mapping, only in the re-run.
5. **Ranking.** The paper's cost order: fewest variables, then smallest
   formula, then the more targeted placement.

Synthesis is content-addressed like every other stage: the patch list
is keyed by ``(I, φ, candidate digests, source digest, config)`` under
the ``repair`` stage, so warm re-runs and the serve coalescing path get
patches without re-verifying.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field

from .. import obs
from ..abstract import annotate_program
from ..analysis import AnalysisResult, analyze_program
from ..cache import current_store
from ..diagnosis.abduction import Abducer
from ..diagnosis.queries import Answer
from ..diagnosis.stages import (
    STAGE_VERSION,
    abduce_stage,
    config_fingerprint,
)
from ..lang import Program, parse_program, render_pred, render_program
from ..logic.digest import digest, digest_many, digest_text
from ..logic.formulas import Formula, conj, neg
from ..logic.serialize import formula_from_obj, formula_to_obj
from ..obs import provenance as prov
from ..schema import (
    EXIT_DEGRADED,
    EXIT_OK,
    EXIT_REAL_BUG,
    TriageVerdict,
    dump_json,
    envelope,
)
from .candidates import Plan, plan_placements
from .splice import apply_edits

__all__ = [
    "REPAIR_VERSION",
    "RepairPatch",
    "RepairResult",
    "learned_facts",
    "synthesize_repairs",
]

#: Version of the repair artifact format; folded into the cache key so a
#: change to patch generation invalidates recorded patch lists wholesale.
REPAIR_VERSION = "r1"


# ---------------------------------------------------------------------------
# result types
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EditRecord:
    """Serializable view of one applied edit (see ``docs/API.md``)."""

    kind: str                  # 'assume' | 'post' | 'guard'
    pred: str                  # the inserted predicate, source syntax
    line: int                  # line of the edited statement
    target: str | None = None  # havoc'd variable ('assume')
    label: int | None = None   # loop label ('post')

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind, "pred": self.pred,
                         "line": self.line}
        if self.target is not None:
            payload["target"] = self.target
        if self.label is not None:
            payload["label"] = self.label
        return payload


@dataclass(frozen=True)
class RepairPatch:
    """One candidate patch, verified or rejected."""

    rank: int
    kind: str                      # 'targeted' | 'guard'
    formula: Formula               # the placed condition ψ
    edits: tuple[EditRecord, ...]
    diff: str                      # unified diff, canonical renderings
    patched_source: str            # full patched program text
    verified: bool
    rejected: str | None           # 'inconsistent' | 'not-discharged'
    cost: tuple[int, int]          # (variables, formula size)

    @property
    def gamma_digest(self) -> str:
        return digest(self.formula)

    def to_dict(self) -> dict:
        return {
            "rank": self.rank,
            "kind": self.kind,
            "formula": str(self.formula),
            "gamma_digest": self.gamma_digest,
            "cost": {"variables": self.cost[0], "size": self.cost[1]},
            "verified": self.verified,
            **({"rejected": self.rejected} if self.rejected else {}),
            "edits": [e.to_dict() for e in self.edits],
            "diff": self.diff,
            "patched_source": self.patched_source,
        }

    def to_json(self, *, indent: int | None = None) -> str:
        return dump_json(self.to_dict(), indent=indent)


@dataclass
class RepairResult:
    """Outcome of ``Pipeline.repair``: the triage verdict plus the
    ranked patch list (the envelope's additive ``repairs`` block)."""

    program: str
    verdict: TriageVerdict
    patches: tuple[RepairPatch, ...] = ()
    already_clean: bool = False
    note: str | None = None
    num_queries: int | None = None   # of the underlying diagnosis
    telemetry: dict | None = None
    cache: dict | None = None

    @property
    def triage_verdict(self) -> TriageVerdict:
        return self.verdict

    @property
    def verified_count(self) -> int:
        return sum(1 for p in self.patches if p.verified)

    @property
    def best(self) -> RepairPatch | None:
        """The rank-1 verified patch, if any."""
        for patch in self.patches:
            if patch.verified:
                return patch
        return None

    @property
    def exit_status(self) -> int:
        """The documented contract: 0 = verified patch found (or the
        report was already clean), 1 = real bug / no patch, 3 =
        degraded."""
        if self.verdict is TriageVerdict.UNKNOWN_RESOURCE:
            return EXIT_DEGRADED
        if self.verdict is TriageVerdict.REAL_BUG:
            return EXIT_REAL_BUG
        if self.already_clean or self.verified_count:
            return EXIT_OK
        return EXIT_REAL_BUG

    def to_dict(self) -> dict:
        """The stable ``repro.result`` payload (see docs/API.md)."""
        return envelope(
            "repair",
            self.verdict,
            program=self.program,
            already_clean=self.already_clean or None,
            verified_patches=self.verified_count,
            repairs=[p.to_dict() for p in self.patches],
            note=self.note,
            num_queries=self.num_queries,
            telemetry=self.telemetry,
            cache=self.cache,
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return dump_json(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# candidates
# ---------------------------------------------------------------------------

def learned_facts(session) -> list[Formula]:
    """Every fact a diagnosis session learned from its oracle: affirmed
    invariant clauses and negations of refuted witness clauses."""
    facts: list[Formula] = []
    for interaction in session.interactions:
        if interaction.query.kind == "invariant" \
                and interaction.answer is Answer.YES:
            facts.append(interaction.query.formula)
        elif interaction.query.kind == "witness" \
                and interaction.answer is Answer.NO:
            facts.append(neg(interaction.query.formula))
    return facts


def _candidate_formulas(analysis: AnalysisResult, config, solver,
                        session) -> list[Formula]:
    candidates: list[Formula] = []
    abducer = Abducer(
        msa_strategy=config.msa_strategy,
        use_simplification=config.use_simplification,
        solver=solver,
    )
    gamma, _ = abduce_stage(
        abducer, config, analysis.invariants, analysis.success,
        store=current_store(),
    )
    if gamma is not None:
        candidates.append(gamma.formula)
    if session is not None:
        facts = learned_facts(session)
        if facts:
            candidates.append(conj(*facts))
    seen: set[str] = set()
    unique: list[Formula] = []
    for psi in candidates:
        if psi.is_true or psi.is_false:
            continue
        key = digest(psi)
        if key not in seen:
            seen.add(key)
            unique.append(psi)
    return unique


# ---------------------------------------------------------------------------
# verification
# ---------------------------------------------------------------------------

def _verify(patched: Program, solver, store) -> tuple[str | None, str]:
    """Render, re-parse, re-annotate, re-analyze, re-entail (Lemma 1).

    Returns ``(rejection_reason_or_None, patched_source)``.  The reason
    is ``'inconsistent'`` when the patched axioms are UNSAT (the
    post-splice half of the consistency guard) and ``'not-discharged'``
    when the patched judgment still does not close.
    """
    from ..diagnosis.stages import entail_stage

    source = render_program(patched)
    reparsed = annotate_program(parse_program(source))
    analysis = analyze_program(reparsed)
    outcome = entail_stage(solver, analysis.invariants,
                           analysis.success, store=store)
    if not outcome.consistent:
        return "inconsistent", source
    if outcome.discharged:
        return None, source
    return "not-discharged", source


def _diff(name: str, original: str, patched: str) -> str:
    return "".join(difflib.unified_diff(
        original.splitlines(keepends=True),
        patched.splitlines(keepends=True),
        fromfile=f"a/{name}.err", tofile=f"b/{name}.err",
    ))


def _edit_records(plan: Plan) -> tuple[EditRecord, ...]:
    return tuple(
        EditRecord(kind=e.kind, pred=render_pred(e.pred), line=e.line,
                   target=e.target, label=e.label)
        for e in plan.edits
    )


# ---------------------------------------------------------------------------
# cache (de)serialization
# ---------------------------------------------------------------------------

def _patch_to_artifact(patch: RepairPatch) -> dict:
    return {
        "kind": patch.kind,
        "formula": formula_to_obj(patch.formula),
        "edits": [e.to_dict() for e in patch.edits],
        "diff": patch.diff,
        "patched_source": patch.patched_source,
        "verified": patch.verified,
        "rejected": patch.rejected,
        "cost": list(patch.cost),
    }


def _patch_from_artifact(rank: int, artifact: dict) -> RepairPatch:
    return RepairPatch(
        rank=rank,
        kind=artifact["kind"],
        formula=formula_from_obj(artifact["formula"]),
        edits=tuple(
            EditRecord(kind=e["kind"], pred=e["pred"], line=e["line"],
                       target=e.get("target"), label=e.get("label"))
            for e in artifact["edits"]
        ),
        diff=artifact["diff"],
        patched_source=artifact["patched_source"],
        verified=artifact["verified"],
        rejected=artifact["rejected"],
        cost=(artifact["cost"][0], artifact["cost"][1]),
    )


def _record_prov(patches: list[RepairPatch], candidates: int) -> None:
    if not prov.is_enabled():
        return
    prov.record("repair", candidates=candidates, patches=len(patches),
                verified=sum(1 for p in patches if p.verified))
    for patch in patches:
        prov.record(
            "repair-patch", rank=patch.rank, patch_kind=patch.kind,
            formula=prov.fmla(patch.formula), verified=patch.verified,
            rejected=patch.rejected, edits=len(patch.edits),
        )


# ---------------------------------------------------------------------------
# the synthesis stage
# ---------------------------------------------------------------------------

def synthesize_repairs(program: Program, analysis: AnalysisResult, *,
                       config=None, solver=None, session=None,
                       max_patches: int | None = None
                       ) -> list[RepairPatch]:
    """The ranked patch list for one non-real-bug report.

    ``program`` must be the (annotated) program ``analysis`` describes;
    ``session`` optionally contributes the facts a diagnosis session
    learned.  Patches come back ranked — verified ones first, by the
    paper's cost order — and truncated to ``max_patches``.
    """
    from ..diagnosis import EngineConfig
    from ..smt import SmtSolver

    config = config or EngineConfig()
    solver = solver or SmtSolver()
    store = current_store()

    with obs.span("repair.synthesize"):
        candidates = _candidate_formulas(analysis, config, solver,
                                         session)
        obs.inc("repair.candidates", len(candidates))

        original = render_program(program)
        key = None
        if store is not None:
            key = digest_many(
                "repair", STAGE_VERSION, REPAIR_VERSION,
                config_fingerprint(config), digest_text(original),
                analysis.invariants, analysis.success,
                "C", *candidates,
            )
            artifact = store.get("repair", key)
            if artifact is not None:
                patches = [
                    _patch_from_artifact(rank, entry)
                    for rank, entry in enumerate(artifact["patches"], 1)
                ]
                _record_prov(patches, len(candidates))
                return patches[:max_patches]

        raw: list[RepairPatch] = []
        for psi in candidates:
            plans = plan_placements(program, analysis, psi)
            if not plans:
                obs.inc("repair.rejected.inexpressible")
                continue
            # the ARGIR consistency guard: a condition contradicting the
            # axioms must never be spliced in, however well it "proves"
            # the obligation (UNSAT premises prove anything)
            consistent = solver.is_sat(conj(analysis.invariants, psi))
            cost = (len(psi.free_vars()), psi.size())
            for plan in plans:
                obs.inc("repair.plans")
                if not consistent:
                    obs.inc("repair.rejected.inconsistent")
                    raw.append(RepairPatch(
                        rank=0, kind=plan.kind, formula=psi,
                        edits=_edit_records(plan), diff="",
                        patched_source="", verified=False,
                        rejected="inconsistent", cost=cost,
                    ))
                    continue
                patched = apply_edits(program, plan.edits)
                rejected, source = _verify(patched, solver, store)
                if rejected is None:
                    obs.inc("repair.verified")
                elif rejected == "inconsistent":
                    obs.inc("repair.rejected.inconsistent")
                else:
                    obs.inc("repair.rejected.unverified")
                raw.append(RepairPatch(
                    rank=0, kind=plan.kind, formula=psi,
                    edits=_edit_records(plan),
                    diff=_diff(program.name, original, source),
                    patched_source=source,
                    verified=rejected is None, rejected=rejected,
                    cost=cost,
                ))

        kind_order = {"targeted": 0, "guard": 1}
        raw.sort(key=lambda p: (
            not p.verified, p.cost[0], p.cost[1],
            kind_order.get(p.kind, 2), p.gamma_digest,
        ))
        patches = [
            RepairPatch(rank=rank, kind=p.kind, formula=p.formula,
                        edits=p.edits, diff=p.diff,
                        patched_source=p.patched_source,
                        verified=p.verified, rejected=p.rejected,
                        cost=p.cost)
            for rank, p in enumerate(raw, 1)
        ]
        if store is not None and key is not None:
            store.put("repair", key, {
                "patches": [_patch_to_artifact(p) for p in patches],
            })
        _record_prov(patches, len(candidates))
        return patches[:max_patches]
