"""Abductive repair synthesis (ROADMAP item 1).

From "is this a real bug?" to "here is the minimal verified fix": the
weakest minimum proof obligation Γ the diagnosis engine computes *is* a
missing-precondition patch, and this package places it back into the
source — as a ``havoc`` ``@assume`` (the paper's missing library
annotation), a strengthened loop ``@post`` (Ilinva's
abduction-to-invariant move), or a guard on the final ``check`` — then
proves every candidate by re-running the whole front end and the
entailment stage on the patched program (Lemma 1 discharge).

Layers:

* :mod:`repro.repair.translate` — logic formulas → source predicates;
* :mod:`repro.repair.candidates` — provenance-driven placement plans;
* :mod:`repro.repair.splice` — structural AST edits;
* :mod:`repro.repair.synthesize` — consistency guard, verification,
  the paper's cost ranking, content-addressed caching, and the
  :class:`RepairPatch` / :class:`RepairResult` result types.

Entry points: ``Pipeline.repair(...)`` (:mod:`repro.api`), the ``repro
repair`` CLI subcommand, and the daemon's ``repair: true`` submission
flag + ``GET /v1/jobs/<id>/patches`` route.
"""

from __future__ import annotations

from .candidates import Plan, final_bindings, plan_placements, \
    stable_inputs
from .splice import Edit, SpliceError, apply_edits
from .synthesize import (
    REPAIR_VERSION,
    EditRecord,
    RepairPatch,
    RepairResult,
    learned_facts,
    synthesize_repairs,
)
from .translate import formula_to_pred

__all__ = [
    "Edit",
    "EditRecord",
    "Plan",
    "REPAIR_VERSION",
    "RepairPatch",
    "RepairResult",
    "SpliceError",
    "apply_edits",
    "final_bindings",
    "formula_to_pred",
    "learned_facts",
    "plan_placements",
    "stable_inputs",
    "synthesize_repairs",
]
