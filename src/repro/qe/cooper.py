"""Cooper's quantifier elimination for Presburger arithmetic.

Lemmas 3 and 5 of the paper compute weakest minimum proof obligations and
failure witnesses by eliminating universal quantifiers from
``forall V'. (I => phi)`` — this module provides that elimination.  It is
also the fallback that lets the SMT layer decide quantified formulas.

The procedure eliminates one existential variable at a time:

1. equality/disequality atoms over the variable are rewritten into
   (tightened) inequalities, so only ``<=`` and divisibility atoms mention
   the variable;
2. coefficients on the variable are normalized to +-1 by conceptually
   substituting ``x' = delta * x`` (adding the divisibility constraint
   ``delta | x'``);
3. the classic Cooper disjunction is produced over either the lower-bound
   or the upper-bound test points — whichever set is smaller — together
   with the "infinite" disjunct whose only occurrences of the variable are
   in divisibility atoms.

Universal quantifiers are handled by duality.  All formula construction
goes through the normalizing smart constructors, which keeps the output
reasonably small before any contextual simplification.
"""

from __future__ import annotations

from collections import OrderedDict

from .. import obs
from .. import limits as _limits
from ..limits import ResourceExhausted
from ..obs import provenance as prov
from ..logic.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Dvd,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Rel,
    atom,
    conj,
    disj,
    dvd,
    exists,
    forall,
    map_atoms,
    neg,
)
from ..logic.digest import digest, digest_many
from ..logic.intern import register_table
from ..logic.normal_forms import dnf_clauses, nnf
from ..logic.serialize import formula_from_obj, formula_to_obj
from ..logic.terms import LinTerm, Var, lcm, lcm_all


#: Backwards-compatible alias: QE node-budget overruns now raise the
#: unified :class:`repro.limits.ResourceExhausted` (stage ``"qe"``,
#: ``kind="nodes"``), so existing handlers keep working.
QeBudgetExceeded = ResourceExhausted


# Persistent, bounded caches keyed by *content digest*.  Elimination
# results and clause-satisfiability verdicts are pure functions of their
# inputs, so both survive across calls (the abduction loop re-eliminates
# the same variable from near-identical clause sets round after round).
# Digest keys — unlike the identity/salted-hash keys they replaced —
# also survive ``clear_intern_tables()``, pickle round-trips and (via
# the optional on-disk store, see :mod:`repro.cache`) process restarts.
_ELIM_CACHE_SIZE = 8_192
_elim_cache: OrderedDict[str, Formula] = OrderedDict()
_CLAUSE_SAT_CACHE_SIZE = 65_536
_clause_sat_cache: OrderedDict[str, bool] = OrderedDict()

# First-level caches keyed on the hash-consed nodes themselves.  They
# answer repeat queries within one intern-table generation without
# computing a content digest (the digest walk is pure overhead once the
# result is in memory).  Registered as intern tables so the memory valve
# clears them together with the nodes they key on.
_elim_fast: dict[tuple[Var, Formula], Formula] = \
    register_table("qe.elim_fast", {})
_clause_sat_fast: dict[frozenset, bool] = \
    register_table("qe.clause_sat_fast", {})


def _store():
    """The active persistent store, if any (lazy import: layering)."""
    from ..cache import current_store

    return current_store()


def clear_qe_caches() -> None:
    """Drop the persistent QE caches (a memory valve; purely optional)."""
    _elim_cache.clear()
    _clause_sat_cache.clear()
    _elim_fast.clear()
    _clause_sat_fast.clear()


def eliminate_quantifiers(phi: Formula, *, size_budget: int = 2_000_000) -> Formula:
    """Eliminate every quantifier in ``phi`` (innermost first)."""
    counter = _Budget(size_budget)
    with obs.span("qe.eliminate_quantifiers"):
        return _eliminate(phi, counter)


def eliminate_exists(variables: list[Var], body: Formula,
                     *, size_budget: int = 2_000_000) -> Formula:
    """Quantifier-free equivalent of ``exists variables. body`` (body QF)."""
    counter = _Budget(size_budget)
    with obs.span("qe.eliminate_exists", vars=len(variables)):
        return _eliminate_block(list(variables), nnf(body), counter)


def eliminate_forall(variables: list[Var], body: Formula,
                     *, size_budget: int = 2_000_000) -> Formula:
    """Quantifier-free equivalent of ``forall variables. body`` (body QF)."""
    return neg(eliminate_exists(variables, neg(body),
                                size_budget=size_budget))


def project(phi: Formula, keep: set[Var],
            *, size_budget: int = 2_000_000) -> Formula:
    """Existentially project ``phi`` onto ``keep``."""
    drop = [v for v in phi.free_vars() if v not in keep]
    return eliminate_exists(drop, phi, size_budget=size_budget)


def decide_closed(phi: Formula) -> bool:
    """Decide a closed Presburger formula."""
    result = eliminate_quantifiers(phi)
    if result.is_true:
        return True
    if result.is_false:
        return False
    if result.free_vars():
        raise ValueError(f"formula is not closed: {phi}")
    return result.evaluate({})


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.used = 0

    def charge(self, amount: int) -> None:
        _limits.tick("qe", amount)
        self.used += amount
        if self.used > self.limit:
            raise ResourceExhausted(
                "qe", self.used, self.limit, kind="nodes",
                message=f"quantifier elimination exceeded {self.limit} nodes",
            )


def _eliminate(phi: Formula, budget: _Budget) -> Formula:
    if isinstance(phi, (Atom, Dvd)) or phi.is_true or phi.is_false:
        return phi
    if isinstance(phi, And):
        return conj(*(_eliminate(a, budget) for a in phi.args))
    if isinstance(phi, Or):
        return disj(*(_eliminate(a, budget) for a in phi.args))
    if isinstance(phi, Not):
        return neg(_eliminate(phi.arg, budget))
    if isinstance(phi, Exists):
        body = _eliminate(phi.body, budget)
        return _eliminate_block(list(phi.variables), nnf(body), budget)
    if isinstance(phi, Forall):
        body = _eliminate(phi.body, budget)
        inner = _eliminate_block(
            list(phi.variables), nnf(neg(body)), budget
        )
        return neg(inner)
    raise TypeError(f"unexpected formula node: {phi!r}")


def _eliminate_block(variables: list[Var], body: Formula,
                     budget: _Budget) -> Formula:
    """Eliminate a block of existential variables from a QF NNF body.

    Works clause-wise: the body is put in DNF (``exists`` distributes over
    disjunction), each variable is eliminated from each clause separately,
    and clauses that the Omega test refutes are pruned between rounds.
    This keeps intermediate formulas small — eliminating from a whole
    formula multiplies its size per variable, while eliminating from a
    conjunction of literals yields a new small DNF.
    """
    remaining = [v for v in variables if v in body.free_vars()]
    if not remaining:
        return body
    try:
        clauses = dnf_clauses(body, limit=500_000)
    except MemoryError as exc:
        raise ResourceExhausted(
            "qe", kind="nodes", message="DNF conversion overflow in QE"
        ) from exc
    clauses = _prune_clauses(clauses, budget)

    while remaining:
        # count every remaining variable's literal occurrences in one
        # pass over the clauses (per-variable passes were the hottest
        # spot of the whole elimination on the Figure-7 workloads)
        if len(remaining) == 1:
            v = remaining[0]
        else:
            counts = dict.fromkeys(remaining, 0)
            for clause in clauses:
                for a in clause:
                    for u in a.free_vars():
                        if u in counts:
                            counts[u] += 1
            v = min(remaining, key=lambda u: (counts[u], u.name))
        remaining.remove(v)
        new_clauses: list[list[Formula]] = []
        for clause in clauses:
            if not any(v in a.free_vars() for a in clause):
                new_clauses.append(clause)
                continue
            eliminated = _eliminate_one(v, conj(*clause), budget)
            try:
                new_clauses.extend(dnf_clauses(eliminated, limit=500_000))
            except MemoryError as exc:
                raise ResourceExhausted(
                    "qe", kind="nodes", message="DNF overflow in QE"
                ) from exc
        clauses = _prune_clauses(new_clauses, budget)
        if remaining:
            occurring: set[Var] = set()
            for clause in clauses:
                for a in clause:
                    occurring |= a.free_vars()
            remaining = [u for u in remaining if u in occurring]
    return disj(*(conj(*clause) for clause in clauses))


def _clause_satisfied(clause: list[Formula], model: dict) -> bool:
    """Does ``model`` (missing variables read as 0) satisfy every literal?"""
    for a in clause:
        term = a.term
        value = term.const
        for v, c in term.coeffs:
            mv = model.get(v)
            if mv:
                value += c * mv
        if isinstance(a, Atom):
            rel = a.rel
            if rel is Rel.LE:
                if value > 0:
                    return False
            elif rel is Rel.EQ:
                if value != 0:
                    return False
            elif value == 0:
                return False
        else:
            assert isinstance(a, Dvd)
            if (value % a.divisor == 0) == a.negated_flag:
                return False
    return True


#: Recent witness models found while pruning; a handful suffices because
#: sibling clauses of one elimination round mostly agree on a satisfying
#: assignment (often all-zeros).  Trying them first skips both the digest
#: computation and the Omega call for the common satisfiable clause.
_RECENT_MODELS_MAX = 4
_recent_models: list[dict] = [{}]


def _prune_clauses(clauses: list[list[Formula]],
                   budget: _Budget) -> list[list[Formula]]:
    """Drop theory-unsatisfiable and duplicate clauses."""
    from ..lia import OmegaSolver  # lia is below qe in the layering

    solver = OmegaSolver()
    cache = _clause_sat_cache
    kept: list[list[Formula]] = []
    seen: set[frozenset[Formula]] = set()
    for clause in clauses:
        dedup = frozenset(clause)
        if dedup in seen:
            continue
        seen.add(dedup)
        budget.charge(len(clause) + 1)
        if any(_clause_satisfied(clause, m) for m in _recent_models):
            obs.inc("qe.clause_sat.model_hit")
            kept.append(clause)
            continue
        fast = _clause_sat_fast.get(dedup)
        if fast is not None:
            obs.inc("qe.clause_sat.hit")
            if fast:
                kept.append(clause)
            continue
        key = digest_many("clause_sat", *sorted(digest(a) for a in dedup))
        sat = cache.get(key)
        if sat is None:
            store = _store()
            artifact = store.get("qe-clause-sat", key) \
                if store is not None else None
            if artifact is not None:
                obs.inc("qe.clause_sat.hit")
                sat = bool(artifact["sat"])
            else:
                obs.inc("qe.clause_sat.miss")
                model = solver.solve_literals(clause)
                sat = model is not None
                if sat and dict(model) not in _recent_models:
                    _recent_models.insert(0, dict(model))
                    del _recent_models[_RECENT_MODELS_MAX:]
                if store is not None:
                    store.put("qe-clause-sat", key, {"sat": sat})
            cache[key] = sat
            if len(cache) > _CLAUSE_SAT_CACHE_SIZE:
                cache.popitem(last=False)
        else:
            obs.inc("qe.clause_sat.hit")
            cache.move_to_end(key)
        if len(_clause_sat_fast) < _CLAUSE_SAT_CACHE_SIZE:
            _clause_sat_fast[dedup] = sat
        if sat:
            kept.append(clause)
    return kept


def _eliminate_one(x: Var, phi: Formula, budget: _Budget) -> Formula:
    """Cooper elimination of ``exists x`` from QF NNF ``phi`` (cached).

    The memo key is the content digest of ``(x, phi)``, so structurally
    equal inputs hit even when the nodes were rebuilt after a
    ``clear_intern_tables()`` or arrived through a pickle; when a
    persistent store is active, results also survive process restarts.
    A first-level identity cache short-circuits repeats of the same
    hash-consed node without the digest walk.
    """
    fast_key = (x, phi)
    fast = _elim_fast.get(fast_key)
    if fast is not None:
        obs.inc("qe.elim.hit")
        budget.charge(fast.size())
        return fast
    result = _eliminate_one_digested(x, phi, budget)
    if len(_elim_fast) < _ELIM_CACHE_SIZE:
        _elim_fast[fast_key] = result
    return result


def _eliminate_one_digested(x: Var, phi: Formula, budget: _Budget) -> Formula:
    key = digest_many("elim", x, phi)
    cached = _elim_cache.get(key)
    if cached is not None:
        obs.inc("qe.elim.hit")
        _elim_cache.move_to_end(key)
        budget.charge(cached.size())
        return cached
    store = _store()
    if store is not None:
        artifact = store.get("qe-elim", key)
        if artifact is not None:
            obs.inc("qe.elim.hit")
            result = formula_from_obj(artifact["f"])
            budget.charge(result.size())
            _remember_elim(key, result)
            return result
    obs.inc("qe.elim.miss")
    result = _eliminate_one_uncached(x, phi, budget)
    _remember_elim(key, result)
    if store is not None:
        store.put("qe-elim", key, {"f": formula_to_obj(result)})
    return result


def _remember_elim(key: str, result: Formula) -> None:
    _elim_cache[key] = result
    if len(_elim_cache) > _ELIM_CACHE_SIZE:
        _elim_cache.popitem(last=False)


def _eliminate_one_uncached(x: Var, phi: Formula, budget: _Budget) -> Formula:
    phi = _strip_eq_ne(x, phi)
    if x not in phi.free_vars():
        return phi

    # delta: lcm of |coefficient of x| across atoms
    coeffs = [
        abs(a.term.coeff(x))
        for a in phi.atoms()
        if a.term.coeff(x) != 0
    ]
    delta = lcm_all(coeffs)

    # Per-atom values that are invariant across the residue loops below
    # (coefficient of x, scale factor, sign, scaled term without x);
    # recomputing them per residue j was a hot spot.
    info: dict[Formula, tuple[int, int, int, LinTerm | None]] = {}

    def atom_info(a: Formula) -> tuple[int, int, int, LinTerm | None]:
        got = info.get(a)
        if got is None:
            c = a.term.coeff(x)
            if c == 0:
                got = (0, 0, 0, None)
            else:
                m = delta // abs(c)
                sign = 1 if c > 0 else -1
                rest = (a.term - LinTerm.var(x, c)).scale(m)
                got = (c, m, sign, rest)
            info[a] = got
        return got

    # D: lcm of the scaled divisors (and delta itself, for delta | x')
    big_d = delta
    lowers: list[LinTerm] = []
    uppers: list[LinTerm] = []
    seen_lower: set[LinTerm] = set()
    seen_upper: set[LinTerm] = set()
    for a in _unique_atoms(phi):
        c, m, _sign, rest = atom_info(a)
        if c == 0:
            continue
        if isinstance(a, Dvd):
            big_d = lcm(big_d, a.divisor * m)
        else:
            assert rest is not None
            if c > 0:
                bound = -rest          # x' <= -m*rest
                if bound not in seen_upper:
                    seen_upper.add(bound)
                    uppers.append(bound)
            else:
                bound = rest           # x' >= m*rest
                if bound not in seen_lower:
                    seen_lower.add(bound)
                    lowers.append(bound)

    use_lower = len(lowers) <= len(uppers)
    bounds = lowers if use_lower else uppers

    disjuncts: list[Formula] = []
    for j in range(big_d):
        inf = _substitute_infinite(
            phi, atom_info, from_below=use_lower, j=j
        )
        inf = conj(inf, dvd(delta, LinTerm.constant(j)))
        budget.charge(inf.size())
        disjuncts.append(inf)
    for b in bounds:
        for j in range(big_d):
            tau = b + j if use_lower else b - j
            candidate = conj(
                _substitute_scaled(phi, atom_info, tau),
                dvd(delta, tau),
            )
            budget.charge(candidate.size())
            disjuncts.append(candidate)
    result = disj(*disjuncts)
    if obs.is_enabled():
        before = phi.size()
        after = result.size()
        obs.observe("qe.result_size", after)
        if before:
            obs.observe("qe.blowup", after / before)
        if prov.is_enabled():
            prov.record(
                "qe.eliminate", var=x.name, delta=delta, lcm=big_d,
                lowers=len(lowers), uppers=len(uppers),
                atoms_before=sum(1 for _ in phi.atoms()),
                atoms_after=sum(1 for _ in result.atoms()),
            )
    return result


def _unique_atoms(phi: Formula) -> list[Formula]:
    seen: dict[Formula, None] = {}
    for a in phi.atoms():
        seen.setdefault(a, None)
    return list(seen)


def _strip_eq_ne(x: Var, phi: Formula) -> Formula:
    """Rewrite EQ/NE atoms mentioning ``x`` into LE atoms."""

    def rewrite(a: Formula) -> Formula:
        if not isinstance(a, Atom) or a.term.coeff(x) == 0:
            return a
        if a.rel is Rel.EQ:
            return conj(
                atom(Rel.LE, a.term), atom(Rel.LE, -a.term)
            )
        if a.rel is Rel.NE:
            return disj(
                atom(Rel.LE, a.term + 1), atom(Rel.LE, -a.term + 1)
            )
        return a

    return map_atoms(phi, rewrite)


def _substitute_scaled(phi: Formula, atom_info, tau: LinTerm) -> Formula:
    """phi with the (scaled) variable ``x' = delta*x`` replaced by ``tau``.

    Each atom is individually rescaled so x's coefficient becomes +-delta,
    then ``+-x'`` is replaced by ``+-tau``.  ``atom_info`` supplies the
    precomputed per-atom ``(c, m, sign, rest)`` tuple.
    """

    def rewrite(a: Formula) -> Formula:
        c, m, sign, rest = atom_info(a)
        if c == 0:
            return a
        new_term = tau.scale(sign) + rest
        if isinstance(a, Dvd):
            return dvd(a.divisor * m, new_term, a.negated_flag)
        assert isinstance(a, Atom) and a.rel is Rel.LE
        return atom(Rel.LE, new_term)

    return map_atoms(phi, rewrite)


def _substitute_infinite(phi: Formula, atom_info,
                         *, from_below: bool, j: int) -> Formula:
    """The ``phi_{-inf}`` (or ``phi_{+inf}``) formula evaluated at residue j.

    Inequalities on x collapse to TRUE/FALSE according to the direction of
    the limit; divisibility atoms keep x and are evaluated at x' = j.
    """

    def rewrite(a: Formula) -> Formula:
        c, m, sign, rest = atom_info(a)
        if c == 0:
            return a
        if isinstance(a, Dvd):
            new_term = LinTerm.constant(sign * j) + rest
            return dvd(a.divisor * m, new_term, a.negated_flag)
        assert isinstance(a, Atom) and a.rel is Rel.LE
        # scaled atom: sign*x' + rest <= 0
        if from_below:
            # x' -> -infinity: sign>0 (upper bound) satisfied, else violated
            return TRUE if sign > 0 else FALSE
        return FALSE if sign > 0 else TRUE

    return map_atoms(phi, rewrite)
