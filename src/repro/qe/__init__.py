"""Cooper quantifier elimination for Presburger arithmetic."""

from .cooper import (
    QeBudgetExceeded,
    decide_closed,
    eliminate_exists,
    eliminate_forall,
    eliminate_quantifiers,
    project,
)

__all__ = [
    "QeBudgetExceeded",
    "decide_closed",
    "eliminate_exists",
    "eliminate_forall",
    "eliminate_quantifiers",
    "project",
]
