"""Contextual (critical-constraint) simplification.

This is the role played in the paper by the authors' earlier "Small
formulas for large programs" (SAS 2010) simplifier: after Lemma 3 produces
a weakest minimum proof obligation, parts of it may already be implied by
the known invariants ``I``; simplifying *with respect to* ``I`` removes
those redundant parts so the user is never asked about facts the analysis
already knows.

``simplify(phi, critical)`` returns a formula equivalent to ``phi`` under
the assumption ``critical``:  ``critical |= (phi <=> simplify(phi,
critical))``.  The algorithm walks the formula recursively; each conjunct
is simplified under the context strengthened with its siblings, each
disjunct under the context strengthened with its siblings' negations, and
atoms that the context decides are folded to constants.
"""

from __future__ import annotations

from ..logic.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Dvd,
    Formula,
    Not,
    Or,
    conj,
    disj,
    neg,
)
from ..smt import SmtSolver


class Simplifier:
    """Simplification engine with a shared SMT solver (and its cache)."""

    def __init__(self, solver: SmtSolver | None = None, *, passes: int = 2):
        self._solver = solver or SmtSolver()
        self._passes = passes

    def simplify(self, phi: Formula, critical: Formula = TRUE) -> Formula:
        """Simplify ``phi`` assuming ``critical`` holds."""
        if not self._solver.is_sat(critical):
            # under an absurd context everything is equivalent to TRUE
            return TRUE
        result = phi
        for _ in range(self._passes):
            simplified = self._simplify(result, critical)
            if simplified == result:
                break
            result = simplified
        return result

    # ------------------------------------------------------------------
    def _simplify(self, phi: Formula, context: Formula) -> Formula:
        if phi.is_true or phi.is_false:
            return phi
        if isinstance(phi, (Atom, Dvd)):
            if self._solver.entails(context, phi):
                return TRUE
            if self._solver.entails(context, neg(phi)):
                return FALSE
            return phi
        if isinstance(phi, Not):
            return neg(self._simplify(phi.arg, context))
        if isinstance(phi, And):
            return self._simplify_and(list(phi.args), context)
        if isinstance(phi, Or):
            return self._simplify_or(list(phi.args), context)
        # quantified subformulas: simplify opaque (decide if context does)
        if self._solver.entails(context, phi):
            return TRUE
        return phi

    def _simplify_and(self, args: list[Formula], context: Formula) -> Formula:
        # simplify each conjunct under context + remaining siblings
        result: list[Formula] = []
        for index, arg in enumerate(args):
            siblings = result + args[index + 1:]
            local = conj(context, *siblings)
            simplified = self._simplify(arg, local)
            if simplified.is_false:
                return FALSE
            if not simplified.is_true:
                result.append(simplified)
        return conj(*result)

    def _simplify_or(self, args: list[Formula], context: Formula) -> Formula:
        result: list[Formula] = []
        for index, arg in enumerate(args):
            siblings = result + args[index + 1:]
            local = conj(context, *(neg(s) for s in siblings))
            simplified = self._simplify(arg, local)
            if simplified.is_true:
                return TRUE
            if not simplified.is_false:
                result.append(simplified)
        return disj(*result)


_DEFAULT = Simplifier()


def simplify(phi: Formula, critical: Formula = TRUE) -> Formula:
    """Simplify with the shared default engine."""
    return _DEFAULT.simplify(phi, critical)
