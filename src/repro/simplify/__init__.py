"""Contextual simplification with respect to a critical constraint."""

from .contextual import Simplifier, simplify

__all__ = ["Simplifier", "simplify"]
