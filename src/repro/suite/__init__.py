"""The Figure 7 benchmark suite.

Eleven problems mirroring the paper's user-study benchmarks — five
modeled on real C utilities (coreutils/OpenSSH-style slices) and six
synthetic — plus the three diagnostic screening problems.  Each problem
carries one assertion; the analysis initially reports a potential (but
not certain) error on all eleven, with the same diversity of causes the
paper lists: imprecise loop invariants, missing library annotations,
non-linear arithmetic, and missing environment facts.

The paper's original C sources are not redistributable (and the paper
used manual slices); each program here preserves its problem's *cause of
imprecision*, classification, and query structure — see DESIGN.md for
the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import resources

from ..abstract import annotate_program
from ..analysis import AnalysisResult, analyze_program
from ..lang import Program, parse_program


@dataclass(frozen=True)
class Benchmark:
    """Metadata for one user-study problem (one row of Figure 7)."""

    problem_id: int
    name: str
    kind: str                  # 'synthetic' | 'real'
    classification: str        # 'false alarm' | 'real bug'
    cause: str                 # source of analysis imprecision
    paper_loc: int             # LOC of the paper's original benchmark
    filename: str
    diagnostic: bool = False   # one of the three screening problems
    oracle_radius: int = 6     # exhaustive-oracle input box

    @property
    def is_false_alarm(self) -> bool:
        return self.classification == "false alarm"


BENCHMARKS: tuple[Benchmark, ...] = (
    Benchmark(1, "p01_accumulate", "synthetic", "false alarm",
              "imprecise loop invariants", 88, "p01_accumulate.err"),
    Benchmark(2, "p02_wordcount", "real", "false alarm",
              "imprecise loop invariants (missing relational fact)", 352,
              "p02_wordcount.err", oracle_radius=5),
    Benchmark(3, "p03_square", "synthetic", "false alarm",
              "non-linear arithmetic", 66, "p03_square.err"),
    Benchmark(4, "p04_options", "real", "real bug",
              "missing environment fact (argc can be 1)", 278,
              "p04_options.err", oracle_radius=5),
    Benchmark(5, "p05_strlcpy", "real", "false alarm",
              "imprecise loop invariants (capacity bound)", 363,
              "p05_strlcpy.err", oracle_radius=5),
    Benchmark(6, "p06_chroot", "real", "false alarm",
              "imprecise loop invariants (optind > 0, as in the paper)",
              173, "p06_chroot.err", oracle_radius=5),
    Benchmark(7, "p07_rotate", "real", "real bug",
              "missing library annotation (unlink can fail)", 326,
              "p07_rotate.err", oracle_radius=4),
    Benchmark(8, "p08_alternate", "synthetic", "false alarm",
              "imprecise loop invariants (alternation)", 97,
              "p08_alternate.err", oracle_radius=5),
    Benchmark(9, "p09_window", "synthetic", "real bug",
              "imprecise loop invariants (off-by-one)", 116,
              "p09_window.err"),
    Benchmark(10, "p10_toggle", "synthetic", "real bug",
              "imprecise loop invariants (parity)", 72, "p10_toggle.err"),
    Benchmark(11, "p11_transfer", "synthetic", "real bug",
              "imprecise loop invariants (cross-phase)", 118,
              "p11_transfer.err"),
)

DIAGNOSTICS: tuple[Benchmark, ...] = (
    Benchmark(101, "d01_plus_one", "synthetic", "false alarm",
              "none (screening problem)", 8, "d01_plus_one.err",
              diagnostic=True),
    Benchmark(102, "d02_negate", "synthetic", "real bug",
              "none (screening problem)", 8, "d02_negate.err",
              diagnostic=True),
    Benchmark(103, "d03_count", "synthetic", "false alarm",
              "none (screening problem)", 10, "d03_count.err",
              diagnostic=True),
)


def benchmark_by_id(problem_id: int) -> Benchmark:
    for bench in BENCHMARKS + DIAGNOSTICS:
        if bench.problem_id == problem_id:
            return bench
    raise KeyError(f"no benchmark with id {problem_id}")


def benchmark_by_name(name: str) -> Benchmark:
    for bench in BENCHMARKS + DIAGNOSTICS:
        if bench.name == name:
            return bench
    raise KeyError(f"no benchmark named {name!r}")


def load_source(bench: Benchmark) -> str:
    """Read a benchmark's program text from package data."""
    return (
        resources.files(__package__)
        .joinpath("programs", bench.filename)
        .read_text()
    )


def load_program(bench: Benchmark, *, auto_annotate: bool = True) -> Program:
    """Parse (and, for unannotated loops, auto-annotate) a benchmark."""
    program = parse_program(load_source(bench))
    if auto_annotate:
        program = annotate_program(program)
    return program


def load_analysis(bench: Benchmark,
                  *, auto_annotate: bool = True
                  ) -> tuple[Program, AnalysisResult]:
    """Parse, annotate and analyze a benchmark; returns both artifacts."""
    program = load_program(bench, auto_annotate=auto_annotate)
    return program, analyze_program(program)


__all__ = [
    "Benchmark",
    "BENCHMARKS",
    "DIAGNOSTICS",
    "benchmark_by_id",
    "benchmark_by_name",
    "load_source",
    "load_program",
    "load_analysis",
]
