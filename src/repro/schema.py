"""The stable, JSON-first result vocabulary shared by every pipeline
layer.

Historically the code base grew three disjoint result shapes: the API
facade's ``InitialVerdict`` (verified/refuted/uncertain), the diagnosis
engine's ``Verdict`` (discharged/validated/unresolved), and the batch
driver's plain classification strings.  They all answer the same
question — *is this error report a real bug?* — so this module defines
the one vocabulary, :class:`TriageVerdict`, that every result object
maps into, plus the envelope every ``to_dict()`` implementation shares.

Schema stability contract (documented in ``docs/API.md``):

* every payload carries ``"schema": SCHEMA_VERSION`` and a ``"kind"``
  discriminator (``analysis`` / ``diagnosis`` / ``triage_outcome`` /
  ``batch`` / ``study``);
* every payload carries ``"verdict"``, one of ``"false alarm"``,
  ``"real bug"``, ``"unknown"``, ``"unknown resource"``;
* fields are only ever *added*; renaming or removing a field bumps
  SCHEMA_VERSION;
* ``"telemetry"`` is present only when instrumentation was enabled.

Version history.  ``repro.result/2`` added the ``UNKNOWN_RESOURCE``
verdict and the resource-governance fields (``limits``,
``resource_spend``, ``degraded``, ``exhausted_stage``, ``attempts``)
on top of ``repro.result/1``; the change is purely additive, and
:func:`read_envelope` upgrades ``/1`` payloads in place.  The optional
``cache`` block (content digests, persistent-store path, per-run
hit/miss counts — see :mod:`repro.cache`) was likewise added within
``/2``: it appears only when a store was active, so no version bump
was needed.  ``repro.result/3`` (current) adds the ``repair`` result
kind and its additive ``repairs`` block — the ranked patch list
(edits, unified diff, verified flag, cost, Γ digest) produced by
:mod:`repro.repair` — plus ``verified_patches`` and ``already_clean``;
``/1`` and ``/2`` payloads upgrade in place (no pre-/3 payload carries
repair fields, so the upgrade adds nothing).  The fleet-scheduler
fields were likewise added *within* ``/3`` under the additive-only
policy: ``triage_outcome`` gains an optional ``worker`` (the remote
``repro serve`` URL that ran the attempt) and ``batch`` gains optional
``backend`` / ``workers`` / ``steals`` plus the ``"remote"`` ``mode``
value (see :mod:`repro.sched`); all are omitted on local runs, so
pool/serial envelopes are byte-identical to their pre-scheduler form
and no version bump was needed.

Besides the envelope, this module owns the *status contract*: the one
mapping from triage verdicts to CLI exit codes and HTTP status codes,
shared by the command-line front end and the ``repro serve`` daemon so
a script driving either sees the same vocabulary (see
:func:`exit_code` / :func:`http_status`).

This module sits below every other layer (it imports nothing from the
package) so any result type can use it without layering cycles.
"""

from __future__ import annotations

import json
from enum import Enum
from typing import Any, Iterable

SCHEMA_VERSION = "repro.result/3"

#: Envelope versions :func:`read_envelope` accepts, oldest first.
SUPPORTED_VERSIONS = ("repro.result/1", "repro.result/2",
                      "repro.result/3")


class TriageVerdict(Enum):
    """The unified answer to "is this report a real bug?".

    Values equal the human-facing classification strings that predate
    the enum, so ``verdict.value == result.classification`` everywhere.
    """

    FALSE_ALARM = "false alarm"        # proven error-free / discharged
    REAL_BUG = "real bug"              # proven buggy / validated
    UNKNOWN = "unknown"                # unresolved / errored
    UNKNOWN_RESOURCE = "unknown resource"  # a governed limit ran out

    @classmethod
    def from_classification(cls, text: str) -> "TriageVerdict":
        """Map a legacy classification string (or verdict-enum value of
        any of the three historical vocabularies) to the vocabulary."""
        norm = text.strip().lower().replace("_", " ")
        aliases = {
            "false alarm": cls.FALSE_ALARM,
            "verified": cls.FALSE_ALARM,
            "discharged": cls.FALSE_ALARM,
            "real bug": cls.REAL_BUG,
            "refuted": cls.REAL_BUG,
            "validated": cls.REAL_BUG,
            "unknown": cls.UNKNOWN,
            "uncertain": cls.UNKNOWN,
            "unresolved": cls.UNKNOWN,
            "unknown resource": cls.UNKNOWN_RESOURCE,
            "resource exhausted": cls.UNKNOWN_RESOURCE,
        }
        try:
            return aliases[norm]
        except KeyError:
            raise ValueError(f"unknown classification {text!r}") from None


# ---------------------------------------------------------------------------
# the status contract: verdicts -> CLI exit codes -> HTTP statuses
# ---------------------------------------------------------------------------

#: Exit 0: every verdict is ``false alarm`` (or ``unknown``) — nothing
#: needs a developer's attention.
EXIT_OK = 0
#: Exit 1: at least one ``real bug`` verdict is present.
EXIT_REAL_BUG = 1
#: Exit 2: the invocation itself was malformed (bad flags, bad input).
EXIT_USAGE = 2
#: Exit 3: at least one result is ``unknown resource`` or was
#: quarantined by the recovery loop — the answer is incomplete, rerun
#: with a bigger budget.
EXIT_DEGRADED = 3

#: The daemon-side rendering of the same contract.  A triage that ran
#: to completion is an HTTP success whatever its verdict (the verdict
#: is the payload); only malformed requests and degraded results map
#: to error statuses.
HTTP_BY_EXIT = {
    EXIT_OK: 200,
    EXIT_REAL_BUG: 200,
    EXIT_USAGE: 400,
    EXIT_DEGRADED: 503,
}


def exit_code(verdicts: "Iterable[TriageVerdict | str]",
              *, degraded: bool = False) -> int:
    """The contractual exit code for a set of triage verdicts.

    Precedence (documented in ``docs/API.md``): degradation beats a
    real-bug verdict — an incomplete answer must not read as a clean
    one — and a real bug beats every decided/undecided verdict.
    ``degraded`` folds in quarantine/hard-error signals the verdicts
    alone cannot carry.  Accepts enum members or classification
    strings; ``EXIT_USAGE`` is never produced here (usage errors are
    raised before any verdict exists).
    """
    resolved = [
        v if isinstance(v, TriageVerdict)
        else TriageVerdict.from_classification(v)
        for v in verdicts
    ]
    if degraded or TriageVerdict.UNKNOWN_RESOURCE in resolved:
        return EXIT_DEGRADED
    if TriageVerdict.REAL_BUG in resolved:
        return EXIT_REAL_BUG
    return EXIT_OK


def http_status(code: int) -> int:
    """The HTTP status the daemon sends for a contractual exit code."""
    try:
        return HTTP_BY_EXIT[code]
    except KeyError:
        raise ValueError(f"not a contractual exit code: {code!r}") \
            from None


def envelope(kind: str, verdict: TriageVerdict, **fields: Any) -> dict:
    """The common payload envelope: schema tag, kind, verdict, fields.

    ``None``-valued fields are omitted so optional sections (telemetry,
    errors) never appear as JSON nulls.
    """
    payload: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "verdict": verdict.value,
    }
    for name, value in fields.items():
        if value is not None:
            payload[name] = value
    return payload


def dump_json(payload: dict, *, indent: int | None = None) -> str:
    """Serialize a payload deterministically (stable key order as
    built, enums/objects via ``str``)."""
    return json.dumps(payload, indent=indent, default=str)


def read_envelope(payload: dict) -> dict:
    """Validate a result envelope and upgrade it to the current schema.

    Accepts any version in :data:`SUPPORTED_VERSIONS`; older payloads
    come back reshaped as ``repro.result/3``.  Each upgrade step is
    purely additive: ``/1`` payloads gain the resource-field defaults
    of an ungoverned run, and ``/2`` payloads need nothing (no pre-/3
    payload carries the ``repair`` kind or ``repairs`` block, which are
    optional).  The input dict is not mutated.  Raises ``ValueError``
    for unknown versions or envelopes missing the required keys.
    """
    for key in ("schema", "kind", "verdict"):
        if key not in payload:
            raise ValueError(f"result envelope is missing {key!r}")
    version = payload["schema"]
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported result schema {version!r} "
            f"(supported: {', '.join(SUPPORTED_VERSIONS)})"
        )
    TriageVerdict.from_classification(payload["verdict"])  # validate
    upgraded = dict(payload)
    upgraded["schema"] = SCHEMA_VERSION
    if version == "repro.result/1":
        # /1 predates the governance fields: a /1 batch or outcome was
        # by definition ungoverned and never degraded
        if payload["kind"] == "batch":
            upgraded.setdefault("degraded", [])
        elif payload["kind"] == "triage_outcome":
            upgraded.setdefault("degraded", False)
    return upgraded
