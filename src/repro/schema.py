"""The stable, JSON-first result vocabulary shared by every pipeline
layer.

Historically the code base grew three disjoint result shapes: the API
facade's ``InitialVerdict`` (verified/refuted/uncertain), the diagnosis
engine's ``Verdict`` (discharged/validated/unresolved), and the batch
driver's plain classification strings.  They all answer the same
question — *is this error report a real bug?* — so this module defines
the one vocabulary, :class:`TriageVerdict`, that every result object
maps into, plus the envelope every ``to_dict()`` implementation shares.

Schema stability contract (documented in ``docs/API.md``):

* every payload carries ``"schema": SCHEMA_VERSION`` and a ``"kind"``
  discriminator (``analysis`` / ``diagnosis`` / ``triage_outcome`` /
  ``batch`` / ``study``);
* every payload carries ``"verdict"``, one of ``"false alarm"``,
  ``"real bug"``, ``"unknown"``;
* fields are only ever *added*; renaming or removing a field bumps
  SCHEMA_VERSION;
* ``"telemetry"`` is present only when instrumentation was enabled.

This module sits below every other layer (it imports nothing from the
package) so any result type can use it without layering cycles.
"""

from __future__ import annotations

import json
from enum import Enum
from typing import Any

SCHEMA_VERSION = "repro.result/1"


class TriageVerdict(Enum):
    """The unified answer to "is this report a real bug?".

    Values equal the human-facing classification strings that predate
    the enum, so ``verdict.value == result.classification`` everywhere.
    """

    FALSE_ALARM = "false alarm"    # proven error-free / discharged
    REAL_BUG = "real bug"          # proven buggy / validated
    UNKNOWN = "unknown"            # unresolved / timed out / errored

    @classmethod
    def from_classification(cls, text: str) -> "TriageVerdict":
        """Map a legacy classification string (or verdict-enum value of
        any of the three historical vocabularies) to the vocabulary."""
        norm = text.strip().lower().replace("_", " ")
        aliases = {
            "false alarm": cls.FALSE_ALARM,
            "verified": cls.FALSE_ALARM,
            "discharged": cls.FALSE_ALARM,
            "real bug": cls.REAL_BUG,
            "refuted": cls.REAL_BUG,
            "validated": cls.REAL_BUG,
            "unknown": cls.UNKNOWN,
            "uncertain": cls.UNKNOWN,
            "unresolved": cls.UNKNOWN,
        }
        try:
            return aliases[norm]
        except KeyError:
            raise ValueError(f"unknown classification {text!r}") from None


def envelope(kind: str, verdict: TriageVerdict, **fields: Any) -> dict:
    """The common payload envelope: schema tag, kind, verdict, fields.

    ``None``-valued fields are omitted so optional sections (telemetry,
    errors) never appear as JSON nulls.
    """
    payload: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "verdict": verdict.value,
    }
    for name, value in fields.items():
        if value is not None:
            payload[name] = value
    return payload


def dump_json(payload: dict, *, indent: int | None = None) -> str:
    """Serialize a payload deterministically (stable key order as
    built, enums/objects via ``str``)."""
    return json.dumps(payload, indent=indent, default=str)
