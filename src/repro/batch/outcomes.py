"""Plain-data triage outcomes and the worker-side report runner.

This module is the *bottom* of the batch layer: the result types
(:class:`TriageOutcome`, :class:`BatchResult`), the picklable
per-report worker function (:func:`_triage_one`) and the small policy
predicates the scheduler applies to its results (retry eligibility,
cacheability, quarantine finalization).  Everything here is importable
by both :mod:`repro.batch.driver` (the user-facing surface) and
:mod:`repro.sched` (the transport-agnostic scheduler) without creating
a layering cycle — the scheduler must never import the driver.

Results are plain data (:class:`TriageOutcome` carries strings and
numbers, never formulas), so nothing fragile crosses a process or HTTP
boundary.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace

from .. import limits as _limits_mod
from .. import obs
from ..obs import context as ocontext
from ..obs import provenance as prov
from ..cache import open_store, use_store, use_store_here
from ..diagnosis import EngineConfig, ExhaustiveOracle, diagnose_error
from ..diagnosis.stages import STAGE_VERSION, config_fingerprint
from ..limits import Limits, ResourceExhausted
from ..limits import faults
from ..logic.digest import digest, digest_many, digest_text
from ..schema import TriageVerdict, dump_json, envelope
from .. import suite as _suite
from ..suite import benchmark_by_name


@dataclass(frozen=True)
class TriageOutcome:
    """The result of triaging one report — plain data only."""

    name: str
    classification: str            # a TriageVerdict value string
    expected: str | None = None    # ground-truth label, when known
    num_queries: int = 0
    rounds: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    error: str | None = None       # repr of an in-worker exception
    telemetry: dict | None = None  # per-report obs snapshot, when enabled
    events: tuple = ()             # per-report obs events, when enabled
    provenance: tuple = ()         # per-report derivation nodes, when enabled
    exhausted_stage: str | None = None  # stage whose checkpoint fired
    exhausted_kind: str | None = None   # steps | nodes | deadline | ...
    resource_spend: dict | None = None  # per-stage spend (governed runs)
    attempts: int = 1              # triage attempts consumed
    degraded: bool = False         # quarantined after exhausting retries
    prior_telemetry: tuple = ()    # partial snapshots of failed attempts
    cache: dict | None = None      # store provenance (digests, hit/miss)
    trace_id: str | None = None    # correlation id of the request trace
    worker: str | None = None      # remote worker URL (fleet runs only)

    @property
    def correct(self) -> bool:
        return self.expected is not None and \
            self.classification == self.expected

    @property
    def verdict(self) -> TriageVerdict:
        return TriageVerdict.from_classification(self.classification)

    def to_dict(self) -> dict:
        """The stable ``repro.result`` payload (see docs/API.md)."""
        return envelope(
            "triage_outcome",
            self.verdict,
            name=self.name,
            expected=self.expected,
            correct=self.correct if self.expected is not None else None,
            num_queries=self.num_queries,
            rounds=self.rounds,
            elapsed_seconds=self.elapsed_seconds,
            timed_out=self.timed_out,
            error=self.error,
            telemetry=self.telemetry,
            provenance=list(self.provenance) or None,
            exhausted_stage=self.exhausted_stage,
            exhausted_kind=self.exhausted_kind,
            resource_spend=self.resource_spend,
            attempts=self.attempts,
            degraded=self.degraded,
            cache=self.cache,
            trace_id=self.trace_id,
            worker=self.worker,
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return dump_json(self.to_dict(), indent=indent)


@dataclass
class BatchResult:
    """Outcome of a :func:`repro.batch.triage_many` run."""

    outcomes: list[TriageOutcome]
    wall_seconds: float
    jobs: int
    mode: str                      # 'serial' | 'parallel' | 'remote' | 'degraded'
    telemetry: dict | None = None  # merged per-worker obs snapshots
    limits: dict | None = None     # rendering of the governing Limits
    cache: dict | None = None      # driver-side store stats, when active
    trace_id: str | None = None    # correlation id of the batch ingress
    backend: str | None = None     # transport backend (fleet runs only)
    workers: list | None = None    # remote worker URLs (fleet runs only)
    steals: int | None = None      # work-steal count (fleet runs only)
    failures: list[TriageOutcome] = field(init=False)
    degraded: list[TriageOutcome] = field(init=False)

    def __post_init__(self) -> None:
        # quarantined reports are governed degradation, not
        # misclassification — they never count as failures
        self.degraded = [o for o in self.outcomes if o.degraded]
        self.failures = [
            o for o in self.outcomes
            if o.expected is not None and not o.correct
            and not o.degraded
            and o.verdict is not TriageVerdict.UNKNOWN_RESOURCE
        ]

    @property
    def accuracy(self) -> float:
        labelled = [o for o in self.outcomes if o.expected is not None]
        if not labelled:
            return 0.0
        return sum(1 for o in labelled if o.correct) / len(labelled)

    @property
    def verdict(self) -> TriageVerdict:
        """The strongest claim about the batch: any real bug makes the
        batch ``REAL_BUG``; otherwise any unknown (including resource
        exhaustion) leaves it ``UNKNOWN``; a batch of pure false alarms
        is ``FALSE_ALARM``."""
        verdicts = {o.verdict for o in self.outcomes}
        if TriageVerdict.REAL_BUG in verdicts:
            return TriageVerdict.REAL_BUG
        if (TriageVerdict.UNKNOWN in verdicts
                or TriageVerdict.UNKNOWN_RESOURCE in verdicts
                or not verdicts):
            return TriageVerdict.UNKNOWN
        return TriageVerdict.FALSE_ALARM

    @property
    def verdict_counts(self) -> dict[str, int]:
        counts = {v.value: 0 for v in TriageVerdict}
        for outcome in self.outcomes:
            counts[outcome.verdict.value] += 1
        return counts

    @property
    def resource_spend(self) -> dict[str, int]:
        """Per-stage spend summed across every governed outcome."""
        merged: dict[str, int] = {}
        for outcome in self.outcomes:
            for stage, n in (outcome.resource_spend or {}).items():
                merged[stage] = merged.get(stage, 0) + n
        return merged

    def by_name(self, name: str) -> TriageOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no outcome for {name!r}")

    def to_dict(self) -> dict:
        """The stable ``repro.result`` payload (see docs/API.md)."""
        return envelope(
            "batch",
            self.verdict,
            wall_seconds=self.wall_seconds,
            jobs=self.jobs,
            mode=self.mode,
            accuracy=self.accuracy,
            verdict_counts=self.verdict_counts,
            outcomes=[o.to_dict() for o in self.outcomes],
            telemetry=self.telemetry,
            limits=self.limits,
            cache=self.cache,
            resource_spend=self.resource_spend or None,
            degraded=[o.name for o in self.degraded],
            trace_id=self.trace_id,
            backend=self.backend,
            workers=self.workers,
            steals=self.steals,
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return dump_json(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _report_key(bench, config: EngineConfig,
                invariants_digest: str, success_digest: str) -> str:
    """Cache key of a whole-report triage artifact: the analysis
    judgment digests plus everything else the verdict depends on."""
    return digest_many(
        "triage", STAGE_VERSION, bench.name, str(bench.oracle_radius),
        str(config.max_rounds), config_fingerprint(config),
        invariants_digest, success_digest,
    )


def _merge_cache_info(report: dict | None,
                      engine: dict | None) -> dict | None:
    """One ``cache`` block per outcome: the engine's store delta and
    judgment digests, overlaid with the report-level analyze/triage
    status (the report level is authoritative where they overlap)."""
    if report is None and engine is None:
        return None
    merged = dict(engine or {})
    merged.update(report or {})
    return merged


def _cacheable(outcome: TriageOutcome) -> bool:
    """Only clean, deterministic verdicts may be served from the store:
    crashes and resource exhaustion depend on the run, not the input."""
    return outcome.error is None and outcome.exhausted_kind is None \
        and outcome.verdict is not TriageVerdict.UNKNOWN_RESOURCE


def _triage_one(name: str, config: EngineConfig | None = None,
                telemetry: bool = False, limits: Limits | None = None,
                attempt: int = 0, in_worker: bool = False,
                cache_dir: str | None = None,
                incremental: bool = False,
                trace: dict | None = None,
                thread_scoped: bool = False) -> TriageOutcome:
    """Triage a single benchmark report against its ground-truth oracle.

    Top-level so it pickles under any multiprocessing start method.  All
    process-global caches (default solver, intern tables, QE caches)
    stay warm between calls within one worker.

    With ``cache_dir`` the report runs with the persistent store active:
    the engine's stage functions and the QE/SMT caches read and write
    content-addressed artifacts under it (workers share the directory;
    writes are atomic).  With ``incremental`` additionally, the report
    itself can be short-circuited: the source digest resolves to the
    judgment digests through the ``analyze`` artifact, and an unchanged
    judgment resolves to a recorded verdict through the ``triage``
    artifact — reports whose ``(I, phi)`` digest is unchanged are never
    recomputed.

    With ``limits`` the whole report — loading, analysis and the
    diagnosis loop — runs under one governor, so the deadline covers
    everything and per-stage spend is attributed to this report.  Fault
    injection (``REPRO_FAULT``) needs a governor to observe checkpoints,
    so an active fault spec forces an (otherwise unlimited) one.

    With ``telemetry`` the report runs under an obs capture scope: the
    outcome carries the report's own counter/span snapshot plus the span
    events (and, when provenance is on, derivation nodes) it emitted,
    all plain data, so the driver can merge them across workers.  The
    snapshot is stamped with the attempt number, and failed attempts
    keep their partial telemetry too — a quarantined report still shows
    up in the fleet-wide merge.

    ``trace`` carries a :class:`~repro.obs.context.TraceContext` as
    plain data across the process boundary; it (or, failing that, the
    thread's ambient context) is bound for the report's duration, so
    every span, provenance node, log line and the telemetry snapshot
    recorded in this worker joins the ingress's trace.
    """
    start = time.perf_counter()
    ctx = ocontext.TraceContext.from_dict(trace) if trace is not None \
        else ocontext.current()
    if in_worker:
        faults.mark_worker()
    faults.set_report(name)
    if telemetry and not obs.is_enabled():
        obs.enable()
    # slice by span id, not buffer offset: the bounded event deque may
    # evict old entries mid-report, which would shift any saved offset
    events_marker = obs.span_sequence() if telemetry else 0
    prov_marker = prov.mark() if prov.is_enabled() else None

    def report_events() -> tuple:
        if not telemetry:
            return ()
        return tuple(e for e in obs.events()
                     if e.get("id", 0) >= events_marker)

    def report_provenance() -> tuple:
        if prov_marker is None:
            return ()
        return tuple(prov.nodes_since(prov_marker))

    def stamped(snap: dict | None) -> dict | None:
        if snap is not None:
            snap["report"] = name
            snap["attempt"] = attempt
            if ctx is not None:
                snap["trace"] = ctx.trace_id
        return snap

    effective = limits
    if effective is None and faults.active() is not None:
        effective = Limits()
    if effective is None:
        governed = nullcontext(None)
    elif thread_scoped:
        # this attempt shares its process with concurrent worker
        # threads (``repro serve``): the process-global governor slot
        # is not reentrant across threads, so govern thread-locally
        governed = _limits_mod.governed_here(effective, fold_spend=True)
    else:
        governed = _limits_mod.governed(effective)
    store = open_store(cache_dir) if cache_dir is not None else None
    if store is None:
        scoped = nullcontext()
    elif thread_scoped:
        # same reasoning as the governor above: the process-global
        # store slot is not reentrant across concurrent serve threads
        scoped = use_store_here(store)
    else:
        scoped = use_store(store)
    cfg = config or EngineConfig()
    cap = None
    try:
        result = None
        recorded = None
        cache_info = None
        report_key = None
        with ocontext.bind(ctx), obs.capture() as cap, \
                obs.span("triage.report", report=name, attempt=attempt), \
                governed as governor, scoped:
            bench = benchmark_by_name(name)
            if store is not None and incremental:
                # analyze stage: map the source digest to the judgment
                # digests without re-running the abstract interpreter
                source_digest = digest_text(_suite.load_source(bench))
                analyze_key = digest_many(
                    "analyze", STAGE_VERSION, bench.name, source_digest)
                analyzed = store.get("analyze", analyze_key)
                cache_info = {
                    "store": str(store.root),
                    "incremental": True,
                    "source_digest": source_digest,
                    "analyze": "hit" if analyzed is not None else "miss",
                    "triage": "miss",
                }
                if analyzed is not None:
                    cache_info["invariants_digest"] = \
                        analyzed["invariants"]
                    cache_info["success_digest"] = analyzed["success"]
                    report_key = _report_key(
                        bench, cfg,
                        analyzed["invariants"], analyzed["success"],
                    )
                    recorded = store.get("triage", report_key)
            if recorded is None:
                program, analysis = _suite.load_analysis(bench)
                if store is not None and incremental:
                    invariants_digest = digest(analysis.invariants)
                    success_digest = digest(analysis.success)
                    cache_info["invariants_digest"] = invariants_digest
                    cache_info["success_digest"] = success_digest
                    if cache_info["analyze"] == "miss":
                        store.put("analyze", analyze_key, {
                            "invariants": invariants_digest,
                            "success": success_digest,
                        })
                    # an edited source with an unchanged judgment still
                    # resolves to the recorded verdict
                    report_key = _report_key(
                        bench, cfg, invariants_digest, success_digest)
                    recorded = store.get("triage", report_key)
            if recorded is None:
                oracle = ExhaustiveOracle(
                    program, analysis, radius=bench.oracle_radius
                )
                # the engine inherits the ambient governor installed above
                result = diagnose_error(analysis, oracle, config)
            else:
                cache_info["triage"] = "hit"
                obs.inc("batch.reports_cached")
        if recorded is not None:
            return TriageOutcome(
                name=name,
                classification=recorded["classification"],
                expected=recorded["expected"],
                num_queries=recorded["num_queries"],
                rounds=recorded["rounds"],
                elapsed_seconds=time.perf_counter() - start,
                telemetry=stamped(cap.snapshot),
                events=report_events(),
                provenance=report_provenance(),
                cache=cache_info,
                trace_id=ctx.trace_id if ctx is not None else None,
            )
        outcome = TriageOutcome(
            name=name,
            classification=result.classification,
            expected=bench.classification,
            num_queries=result.num_queries,
            rounds=result.rounds,
            elapsed_seconds=time.perf_counter() - start,
            timed_out=result.exhausted_kind == "deadline",
            telemetry=stamped(cap.snapshot),
            events=report_events(),
            provenance=report_provenance(),
            exhausted_stage=result.exhausted_stage,
            exhausted_kind=result.exhausted_kind,
            resource_spend=result.resource_spend,
            cache=_merge_cache_info(cache_info, result.cache),
            trace_id=ctx.trace_id if ctx is not None else None,
        )
        if store is not None and report_key is not None \
                and _cacheable(outcome):
            store.put("triage", report_key, {
                "classification": outcome.classification,
                "expected": outcome.expected,
                "num_queries": outcome.num_queries,
                "rounds": outcome.rounds,
            })
        return outcome
    except ResourceExhausted as exc:
        # a limit ran out before the engine's own handler could see it
        # (loading / abstract interpretation) — same verdict, same shape;
        # the capture scope already closed, so the partial telemetry of
        # the failed attempt is still collected
        return TriageOutcome(
            name=name,
            classification=TriageVerdict.UNKNOWN_RESOURCE.value,
            expected=None,
            elapsed_seconds=time.perf_counter() - start,
            timed_out=exc.kind == "deadline",
            telemetry=stamped(cap.snapshot) if cap is not None else None,
            events=report_events(),
            provenance=report_provenance(),
            exhausted_stage=exc.stage,
            exhausted_kind=exc.kind,
            trace_id=ctx.trace_id if ctx is not None else None,
        )
    except Exception as exc:  # noqa: BLE001 - outcomes must cross processes
        return TriageOutcome(
            name=name,
            classification="unknown",
            expected=None,
            elapsed_seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
            telemetry=stamped(cap.snapshot) if cap is not None else None,
            events=report_events(),
            provenance=report_provenance(),
            exhausted_stage=getattr(exc, "stage", None),
            trace_id=ctx.trace_id if ctx is not None else None,
        )
    finally:
        faults.set_report(None)


def _load_one(name: str):
    """Load + analyze one benchmark (worker for ``load_many``)."""
    bench = benchmark_by_name(name)
    program, analysis = _suite.load_analysis(bench)
    return bench, program, analysis


# ---------------------------------------------------------------------------
# scheduler policy predicates
# ---------------------------------------------------------------------------

def _stuck_outcome(name: str, limits: Limits | None) -> TriageOutcome:
    """The outcome for a worker that never returned (killed or a hang no
    checkpoint could observe) — no stage attribution is possible."""
    deadline = limits.deadline if limits is not None else None
    return TriageOutcome(
        name=name,
        classification=TriageVerdict.UNKNOWN_RESOURCE.value,
        expected=None,
        elapsed_seconds=deadline or 0.0,
        timed_out=True,
        exhausted_kind="deadline",
        error="worker unresponsive past the grace window",
    )


def _is_retryable(outcome: TriageOutcome) -> bool:
    """Crashes and resource exhaustion earn another attempt; genuine
    verdicts (including plain ``unknown`` from round exhaustion) are
    deterministic and final."""
    return outcome.error is not None or \
        outcome.verdict is TriageVerdict.UNKNOWN_RESOURCE


def _finalize(outcome: TriageOutcome, attempts: int) -> TriageOutcome:
    """Stamp the attempt count; quarantine still-retryable outcomes."""
    return replace(
        outcome, attempts=attempts,
        degraded=outcome.degraded or _is_retryable(outcome),
    )


def _max_attempts(limits: Limits | None) -> int:
    return 1 if limits is None else max(1, limits.retries + 1)


def _merged_telemetry(outcomes: list[TriageOutcome],
                      telemetry: bool) -> dict | None:
    """One fleet-wide snapshot: every attempt of every report counts.

    Degraded reports and failed attempts contribute their partial
    snapshots (each stamped with its attempt number) — quarantining a
    report must not silently drop the work its workers did.
    """
    if not telemetry:
        return None
    snaps: list[dict | None] = []
    for o in outcomes:
        snaps.extend(o.prior_telemetry)
        snaps.append(o.telemetry)
    return obs.merge_snapshots(*snaps)
