"""Parallel batch triage of error reports (multiprocessing driver)."""

from .driver import BatchResult, TriageOutcome, load_many, triage_many

__all__ = [
    "BatchResult",
    "TriageOutcome",
    "load_many",
    "triage_many",
]
