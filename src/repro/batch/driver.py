"""Parallel batch triage of error reports.

The ROADMAP's north star is a system that triages *fleets* of error
reports, not one report at a time.  Each report's diagnosis is
independent of every other report's, so the batch driver fans reports
out over worker processes:

* **per-worker solver reuse** — each worker process keeps its
  module-level solver caches, hash-consing tables and QE caches warm
  across every report it handles, so a worker's second report is much
  cheaper than its first;
* **ordered results** — outcomes come back in input order regardless of
  completion order;
* **per-report timeout** — a report that exceeds ``timeout`` seconds is
  recorded as timed out (classification ``"unknown"``) without sinking
  the batch;
* **graceful degradation** — if worker processes cannot be spawned or
  the pool breaks mid-run, the remaining reports are triaged serially
  in-process and the batch still completes.

Results are plain data (:class:`TriageOutcome` carries strings and
numbers, never formulas), so nothing fragile crosses the process
boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field

from .. import obs
from ..diagnosis import EngineConfig, ExhaustiveOracle, diagnose_error
from ..schema import TriageVerdict, dump_json, envelope
from ..suite import BENCHMARKS, benchmark_by_name, load_analysis


@dataclass(frozen=True)
class TriageOutcome:
    """The result of triaging one report — plain data only."""

    name: str
    classification: str            # 'false alarm' | 'real bug' | 'unknown'
    expected: str | None = None    # ground-truth label, when known
    num_queries: int = 0
    rounds: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    error: str | None = None       # repr of an in-worker exception
    telemetry: dict | None = None  # per-report obs snapshot, when enabled
    events: tuple = ()             # per-report obs events, when enabled

    @property
    def correct(self) -> bool:
        return self.expected is not None and \
            self.classification == self.expected

    @property
    def verdict(self) -> TriageVerdict:
        return TriageVerdict.from_classification(self.classification)

    def to_dict(self) -> dict:
        """The stable ``repro.result`` payload (see docs/API.md)."""
        return envelope(
            "triage_outcome",
            self.verdict,
            name=self.name,
            expected=self.expected,
            correct=self.correct if self.expected is not None else None,
            num_queries=self.num_queries,
            rounds=self.rounds,
            elapsed_seconds=self.elapsed_seconds,
            timed_out=self.timed_out,
            error=self.error,
            telemetry=self.telemetry,
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return dump_json(self.to_dict(), indent=indent)


@dataclass
class BatchResult:
    """Outcome of a :func:`triage_many` run."""

    outcomes: list[TriageOutcome]
    wall_seconds: float
    jobs: int
    mode: str                      # 'serial' | 'parallel' | 'degraded'
    telemetry: dict | None = None  # merged per-worker obs snapshots
    failures: list[TriageOutcome] = field(init=False)

    def __post_init__(self) -> None:
        self.failures = [
            o for o in self.outcomes
            if o.expected is not None and not o.correct
        ]

    @property
    def accuracy(self) -> float:
        labelled = [o for o in self.outcomes if o.expected is not None]
        if not labelled:
            return 0.0
        return sum(1 for o in labelled if o.correct) / len(labelled)

    @property
    def verdict(self) -> TriageVerdict:
        """The strongest claim about the batch: any real bug makes the
        batch ``REAL_BUG``; otherwise any unknown leaves it ``UNKNOWN``;
        a batch of pure false alarms is ``FALSE_ALARM``."""
        verdicts = {o.verdict for o in self.outcomes}
        if TriageVerdict.REAL_BUG in verdicts:
            return TriageVerdict.REAL_BUG
        if TriageVerdict.UNKNOWN in verdicts or not verdicts:
            return TriageVerdict.UNKNOWN
        return TriageVerdict.FALSE_ALARM

    @property
    def verdict_counts(self) -> dict[str, int]:
        counts = {v.value: 0 for v in TriageVerdict}
        for outcome in self.outcomes:
            counts[outcome.verdict.value] += 1
        return counts

    def by_name(self, name: str) -> TriageOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no outcome for {name!r}")

    def to_dict(self) -> dict:
        """The stable ``repro.result`` payload (see docs/API.md)."""
        return envelope(
            "batch",
            self.verdict,
            wall_seconds=self.wall_seconds,
            jobs=self.jobs,
            mode=self.mode,
            accuracy=self.accuracy,
            verdict_counts=self.verdict_counts,
            outcomes=[o.to_dict() for o in self.outcomes],
            telemetry=self.telemetry,
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return dump_json(self.to_dict(), indent=indent)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

def _triage_one(name: str, config: EngineConfig | None,
                telemetry: bool = False) -> TriageOutcome:
    """Triage a single benchmark report against its ground-truth oracle.

    Top-level so it pickles under any multiprocessing start method.  All
    process-global caches (default solver, intern tables, QE caches)
    stay warm between calls within one worker.

    With ``telemetry`` the report runs under an obs capture scope: the
    outcome carries the report's own counter/span snapshot plus the span
    events it emitted, both plain data, so the driver can merge them
    across workers.
    """
    start = time.perf_counter()
    if telemetry and not obs.is_enabled():
        obs.enable()
    events_before = obs.event_count() if telemetry else 0
    try:
        with obs.capture() as cap, \
                obs.span("triage.report", report=name):
            bench = benchmark_by_name(name)
            program, analysis = load_analysis(bench)
            oracle = ExhaustiveOracle(
                program, analysis, radius=bench.oracle_radius
            )
            result = diagnose_error(analysis, oracle, config)
        return TriageOutcome(
            name=name,
            classification=result.classification,
            expected=bench.classification,
            num_queries=result.num_queries,
            rounds=result.rounds,
            elapsed_seconds=time.perf_counter() - start,
            telemetry=cap.snapshot,
            events=tuple(obs.events()[events_before:]) if telemetry
            else (),
        )
    except Exception as exc:  # noqa: BLE001 - outcomes must cross processes
        return TriageOutcome(
            name=name,
            classification="unknown",
            expected=None,
            elapsed_seconds=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )


def _load_one(name: str):
    """Load + analyze one benchmark (worker for :func:`load_many`)."""
    bench = benchmark_by_name(name)
    program, analysis = load_analysis(bench)
    return bench, program, analysis


# ---------------------------------------------------------------------------
# driver side
# ---------------------------------------------------------------------------

def _default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def _timeout_outcome(name: str, timeout: float) -> TriageOutcome:
    return TriageOutcome(
        name=name,
        classification="unknown",
        expected=None,
        elapsed_seconds=timeout,
        timed_out=True,
        error=f"timed out after {timeout:g}s",
    )


def triage_many(
    names: list[str] | None = None,
    *,
    jobs: int | None = None,
    timeout: float | None = None,
    config: EngineConfig | None = None,
    telemetry: bool = False,
) -> BatchResult:
    """Triage many reports, in parallel when more than one core helps.

    ``names`` defaults to the full Figure 7 suite.  ``jobs`` defaults to
    the CPU count; ``jobs <= 1`` (or a single report) selects the serial
    path outright.  ``timeout`` bounds each report's wall time in the
    parallel mode.  ``telemetry`` collects per-report obs snapshots in
    every worker and merges them into ``BatchResult.telemetry`` (QE/SMT
    cache hit-rates, span timings, SAT conflict counts, ...).
    """
    if names is None:
        names = [b.name for b in BENCHMARKS]
    if jobs is None:
        jobs = _default_jobs()
    jobs = max(1, min(jobs, len(names))) if names else 1

    # also honour a caller that enabled obs globally before batching
    telemetry = telemetry or obs.is_enabled()

    start = time.perf_counter()
    if jobs <= 1 or len(names) <= 1:
        outcomes = [_triage_one(name, config, telemetry)
                    for name in names]
        return BatchResult(
            outcomes=outcomes,
            wall_seconds=time.perf_counter() - start,
            jobs=1,
            mode="serial",
            telemetry=_merged_telemetry(outcomes, telemetry),
        )

    outcomes, degraded = _triage_parallel(
        names, jobs, timeout, config, telemetry
    )
    return BatchResult(
        outcomes=outcomes,
        wall_seconds=time.perf_counter() - start,
        jobs=jobs,
        mode="degraded" if degraded else "parallel",
        telemetry=_merged_telemetry(outcomes, telemetry),
    )


def _merged_telemetry(outcomes: list[TriageOutcome],
                      telemetry: bool) -> dict | None:
    if not telemetry:
        return None
    return obs.merge_snapshots(*(o.telemetry for o in outcomes))


def _triage_parallel(
    names: list[str],
    jobs: int,
    timeout: float | None,
    config: EngineConfig | None,
    telemetry: bool = False,
) -> tuple[list[TriageOutcome], bool]:
    """Fan out over a process pool; fall back to serial on pool failure."""
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        ctx = multiprocessing.get_context()

    results: dict[str, TriageOutcome] = {}
    degraded = False
    try:
        with ctx.Pool(processes=jobs) as pool:
            pending = [
                (name,
                 pool.apply_async(_triage_one, (name, config, telemetry)))
                for name in names
            ]
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            for name, handle in pending:
                try:
                    if deadline is None:
                        results[name] = handle.get()
                    else:
                        remaining = max(0.0, deadline - time.monotonic())
                        results[name] = handle.get(remaining)
                except multiprocessing.TimeoutError:
                    results[name] = _timeout_outcome(name, timeout or 0.0)
            if any(o.timed_out for o in results.values()):
                # stuck workers would keep the pool's atexit join hanging
                pool.terminate()
    except (OSError, multiprocessing.ProcessError, EOFError):
        degraded = True

    if degraded:
        # the pool broke; finish whatever did not complete, in-process
        for name in names:
            if name not in results:
                results[name] = _triage_one(name, config, telemetry)

    return [results[name] for name in names], degraded


def load_many(
    benches,
    *,
    jobs: int | None = None,
):
    """Load + analyze benchmarks, in input order, optionally in parallel.

    Returns ``[(benchmark, program, analysis), ...]``.  Used by the
    benchmark harness and the user-study driver to warm a whole suite.
    Falls back to serial loading if worker processes are unavailable.
    """
    names = [b.name for b in benches]
    if jobs is None:
        jobs = _default_jobs()
    jobs = max(1, min(jobs, len(names))) if names else 1

    if jobs <= 1 or len(names) <= 1:
        return [_load_one(name) for name in names]

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        ctx = multiprocessing.get_context()
    try:
        with ctx.Pool(processes=jobs) as pool:
            return pool.map(_load_one, names)
    except (OSError, multiprocessing.ProcessError, EOFError):
        return [_load_one(name) for name in names]
