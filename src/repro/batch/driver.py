"""Batch triage of error reports over the transport-agnostic scheduler.

The ROADMAP's north star is a system that triages *fleets* of error
reports, not one report at a time.  Each report's diagnosis is
independent of every other report's, so the driver fans reports out —
historically over a local process pool only, now over any
:mod:`repro.sched` transport:

* ``jobs <= 1`` (or a single report) — the in-process
  :class:`~repro.sched.InlineTransport` (mode ``serial``);
* ``jobs > 1`` — the :class:`~repro.sched.LocalPoolTransport`
  process pool (mode ``parallel``), per-worker solver/intern/QE
  caches kept warm across the reports each worker handles;
* ``workers=[url, ...]`` — the :class:`~repro.sched.RemoteTransport`
  driving running ``repro serve`` instances (mode ``remote``),
  sharded by content digest with work stealing, ideally over a
  shared cache root (see ``docs/SCALING.md``).

All three run the *same* scheduler core (:class:`repro.sched.Scheduler`)
— one copy of per-report retry with backoff, stuck-worker grace-window
detection, quarantine into :attr:`BatchResult.degraded`, worker
rebuild, and serial in-process fallback when the transport machinery
breaks — and the same telemetry/provenance/trace merge regardless of
where the attempts ran.

Hang detection is two-layered.  The governor's deadline check inside
every solver checkpoint catches hangs the worker can see (including
``sleep`` faults), returning a normal ``unknown resource`` outcome with
the *stage* that noticed — that is the attribution path.  The
scheduler's grace window (``deadline * 1.5 + 0.5s``) catches workers
that never return at all (SIGKILL, hard hangs); those quarantine
without stage attribution because no code ran to observe one.

Results are plain data (:class:`TriageOutcome` carries strings and
numbers, never formulas), so nothing fragile crosses a process or HTTP
boundary.
"""

from __future__ import annotations

import multiprocessing
import os
import time

from .. import obs
from ..obs import context as ocontext
from ..obs import logging as olog
from ..cache import open_store
from ..diagnosis import EngineConfig
from ..limits import Limits
from ..suite import BENCHMARKS

# the result types and worker-side helpers live in outcomes.py so the
# scheduler can use them without importing this surface; re-exported
# here because this module has always been their public home
from .outcomes import (  # noqa: F401  (re-exports)
    BatchResult,
    TriageOutcome,
    _cacheable,
    _finalize,
    _is_retryable,
    _load_one,
    _max_attempts,
    _merge_cache_info,
    _merged_telemetry,
    _report_key,
    _stuck_outcome,
    _triage_one,
)
from ..sched import (
    InlineTransport,
    LocalPoolTransport,
    RemoteTransport,
    Scheduler,
    TriageSpec,
)


def _default_jobs() -> int:
    return max(1, os.cpu_count() or 1)


def triage_many(
    names: list[str] | None = None,
    *,
    jobs: int | None = None,
    config: EngineConfig | None = None,
    telemetry: bool = False,
    limits: Limits | None = None,
    cache_dir: str | None = None,
    incremental: bool = False,
    workers: list[str] | None = None,
    transport=None,
) -> BatchResult:
    """Triage many reports, in parallel when more than one core helps.

    ``names`` defaults to the full Figure 7 suite.  ``jobs`` defaults to
    the CPU count; ``jobs <= 1`` (or a single report) selects the serial
    path outright.  ``limits`` governs each report individually
    (deadline, per-stage budgets, retry policy — see
    :mod:`repro.limits`); reports that run out come back as
    ``"unknown resource"`` and, once retries are exhausted, are
    quarantined into ``BatchResult.degraded``.  ``telemetry`` collects
    per-report obs snapshots in every worker and merges them into
    ``BatchResult.telemetry``.

    ``cache_dir`` activates the persistent content-addressed store for
    every report (stage artifacts, QE/SMT verdicts), shared across
    workers and across runs.  ``incremental`` additionally serves whole
    reports from recorded verdicts when their ``(I, phi)`` judgment
    digest is unchanged — re-triaging an edited suite recomputes only
    the reports the edit actually touched.

    ``workers`` fans the batch out over running ``repro serve``
    instances instead of local processes (``repro triage --workers``);
    give the fleet a shared ``cache_dir`` so warm digests are never
    recomputed anywhere.  ``transport`` accepts any pre-built
    :mod:`repro.sched` transport outright (it wins over ``workers``);
    its ``spec`` is rebuilt from this call's settings.
    """
    if incremental and cache_dir is None:
        raise ValueError("incremental re-triage needs cache_dir")
    if names is None:
        names = [b.name for b in BENCHMARKS]

    # also honour a caller that enabled obs globally before batching
    telemetry = telemetry or obs.is_enabled()
    limits_payload = limits.to_dict() if limits is not None else None
    spec = TriageSpec(config=config, telemetry=telemetry,
                      cache_dir=cache_dir, incremental=incremental)

    remote = transport is not None or workers is not None
    if remote:
        if transport is None:
            transport = RemoteTransport(list(workers), spec=spec)
        else:
            transport.spec = spec
        jobs = transport.parallelism
    else:
        if jobs is None:
            jobs = _default_jobs()
        jobs = max(1, min(jobs, len(names))) if names else 1
        if jobs <= 1 or len(names) <= 1:
            jobs = 1
            transport = InlineTransport(spec=spec)
        else:
            transport = LocalPoolTransport(jobs=jobs, spec=spec)

    # the batch is an ingress: adopt the caller's trace (a serve job, a
    # CLI invocation) or mint a fresh root, and hand every report its
    # own child hop so worker-side records share the trace id
    root = ocontext.current()
    if root is None:
        root = ocontext.new_trace("batch")

    start = time.perf_counter()
    with ocontext.bind(root):
        olog.info("batch.start", reports=len(names), jobs=jobs)
        traces = {n: root.child().to_dict() for n in names}
        scheduler = Scheduler(transport, limits=limits, spec=spec)
        outcomes, broke = scheduler.run(names, traces)
        if remote:
            mode = "degraded" if broke else "remote"
        elif isinstance(transport, InlineTransport):
            mode = "serial"
        else:
            mode = "degraded" if broke else "parallel"
        result = BatchResult(
            outcomes=outcomes,
            wall_seconds=time.perf_counter() - start,
            jobs=jobs,
            mode=mode,
            telemetry=_merged_telemetry(outcomes, telemetry),
            limits=limits_payload,
            cache=_store_stats(cache_dir),
            trace_id=root.trace_id,
            backend="remote" if remote else None,
            workers=(list(getattr(transport, "urls", workers or []))
                     if remote else None),
            steals=getattr(transport, "steals", None) if remote else None,
        )
        olog.info("batch.done", reports=len(names), mode=result.mode,
                  wall_s=round(result.wall_seconds, 4),
                  degraded=len(result.degraded))
        return result


def _store_stats(cache_dir: str | None) -> dict | None:
    """Driver-side store statistics for the batch envelope (entry count
    reflects the shared directory; counters are this process's)."""
    if cache_dir is None:
        return None
    return open_store(cache_dir).stats()


def triage_with_retries(name: str, config: EngineConfig | None,
                        telemetry: bool,
                        limits: Limits | None,
                        cache_dir: str | None = None,
                        incremental: bool = False,
                        trace: dict | None = None,
                        thread_scoped: bool = False) -> TriageOutcome:
    """One report through the full scheduler retry/quarantine policy,
    in-process — the serve daemon's per-job entry point.

    Serve passes ``thread_scoped=True``: its attempts run on worker
    threads sharing one process, so governors must install
    thread-locally (see :class:`~repro.sched.TriageSpec`)."""
    spec = TriageSpec(config=config, telemetry=telemetry,
                      cache_dir=cache_dir, incremental=incremental,
                      thread_scoped=thread_scoped)
    scheduler = Scheduler(InlineTransport(spec=spec), limits=limits,
                          spec=spec)
    outcomes, _broke = scheduler.run([name], {name: trace})
    return outcomes[0]


#: Backwards-compatible alias (pre-scheduler name).
_triage_with_retries = triage_with_retries


def load_many(
    benches,
    *,
    jobs: int | None = None,
):
    """Load + analyze benchmarks, in input order, optionally in parallel.

    Returns ``[(benchmark, program, analysis), ...]``.  Used by the
    benchmark harness and the user-study driver to warm a whole suite.
    Falls back to serial loading if worker processes are unavailable.
    """
    names = [b.name for b in benches]
    if jobs is None:
        jobs = _default_jobs()
    jobs = max(1, min(jobs, len(names))) if names else 1

    if jobs <= 1 or len(names) <= 1:
        return [_load_one(name) for name in names]

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        ctx = multiprocessing.get_context()
    try:
        with ctx.Pool(processes=jobs) as pool:
            return pool.map(_load_one, names)
    except (OSError, multiprocessing.ProcessError, EOFError):
        return [_load_one(name) for name in names]
