"""Abstract-interpretation substrates that supply loop postconditions."""

from .annotate import (
    DOMAINS,
    IntervalDomain,
    OctagonDomain,
    ZoneDomain,
    annotate_program,
    infer_loop_posts,
)
from .intervals import Interval, IntervalEnv, eval_interval
from .octagons import Octagon
from .zones import Zone

__all__ = [
    "DOMAINS",
    "IntervalDomain",
    "OctagonDomain",
    "ZoneDomain",
    "annotate_program",
    "infer_loop_posts",
    "Interval",
    "IntervalEnv",
    "eval_interval",
    "Octagon",
    "Zone",
]
