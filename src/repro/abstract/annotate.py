"""Automatic loop-postcondition annotation.

The paper assumes loop postconditions "obtained from any automatic sound
static analysis technique, such as abstract interpretation".  This module
is that technique: it runs the interval and/or zone abstract interpreters
over a program, computes a sound invariant for every loop (Kleene
iteration with delayed widening and one narrowing pass), and attaches the
facts about loop-modified variables as ``@post`` annotations.

Loops that already carry a manual ``@post`` are left untouched, so
hand-written annotations (as in the paper's examples) always win.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..lang.ast import (
    Assign,
    Block,
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Havoc,
    If,
    Name,
    Pred,
    Program,
    Skip,
    Stmt,
    While,
)
from .intervals import Interval, IntervalEnv, assume as interval_assume, \
    eval_interval, _negate
from .zones import Zone

_WIDEN_DELAY = 2
_MAX_ITER = 60


class Domain(Protocol):
    """The operations the generic abstract runner needs."""

    def initial(self, program: Program) -> object: ...
    def assign(self, state: object, name: str, expr) -> object: ...
    def havoc(self, state: object, name: str,
              assumption: Pred | None) -> object: ...
    def assume(self, state: object, pred: Pred) -> object: ...
    def join(self, a: object, b: object) -> object: ...
    def widen(self, a: object, b: object) -> object: ...
    def le(self, a: object, b: object) -> bool: ...
    def loop_facts(self, state: object, modified: set[str]) -> list[Pred]: ...


class IntervalDomain:
    """Adapter over :mod:`repro.abstract.intervals`."""

    def initial(self, program: Program) -> IntervalEnv:
        env = IntervalEnv()
        for param in program.params:
            env[param.name] = (
                Interval(0, None) if param.unsigned else Interval.TOP
            )
        for name in program.locals:
            env[name] = Interval.const(0)
        return env

    def assign(self, state: IntervalEnv, name: str, expr) -> IntervalEnv:
        result = state.copy()
        result[name] = eval_interval(expr, state)
        return result

    def havoc(self, state: IntervalEnv, name: str,
              assumption: Pred | None) -> IntervalEnv:
        result = state.copy()
        result[name] = Interval.TOP
        if assumption is not None:
            result = interval_assume(assumption, result)
        return result

    def assume(self, state: IntervalEnv, pred: Pred) -> IntervalEnv:
        return interval_assume(pred, state)

    def join(self, a: IntervalEnv, b: IntervalEnv) -> IntervalEnv:
        return a.join(b)

    def widen(self, a: IntervalEnv, b: IntervalEnv) -> IntervalEnv:
        return a.widen(b)

    def le(self, a: IntervalEnv, b: IntervalEnv) -> bool:
        return a.le(b)

    def loop_facts(self, state: IntervalEnv,
                   modified: set[str]) -> list[Pred]:
        if state.is_bottom:
            return [BoolConst(False)]
        facts: list[Pred] = []
        for name in sorted(modified):
            interval = state[name]
            if interval.lo is not None:
                facts.append(Cmp(">=", Name(name), Const(interval.lo)))
            if interval.hi is not None:
                facts.append(Cmp("<=", Name(name), Const(interval.hi)))
        return facts


class ZoneDomain:
    """Adapter over :mod:`repro.abstract.zones`."""

    def initial(self, program: Program) -> Zone:
        names = tuple(program.param_names()) + tuple(program.locals)
        zone = Zone.top(names)
        for param in program.params:
            if param.unsigned:
                zone.add_constraint(0, zone.index(param.name), 0)  # p >= 0
        for name in program.locals:
            i = zone.index(name)
            zone.add_constraint(i, 0, 0)
            zone.add_constraint(0, i, 0)
        return zone

    def assign(self, state: Zone, name: str, expr) -> Zone:
        result = state.copy()
        result.assign(name, expr)
        return result

    def havoc(self, state: Zone, name: str,
              assumption: Pred | None) -> Zone:
        result = state.copy()
        result.forget(name)
        if assumption is not None:
            result.assume(assumption)
        return result

    def assume(self, state: Zone, pred: Pred) -> Zone:
        result = state.copy()
        result.assume(pred)
        return result

    def join(self, a: Zone, b: Zone) -> Zone:
        return a.join(b)

    def widen(self, a: Zone, b: Zone) -> Zone:
        return a.widen(b)

    def le(self, a: Zone, b: Zone) -> bool:
        return a.le(b)

    def loop_facts(self, state: Zone, modified: set[str]) -> list[Pred]:
        return state.facts(only=modified)


class OctagonDomain:
    """Adapter over :mod:`repro.abstract.octagons`."""

    def initial(self, program: Program):
        from .octagons import Octagon

        names = tuple(program.param_names()) + tuple(program.locals)
        octagon = Octagon.top(names)
        for param in program.params:
            if param.unsigned:
                octagon.set_lower(param.name, 0)
        for name in program.locals:
            octagon.set_upper(name, 0)
            octagon.set_lower(name, 0)
        return octagon

    def assign(self, state, name: str, expr):
        result = state.copy()
        result.assign(name, expr)
        return result

    def havoc(self, state, name: str, assumption: Pred | None):
        result = state.copy()
        result.forget(name)
        if assumption is not None:
            result.assume(assumption)
        return result

    def assume(self, state, pred: Pred):
        result = state.copy()
        result.assume(pred)
        return result

    def join(self, a, b):
        return a.join(b)

    def widen(self, a, b):
        return a.widen(b)

    def le(self, a, b) -> bool:
        return a.le(b)

    def loop_facts(self, state, modified: set[str]) -> list[Pred]:
        return state.facts(only=modified)


DOMAINS: dict[str, type] = {
    "interval": IntervalDomain,
    "zone": ZoneDomain,
    "octagon": OctagonDomain,
}


@dataclass
class _Runner:
    domain: Domain
    posts: dict[int, list[Pred]]

    def run(self, program: Program) -> None:
        state = self.domain.initial(program)
        self._block(program.body, state)

    def _block(self, block: Block, state: object) -> object:
        for stmt in block.body:
            state = self._stmt(stmt, state)
        return state

    def _stmt(self, stmt: Stmt, state: object) -> object:
        if isinstance(stmt, Skip):
            return state
        if isinstance(stmt, Assign):
            return self.domain.assign(state, stmt.target, stmt.value)
        if isinstance(stmt, Havoc):
            return self.domain.havoc(state, stmt.target, stmt.assume)
        if isinstance(stmt, Block):
            return self._block(stmt, state)
        if isinstance(stmt, If):
            then_state = self._block(
                stmt.then_branch, self.domain.assume(state, stmt.cond)
            )
            else_state = self._block(
                stmt.else_branch,
                self.domain.assume(state, _negate(stmt.cond)),
            )
            return self.domain.join(then_state, else_state)
        if isinstance(stmt, While):
            return self._while(stmt, state)
        raise TypeError(f"unexpected statement {stmt!r}")

    def _while(self, stmt: While, state: object) -> object:
        head = state
        for iteration in range(_MAX_ITER):
            body_in = self.domain.assume(head, stmt.cond)
            body_out = self._block(stmt.body, body_in)
            candidate = self.domain.join(state, body_out)
            if self.domain.le(candidate, head):
                break
            if iteration >= _WIDEN_DELAY:
                head = self.domain.widen(head, candidate)
            else:
                head = self.domain.join(head, candidate)
        else:  # pragma: no cover - widening guarantees termination
            raise RuntimeError("abstract loop iteration did not stabilize")

        # one narrowing pass: re-run the body from the stable head
        body_out = self._block(stmt.body, self.domain.assume(head, stmt.cond))
        narrowed = self.domain.join(state, body_out)
        if self.domain.le(narrowed, head):
            head = narrowed

        exit_state = self.domain.assume(head, _negate(stmt.cond))
        # Overwrite, never accumulate: a nested loop is re-analyzed on
        # every iteration of the enclosing fixpoint, and only the final
        # pass (under the enclosing loop's stable head) is sound for all
        # reachable contexts.
        self.posts[stmt.label] = self.domain.loop_facts(
            exit_state, stmt.modified_vars()
        )
        return exit_state


def infer_loop_posts(program: Program,
                     domains: tuple[str, ...] = ("interval", "zone"),
                     ) -> dict[int, list[Pred]]:
    """Infer postcondition facts for every loop, keyed by loop label."""
    merged: dict[int, list[Pred]] = {}
    for name in domains:
        try:
            domain_cls = DOMAINS[name]
        except KeyError:
            raise ValueError(f"unknown abstract domain {name!r}")
        runner = _Runner(domain_cls(), {})
        runner.run(program)
        for label, facts in runner.posts.items():
            merged.setdefault(label, []).extend(facts)
    return {
        label: _dedupe(facts) for label, facts in merged.items()
    }


def annotate_program(program: Program,
                     domains: tuple[str, ...] = ("interval", "zone"),
                     ) -> Program:
    """Return a copy of ``program`` with inferred ``@post`` annotations.

    Loops that already have a manual annotation keep it.
    """
    posts = infer_loop_posts(program, domains)

    def rebuild_stmt(stmt: Stmt) -> Stmt:
        if isinstance(stmt, Block):
            return Block(tuple(rebuild_stmt(s) for s in stmt.body), stmt.span)
        if isinstance(stmt, If):
            return If(
                stmt.cond,
                rebuild_stmt(stmt.then_branch),  # type: ignore[arg-type]
                rebuild_stmt(stmt.else_branch),  # type: ignore[arg-type]
                stmt.span,
            )
        if isinstance(stmt, While):
            body = rebuild_stmt(stmt.body)
            post = stmt.post
            if post is None:
                facts = posts.get(stmt.label, [])
                if facts:
                    post = facts[0] if len(facts) == 1 else BoolOp(
                        "&&", tuple(facts)
                    )
            return While(stmt.cond, body, stmt.label, post,  # type: ignore
                         stmt.span)
        return stmt

    new_body = rebuild_stmt(program.body)
    assert isinstance(new_body, Block)
    return Program(
        name=program.name,
        params=program.params,
        locals=program.locals,
        body=new_body,
        check=program.check,
        span=program.span,
        source=program.source,
    )


def _dedupe(facts: list[Pred]) -> list[Pred]:
    seen: set[str] = set()
    result: list[Pred] = []
    for fact in facts:
        key = str(fact)
        if key not in seen:
            seen.add(key)
            result.append(fact)
    return result
