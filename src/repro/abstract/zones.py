"""Zone (difference-bound matrix) abstract interpretation.

Zones track constraints of the form ``x - y <= c``, ``x <= c`` and
``x >= c`` — exactly the relational facts the paper's examples need from
the external analysis (``i > n`` after the loop in Section 1.1 is the
zone fact ``n - i <= -1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..lang.ast import (
    BinOp,
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Name,
    NotPred,
    Pred,
)
from ..logic.terms import LinTerm, Var

_INF = None  # bound representation: None is +infinity


def _badd(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return a + b


def _bmin(a: int | None, b: int | None) -> int | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _ble(a: int | None, b: int | None) -> bool:
    """a <= b with None = +inf."""
    if b is None:
        return True
    if a is None:
        return False
    return a <= b


@dataclass
class Zone:
    """A DBM over ``names`` plus the implicit zero variable (index 0).

    ``m[i][j]`` bounds ``v_i - v_j <= m[i][j]``; index 0 denotes the
    constant 0, so ``m[i][0]`` is an upper bound and ``m[0][i]`` a negated
    lower bound.
    """

    names: tuple[str, ...]
    m: list[list[int | None]] = field(default_factory=list)
    bottom: bool = False

    def __post_init__(self) -> None:
        if not self.m:
            n = len(self.names) + 1
            self.m = [
                [0 if i == j else _INF for j in range(n)] for i in range(n)
            ]

    # ------------------------------------------------------------------
    def index(self, name: str) -> int:
        return self.names.index(name) + 1

    def copy(self) -> "Zone":
        return Zone(self.names, [row[:] for row in self.m], self.bottom)

    @staticmethod
    def top(names: Iterable[str]) -> "Zone":
        return Zone(tuple(names))

    def close(self) -> "Zone":
        """Floyd–Warshall closure; detects emptiness."""
        if self.bottom:
            return self
        n = len(self.m)
        m = self.m
        for k in range(n):
            for i in range(n):
                ik = m[i][k]
                if ik is None:
                    continue
                row_k = m[k]
                row_i = m[i]
                for j in range(n):
                    through = _badd(ik, row_k[j])
                    if through is not None and not _ble(row_i[j], through):
                        row_i[j] = through
        for i in range(n):
            if m[i][i] is not None and m[i][i] < 0:
                self.bottom = True
                break
        return self

    # ------------------------------------------------------------------
    # lattice
    # ------------------------------------------------------------------
    def join(self, other: "Zone") -> "Zone":
        if self.bottom:
            return other.copy()
        if other.bottom:
            return self.copy()
        a, b = self.copy().close(), other.copy().close()
        if a.bottom:
            return b
        if b.bottom:
            return a
        n = len(a.m)
        result = Zone(self.names)
        for i in range(n):
            for j in range(n):
                x, y = a.m[i][j], b.m[i][j]
                result.m[i][j] = None if x is None or y is None else max(x, y)
        return result

    def widen(self, other: "Zone") -> "Zone":
        """Standard DBM widening: drop bounds the new state exceeds."""
        if self.bottom:
            return other.copy()
        if other.bottom:
            return self.copy()
        n = len(self.m)
        result = Zone(self.names)
        for i in range(n):
            for j in range(n):
                result.m[i][j] = (
                    self.m[i][j] if _ble(other.m[i][j], self.m[i][j])
                    else _INF
                )
        return result

    def le(self, other: "Zone") -> bool:
        a = self.copy().close()
        if a.bottom:
            return True
        if other.bottom:
            return False
        n = len(self.m)
        return all(
            _ble(a.m[i][j], other.m[i][j])
            for i in range(n) for j in range(n)
        )

    # ------------------------------------------------------------------
    # transfer functions
    # ------------------------------------------------------------------
    def forget(self, name: str) -> None:
        self.close()
        if self.bottom:
            return
        i = self.index(name)
        n = len(self.m)
        for j in range(n):
            if j != i:
                self.m[i][j] = _INF
                self.m[j][i] = _INF

    def add_constraint(self, i: int, j: int, c: int) -> None:
        """Record ``v_i - v_j <= c``."""
        self.m[i][j] = _bmin(self.m[i][j], c)

    def assign(self, name: str, expr: Expr) -> None:
        """x := e, exactly for ``c``, ``y + c``, ``x + c``; else forget."""
        if self.bottom:
            return
        form = _difference_form(expr)
        i = self.index(name)
        if form is None:
            self.forget(name)
            return
        other, c = form
        if other is None:
            self.forget(name)
            self.add_constraint(i, 0, c)
            self.add_constraint(0, i, -c)
        elif other == name:
            # x := x + c: translate all bounds through the shift
            self.close()
            if self.bottom:
                return
            n = len(self.m)
            for j in range(n):
                if j != i:
                    self.m[i][j] = _badd(self.m[i][j], c)
                    self.m[j][i] = _badd(self.m[j][i], -c)
        else:
            k = self.index(other)
            self.forget(name)
            self.add_constraint(i, k, c)
            self.add_constraint(k, i, -c)

    def assume(self, pred: Pred) -> None:
        """Refine with the difference constraints extractable from pred."""
        if self.bottom:
            return
        if isinstance(pred, BoolConst):
            if not pred.value:
                self.bottom = True
            return
        if isinstance(pred, NotPred):
            self.assume(_negate(pred.arg))
            return
        if isinstance(pred, BoolOp):
            if pred.op == "&&":
                for part in pred.parts:
                    self.assume(part)
                return
            # disjunction: join of the refined branches
            branches = []
            for part in pred.parts:
                branch = self.copy()
                branch.assume(part)
                branches.append(branch)
            joined = branches[0]
            for branch in branches[1:]:
                joined = joined.join(branch)
            self.m = joined.m
            self.bottom = joined.bottom
            return
        if isinstance(pred, Cmp):
            self._assume_cmp(pred)
            return
        raise TypeError(f"unexpected predicate {pred!r}")

    def _assume_cmp(self, pred: Cmp) -> None:
        from ..analysis.lowering import NonLinearError, lower_expr

        env = {name: LinTerm.var(Var(name)) for name in self.names}
        try:
            term = (lower_expr(pred.left, env)
                    - lower_expr(pred.right, env))
        except NonLinearError:
            return  # not expressible: sound to ignore
        # pred: term OP 0
        if pred.op in ("<", "<="):
            self._assume_term_le(term if pred.op == "<=" else term + 1)
        elif pred.op in (">", ">="):
            self._assume_term_le((-term) if pred.op == ">=" else -term + 1)
        elif pred.op == "==":
            self._assume_term_le(term)
            self._assume_term_le(-term)
        # '!=' carries no zone information

    def _assume_term_le(self, term: LinTerm) -> None:
        """Record ``term <= 0`` when it is a difference constraint."""
        coeffs = list(term.coeffs)
        c = -term.const
        if len(coeffs) == 1:
            (v, a), = coeffs
            i = self.index(v.name)
            if a == 1:
                self.add_constraint(i, 0, c)
            elif a == -1:
                self.add_constraint(0, i, c)
        elif len(coeffs) == 2:
            (v1, a1), (v2, a2) = coeffs
            if a1 == 1 and a2 == -1:
                self.add_constraint(self.index(v1.name),
                                    self.index(v2.name), c)
            elif a1 == -1 and a2 == 1:
                self.add_constraint(self.index(v2.name),
                                    self.index(v1.name), c)

    # ------------------------------------------------------------------
    # reading facts back out
    # ------------------------------------------------------------------
    def facts(self, only: set[str] | None = None) -> list[Pred]:
        """Non-redundant difference facts, as surface predicates.

        ``only`` restricts facts to those mentioning at least one of the
        given names (the loop's modified variables).
        """
        zone = self.copy().close()
        if zone.bottom:
            return [BoolConst(False)]
        result: list[Pred] = []
        n = len(zone.m)

        def relevant(*names: str) -> bool:
            return only is None or any(name in only for name in names)

        for i in range(1, n):
            name = self.names[i - 1]
            hi = zone.m[i][0]
            lo = zone.m[0][i]
            if hi is not None and relevant(name):
                result.append(Cmp("<=", Name(name), Const(hi)))
            if lo is not None and relevant(name):
                result.append(Cmp(">=", Name(name), Const(-lo)))
        for i in range(1, n):
            for j in range(1, n):
                if i == j:
                    continue
                bound = zone.m[i][j]
                if bound is None:
                    continue
                # skip bounds already implied by unary facts
                implied = _badd(zone.m[i][0], zone.m[0][j])
                if implied is not None and implied <= bound:
                    continue
                ni, nj = self.names[i - 1], self.names[j - 1]
                if not relevant(ni, nj):
                    continue
                # v_i - v_j <= c   ->   v_i <= v_j + c
                rhs: Expr = Name(nj)
                if bound:
                    rhs = BinOp("+", rhs, Const(bound))
                result.append(Cmp("<=", Name(ni), rhs))
        return result


def _difference_form(expr: Expr) -> tuple[str | None, int] | None:
    """Recognize ``c``, ``y + c``, ``y - c`` shapes; None otherwise."""
    if isinstance(expr, Const):
        return (None, expr.value)
    if isinstance(expr, Name):
        return (expr.name, 0)
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        sign = 1 if expr.op == "+" else -1
        if isinstance(expr.left, Name) and isinstance(expr.right, Const):
            return (expr.left.name, sign * expr.right.value)
        if (expr.op == "+" and isinstance(expr.left, Const)
                and isinstance(expr.right, Name)):
            return (expr.right.name, expr.left.value)
    return None


def _negate(pred: Pred) -> Pred:
    from .intervals import _negate as interval_negate

    return interval_negate(pred)
