"""Octagon abstract interpretation.

Octagons track constraints of the form ``+-x +-y <= c`` (and unary
``+-x <= c``), strictly generalizing zones: they additionally capture
*sum* invariants such as ``evens + odds <= i``, which neither intervals
nor difference bounds can express.

Encoding (Mine): each program variable ``x`` gets two signed forms —
index ``2k`` for ``+x`` and ``2k+1`` for ``-x``.  The DBM entry
``m[i][j]`` bounds ``form_i - form_j <= m[i][j]`` (same orientation as
:mod:`repro.abstract.zones`); unary bounds ride on the
``(+x) - (-x) = 2x`` channels.  Coherence (``m[i][j] == m[j^1][i^1]``)
is maintained by always writing both entries, and strong closure adds
the tightening through the unary channels with sound integer halving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.ast import BinOp, BoolConst, Cmp, Const, Expr, Name, Pred
from ..logic.terms import LinTerm, Var

_INF = None


def _badd(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return a + b


def _bmin(a: int | None, b: int | None) -> int | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _ble(a: int | None, b: int | None) -> bool:
    if b is None:
        return True
    if a is None:
        return False
    return a <= b


@dataclass
class Octagon:
    """An octagon over ``names``.

    Index ``2k`` is ``+names[k]``; index ``2k+1`` is ``-names[k]``.
    ``m[i][j]`` bounds ``form_i - form_j <= m[i][j]``.
    """

    names: tuple[str, ...]
    m: list[list[int | None]] = field(default_factory=list)
    bottom: bool = False

    def __post_init__(self) -> None:
        if not self.m:
            n = 2 * len(self.names)
            self.m = [
                [0 if i == j else _INF for j in range(n)] for i in range(n)
            ]

    # ------------------------------------------------------------------
    def pos(self, name: str) -> int:
        return 2 * self.names.index(name)

    def neg(self, name: str) -> int:
        return 2 * self.names.index(name) + 1

    def copy(self) -> "Octagon":
        return Octagon(self.names, [row[:] for row in self.m], self.bottom)

    @staticmethod
    def top(names) -> "Octagon":
        return Octagon(tuple(names))

    # ------------------------------------------------------------------
    def add_constraint(self, i: int, j: int, c: int) -> None:
        """Record ``form_i - form_j <= c`` (and its coherent mirror)."""
        self.m[i][j] = _bmin(self.m[i][j], c)
        self.m[j ^ 1][i ^ 1] = _bmin(self.m[j ^ 1][i ^ 1], c)

    def set_upper(self, name: str, c: int) -> None:
        """x <= c  as  (+x) - (-x) <= 2c."""
        self.add_constraint(self.pos(name), self.neg(name), 2 * c)

    def set_lower(self, name: str, c: int) -> None:
        """x >= c  as  (-x) - (+x) <= -2c."""
        self.add_constraint(self.neg(name), self.pos(name), -2 * c)

    def upper(self, name: str) -> int | None:
        bound = self.m[self.pos(name)][self.neg(name)]
        return None if bound is None else bound // 2

    def lower(self, name: str) -> int | None:
        bound = self.m[self.neg(name)][self.pos(name)]
        return None if bound is None else _neg_half(bound)

    # ------------------------------------------------------------------
    def close(self) -> "Octagon":
        """Strong closure: Floyd–Warshall + unary strengthening."""
        if self.bottom:
            return self
        n = len(self.m)
        m = self.m
        for k in range(n):
            for i in range(n):
                ik = m[i][k]
                if ik is None:
                    continue
                row_k = m[k]
                row_i = m[i]
                for j in range(n):
                    through = _badd(ik, row_k[j])
                    if through is not None and not _ble(row_i[j], through):
                        row_i[j] = through
        # integer tightening of the unary channels: 2x <= c -> 2x <= 2*(c//2)
        for i in range(0, n, 2):
            for a, b in ((i, i + 1), (i + 1, i)):
                if m[a][b] is not None:
                    m[a][b] = 2 * (m[a][b] // 2)
        # strengthening: form_i - form_j <= (m[i][i^1] + m[j^1][j]) / 2
        for i in range(n):
            for j in range(n):
                half = _badd(m[i][i ^ 1], m[j ^ 1][j])
                if half is not None:
                    strengthened = half // 2
                    if not _ble(m[i][j], strengthened):
                        m[i][j] = strengthened
        for i in range(n):
            if m[i][i] is not None and m[i][i] < 0:
                self.bottom = True
                break
        return self

    # ------------------------------------------------------------------
    # lattice
    # ------------------------------------------------------------------
    def join(self, other: "Octagon") -> "Octagon":
        if self.bottom:
            return other.copy()
        if other.bottom:
            return self.copy()
        a, b = self.copy().close(), other.copy().close()
        if a.bottom:
            return b
        if b.bottom:
            return a
        n = len(a.m)
        result = Octagon(self.names)
        for i in range(n):
            for j in range(n):
                x, y = a.m[i][j], b.m[i][j]
                result.m[i][j] = None if x is None or y is None else max(x, y)
        return result

    def widen(self, other: "Octagon") -> "Octagon":
        if self.bottom:
            return other.copy()
        if other.bottom:
            return self.copy()
        n = len(self.m)
        result = Octagon(self.names)
        for i in range(n):
            for j in range(n):
                result.m[i][j] = (
                    self.m[i][j] if _ble(other.m[i][j], self.m[i][j])
                    else _INF
                )
        return result

    def le(self, other: "Octagon") -> bool:
        a = self.copy().close()
        if a.bottom:
            return True
        if other.bottom:
            return False
        n = len(self.m)
        return all(
            _ble(a.m[i][j], other.m[i][j])
            for i in range(n) for j in range(n)
        )

    # ------------------------------------------------------------------
    # transfer functions
    # ------------------------------------------------------------------
    def forget(self, name: str) -> None:
        self.close()
        if self.bottom:
            return
        for i in (self.pos(name), self.neg(name)):
            for j in range(len(self.m)):
                if j != i:
                    self.m[i][j] = _INF
                    self.m[j][i] = _INF
        self.m[self.pos(name)][self.neg(name)] = _INF
        self.m[self.neg(name)][self.pos(name)] = _INF

    def assign(self, name: str, expr: Expr) -> None:
        if self.bottom:
            return
        form = _octagon_form(expr)
        if form is None:
            self.forget(name)
            return
        other, sign, c = form
        if other is None:
            self.forget(name)
            self.set_upper(name, c)
            self.set_lower(name, c)
        elif other == name:
            if sign == 1:
                # x := x + c: shift both signed forms
                self.close()
                if self.bottom:
                    return
                i, ni = self.pos(name), self.neg(name)
                n = len(self.m)
                for j in range(n):
                    if j not in (i, ni):
                        self.m[i][j] = _badd(self.m[i][j], c)
                        self.m[j][i] = _badd(self.m[j][i], -c)
                        self.m[ni][j] = _badd(self.m[ni][j], -c)
                        self.m[j][ni] = _badd(self.m[j][ni], c)
                self.m[i][ni] = _badd(self.m[i][ni], 2 * c)
                self.m[ni][i] = _badd(self.m[ni][i], -2 * c)
            else:
                # x := -x + c: swap the signed forms then shift
                self.close()
                if self.bottom:
                    return
                i, ni = self.pos(name), self.neg(name)
                self._swap_rows_cols(i, ni)
                if c:
                    self.assign(name, BinOp("+", Name(name), Const(c)))
        else:
            k_pos = self.pos(other) if sign == 1 else self.neg(other)
            k_neg = self.neg(other) if sign == 1 else self.pos(other)
            self.forget(name)
            i, ni = self.pos(name), self.neg(name)
            # x - (sign*y) <= c  and  (sign*y) - x <= -c
            self.add_constraint(i, k_pos, c)
            self.add_constraint(k_pos, i, -c)
            self.add_constraint(ni, k_neg, -c)
            self.add_constraint(k_neg, ni, c)

    def _swap_rows_cols(self, i: int, j: int) -> None:
        self.m[i], self.m[j] = self.m[j], self.m[i]
        for row in self.m:
            row[i], row[j] = row[j], row[i]

    def assume(self, pred: Pred) -> None:
        if self.bottom:
            return
        if isinstance(pred, BoolConst):
            if not pred.value:
                self.bottom = True
            return
        from .intervals import _negate
        from ..lang.ast import BoolOp, NotPred

        if isinstance(pred, NotPred):
            self.assume(_negate(pred.arg))
            return
        if isinstance(pred, BoolOp):
            if pred.op == "&&":
                for part in pred.parts:
                    self.assume(part)
                return
            branches = []
            for part in pred.parts:
                branch = self.copy()
                branch.assume(part)
                branches.append(branch)
            joined = branches[0]
            for branch in branches[1:]:
                joined = joined.join(branch)
            self.m = joined.m
            self.bottom = joined.bottom
            return
        if isinstance(pred, Cmp):
            self._assume_cmp(pred)
            return
        raise TypeError(f"unexpected predicate {pred!r}")

    def _assume_cmp(self, pred: Cmp) -> None:
        from ..analysis.lowering import NonLinearError, lower_expr

        env = {name: LinTerm.var(Var(name)) for name in self.names}
        try:
            term = lower_expr(pred.left, env) - lower_expr(pred.right, env)
        except NonLinearError:
            return
        if pred.op in ("<", "<="):
            self._assume_term_le(term if pred.op == "<=" else term + 1)
        elif pred.op in (">", ">="):
            self._assume_term_le((-term) if pred.op == ">=" else -term + 1)
        elif pred.op == "==":
            self._assume_term_le(term)
            self._assume_term_le(-term)

    def _assume_term_le(self, term: LinTerm) -> None:
        """Record ``term <= 0`` when it is an octagonal constraint."""
        coeffs = list(term.coeffs)
        c = -term.const
        if len(coeffs) == 1:
            (v, a), = coeffs
            if a == 1:
                self.set_upper(v.name, c)
            elif a == -1:
                self.set_lower(v.name, -c)
            elif a == 2:
                self.add_constraint(self.pos(v.name), self.neg(v.name), c)
            elif a == -2:
                self.add_constraint(self.neg(v.name), self.pos(v.name), c)
        elif len(coeffs) == 2:
            (v1, a1), (v2, a2) = coeffs
            if abs(a1) != 1 or abs(a2) != 1:
                return
            i = self.pos(v1.name) if a1 == 1 else self.neg(v1.name)
            j = self.neg(v2.name) if a2 == 1 else self.pos(v2.name)
            # a1*x + a2*y <= c  <=>  form_i - form_j <= c
            self.add_constraint(i, j, c)

    # ------------------------------------------------------------------
    def facts(self, only: set[str] | None = None) -> list[Pred]:
        """Non-redundant octagonal facts as surface predicates."""
        octagon = self.copy().close()
        if octagon.bottom:
            return [BoolConst(False)]
        result: list[Pred] = []

        def relevant(*names: str) -> bool:
            return only is None or any(name in only for name in names)

        unary: dict[str, tuple[int | None, int | None]] = {}
        for name in self.names:
            hi = octagon.m[self.pos(name)][self.neg(name)]
            lo = octagon.m[self.neg(name)][self.pos(name)]
            hi_v = None if hi is None else hi // 2
            lo_v = None if lo is None else _neg_half(lo)
            unary[name] = (lo_v, hi_v)
            if not relevant(name):
                continue
            if hi_v is not None:
                result.append(Cmp("<=", Name(name), Const(hi_v)))
            if lo_v is not None:
                result.append(Cmp(">=", Name(name), Const(lo_v)))

        n = len(self.names)
        for a in range(n):
            for b in range(n):
                if a == b:
                    continue
                na, nb = self.names[a], self.names[b]
                if not relevant(na, nb):
                    continue
                for i, j, kind in (
                    (self.pos(na), self.neg(nb), "sum_le"),
                    (self.neg(na), self.pos(nb), "sum_ge"),
                    (self.pos(na), self.pos(nb), "diff"),
                ):
                    bound = octagon.m[i][j]
                    if bound is None:
                        continue
                    if kind == "diff" and a > b:
                        continue  # x-y and y-x both emitted via a<b pass
                    implied = self._implied_by_unary(kind, na, nb, unary)
                    if implied is not None and implied <= bound:
                        continue
                    result.append(_octagon_fact(kind, na, nb, bound))
        return result

    @staticmethod
    def _implied_by_unary(kind, na, nb, unary) -> int | None:
        lo_a, hi_a = unary[na]
        lo_b, hi_b = unary[nb]
        if kind == "sum_le":     # x + y <= c
            if hi_a is None or hi_b is None:
                return None
            return hi_a + hi_b
        if kind == "sum_ge":     # -(x + y) <= c  i.e. x + y >= -c
            if lo_a is None or lo_b is None:
                return None
            return -(lo_a + lo_b)
        # diff: x - y <= c
        if hi_a is None or lo_b is None:
            return None
        return hi_a - lo_b


def _neg_half(bound: int) -> int:
    """lower bound from  (-x) - (+x) <= bound  i.e. -2x <= bound."""
    return -(bound // 2)


def _octagon_fact(kind: str, na: str, nb: str, bound: int) -> Pred:
    if kind == "sum_le":
        return Cmp("<=", BinOp("+", Name(na), Name(nb)), Const(bound))
    if kind == "sum_ge":
        return Cmp(">=", BinOp("+", Name(na), Name(nb)), Const(-bound))
    rhs: Expr = Name(nb)
    if bound:
        rhs = BinOp("+", Name(nb), Const(bound))
    return Cmp("<=", Name(na), rhs)


def _octagon_form(expr: Expr) -> tuple[str | None, int, int] | None:
    """Recognize ``c``, ``+-y + c`` shapes; returns (var, sign, const)."""
    if isinstance(expr, Const):
        return (None, 1, expr.value)
    if isinstance(expr, Name):
        return (expr.name, 1, 0)
    if isinstance(expr, BinOp) and expr.op in ("+", "-"):
        left, right = expr.left, expr.right
        if isinstance(left, Name) and isinstance(right, Const):
            return (left.name, 1,
                    right.value if expr.op == "+" else -right.value)
        if expr.op == "+" and isinstance(left, Const) \
                and isinstance(right, Name):
            return (right.name, 1, left.value)
        if expr.op == "-" and isinstance(left, Const) \
                and isinstance(right, Name):
            return (right.name, -1, left.value)
    return None
