"""Interval abstract interpretation.

One of the two "any sound static analysis" substrates the paper assumes
for loop postconditions (``@p'`` annotations).  Intervals carry
non-relational bounds (``0 <= j``, ``k >= 1``); the zone domain
(:mod:`repro.abstract.zones`) adds the relational facts (``i > n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from ..lang.ast import (
    BinOp,
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Name,
    NotPred,
    Pred,
)

_NEG_CMP = {"<": ">=", ">": "<=", "<=": ">", ">=": "<", "==": "!=",
            "!=": "=="}


@dataclass(frozen=True)
class Interval:
    """An integer interval; ``None`` bounds mean unbounded."""

    lo: int | None
    hi: int | None

    TOP: "Interval" = None  # type: ignore[assignment]

    @property
    def is_bottom(self) -> bool:
        return (self.lo is not None and self.hi is not None
                and self.lo > self.hi)

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    # ------------------------------------------------------------------
    # lattice operations
    # ------------------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        lo = None if self.lo is None or other.lo is None else min(
            self.lo, other.lo
        )
        hi = None if self.hi is None or other.hi is None else max(
            self.hi, other.hi
        )
        return Interval(lo, hi)

    def meet(self, other: "Interval") -> "Interval":
        lo = other.lo if self.lo is None else (
            self.lo if other.lo is None else max(self.lo, other.lo)
        )
        hi = other.hi if self.hi is None else (
            self.hi if other.hi is None else min(self.hi, other.hi)
        )
        return Interval(lo, hi)

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to infinity."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        lo = self.lo if (self.lo is not None and other.lo is not None
                         and other.lo >= self.lo) else None
        hi = self.hi if (self.hi is not None and other.hi is not None
                         and other.hi <= self.hi) else None
        return Interval(lo, hi)

    def le(self, other: "Interval") -> bool:
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        lo_ok = other.lo is None or (self.lo is not None
                                     and self.lo >= other.lo)
        hi_ok = other.hi is None or (self.hi is not None
                                     and self.hi <= other.hi)
        return lo_ok and hi_ok

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return _BOTTOM
        lo = None if self.lo is None or other.lo is None \
            else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None \
            else self.hi + other.hi
        return Interval(lo, hi)

    def negate(self) -> "Interval":
        if self.is_bottom:
            return _BOTTOM
        return Interval(
            None if self.hi is None else -self.hi,
            None if self.lo is None else -self.lo,
        )

    def sub(self, other: "Interval") -> "Interval":
        return self.add(other.negate())

    def mul(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return _BOTTOM
        products = []
        unbounded = False
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                if a is None or b is None:
                    unbounded = True
                else:
                    products.append(a * b)
        if unbounded:
            # precise sign reasoning for the common nonneg cases
            if (self.lo is not None and self.lo >= 0
                    and other.lo is not None and other.lo >= 0):
                return Interval(
                    (self.lo * other.lo), None
                )
            return Interval.TOP
        return Interval(min(products), max(products))

    def __str__(self) -> str:
        lo = "-oo" if self.lo is None else str(self.lo)
        hi = "+oo" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


Interval.TOP = Interval(None, None)
_BOTTOM = Interval(1, 0)


class IntervalEnv(dict):
    """Variable -> interval; missing variables are TOP."""

    def __missing__(self, key: str) -> Interval:
        return Interval.TOP

    def copy(self) -> "IntervalEnv":
        return IntervalEnv(self)

    @property
    def is_bottom(self) -> bool:
        return any(iv.is_bottom for iv in self.values())

    def join(self, other: "IntervalEnv") -> "IntervalEnv":
        if self.is_bottom:
            return other.copy()
        if other.is_bottom:
            return self.copy()
        result = IntervalEnv()
        for name in set(self) | set(other):
            result[name] = self[name].join(other[name])
        return result

    def widen(self, other: "IntervalEnv") -> "IntervalEnv":
        if self.is_bottom:
            return other.copy()
        result = IntervalEnv()
        for name in set(self) | set(other):
            result[name] = self[name].widen(other[name])
        return result

    def le(self, other: "IntervalEnv") -> bool:
        if self.is_bottom:
            return True
        return all(
            self[name].le(other[name]) for name in set(self) | set(other)
        )


def eval_interval(expr: Expr, env: IntervalEnv) -> Interval:
    if isinstance(expr, Const):
        return Interval.const(expr.value)
    if isinstance(expr, Name):
        return env[expr.name]
    if isinstance(expr, BinOp):
        left = eval_interval(expr.left, env)
        right = eval_interval(expr.right, env)
        if expr.op == "+":
            return left.add(right)
        if expr.op == "-":
            return left.sub(right)
        return left.mul(right)
    raise TypeError(f"unexpected expression {expr!r}")


def assume(pred: Pred, env: IntervalEnv) -> IntervalEnv:
    """Refine ``env`` with ``pred`` (sound over-approximation)."""
    if env.is_bottom:
        return env
    if isinstance(pred, BoolConst):
        if pred.value:
            return env
        result = env.copy()
        result["$bottom"] = _BOTTOM
        return result
    if isinstance(pred, BoolOp):
        if pred.op == "&&":
            result = env
            for part in pred.parts:
                result = assume(part, result)
            return result
        joined: IntervalEnv | None = None
        for part in pred.parts:
            refined = assume(part, env)
            joined = refined if joined is None else joined.join(refined)
        return joined if joined is not None else env
    if isinstance(pred, NotPred):
        return assume(_negate(pred.arg), env)
    if isinstance(pred, Cmp):
        return _assume_cmp(pred, env)
    raise TypeError(f"unexpected predicate {pred!r}")


def _negate(pred: Pred) -> Pred:
    if isinstance(pred, BoolConst):
        return BoolConst(not pred.value, pred.span)
    if isinstance(pred, NotPred):
        return pred.arg
    if isinstance(pred, BoolOp):
        flipped = "||" if pred.op == "&&" else "&&"
        return BoolOp(flipped, tuple(_negate(p) for p in pred.parts),
                      pred.span)
    if isinstance(pred, Cmp):
        return Cmp(_NEG_CMP[pred.op], pred.left, pred.right, pred.span)
    raise TypeError(f"unexpected predicate {pred!r}")


def _assume_cmp(pred: Cmp, env: IntervalEnv) -> IntervalEnv:
    result = env.copy()
    op = pred.op
    left, right = pred.left, pred.right
    if op == "!=":
        return result  # intervals cannot represent a hole
    # normalize to <=, >=, == refinements on a variable side
    for var_side, other_side, direction in (
        (left, right, "le"), (right, left, "ge"),
    ):
        if not isinstance(var_side, Name):
            continue
        bound = eval_interval(other_side, env)
        name = var_side.name
        current = result[name]
        effective = op if direction == "le" else _mirror(op)
        if effective in ("<", "<="):
            hi = bound.hi
            if hi is not None:
                limit = hi - 1 if effective == "<" else hi
                result[name] = current.meet(Interval(None, limit))
        elif effective in (">", ">="):
            lo = bound.lo
            if lo is not None:
                limit = lo + 1 if effective == ">" else lo
                result[name] = current.meet(Interval(limit, None))
        elif effective == "==":
            result[name] = current.meet(bound)
    return result


def _mirror(op: str) -> str:
    return {"<": ">", ">": "<", "<=": ">=", ">=": "<=",
            "==": "==", "!=": "!="}[op]
