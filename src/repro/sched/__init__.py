"""Transport-agnostic triage scheduling.

One retry/quarantine core (:class:`~repro.sched.core.Scheduler`)
behind pluggable worker transports: in-process
(:class:`InlineTransport`), local process pool
(:class:`LocalPoolTransport`), and remote ``repro serve`` fleets
(:class:`RemoteTransport`, sharded by content digest with work
stealing).  The batch driver (:mod:`repro.batch.driver`) is a thin
surface over this package.

This package sits *below* the batch driver: it imports only
:mod:`repro.batch.outcomes` (plain data + the worker function), never
the driver, so `sched` can be used directly without pulling the
batch surface in.
"""

from .core import Scheduler
from .remote import RemoteTransport, RemoteWorker, outcome_from_envelope
from .transports import (
    InlineTransport,
    LocalPoolTransport,
    TransportBroken,
    TriageSpec,
    TriageTask,
)

__all__ = [
    "InlineTransport",
    "LocalPoolTransport",
    "RemoteTransport",
    "RemoteWorker",
    "Scheduler",
    "TransportBroken",
    "TriageSpec",
    "TriageTask",
    "outcome_from_envelope",
]
