"""Worker transports: how a scheduled triage attempt actually runs.

The scheduler (:mod:`repro.sched.core`) is transport-agnostic — it
speaks to workers only through the small ``WorkerTransport`` duck type
defined here, so "in this process", "in a local process pool" and "on a
remote ``repro serve`` instance" (:mod:`repro.sched.remote`) are three
backends of one retry/quarantine core.

A transport provides:

``parallelism``
    How many attempts may usefully be in flight at once (drives the
    pool-rebuild threshold: when that many workers are stuck *and*
    attempts are still in flight, the fleet is wedged).

``broken_exceptions``
    Exception types that, raised out of ``submit``/``done``, mean the
    transport machinery itself broke (not one worker): the scheduler
    abandons it and finishes the remaining reports in-process.  Worker
    exceptions surfaced by ``result`` are *not* breakage — they become
    per-report error outcomes and go through normal retry/quarantine.

``idle_delay``
    How long the scheduler sleeps when a poll pass made no progress.

``open() / close(force)``
    Lifecycle.  ``force`` is set when workers were ever stuck or the
    transport broke — a graceful close would hang on a wedged worker.

``submit(task) -> handle | None``
    Start one :class:`TriageTask`.  ``None`` means "no capacity right
    now, ask again" — the task stays queued.  The handle is opaque to
    the scheduler; only the transport interprets it.

``done(handle) / result(handle)``
    Poll for completion; fetch the :class:`TriageOutcome`.  ``result``
    may raise — the scheduler converts any exception into an error
    outcome for that report.

``cancel(handle)``
    Best effort; called when an attempt is declared stuck.

``rebuild()``
    Tear down and replace wedged workers.  In-flight attempts are
    requeued by the scheduler afterwards.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field

from ..diagnosis import EngineConfig
from ..limits import Limits
from ..batch.outcomes import TriageOutcome, _triage_one


class TransportBroken(Exception):
    """The transport machinery itself is unusable (every remote worker
    dead, pool unspawnable).  The scheduler falls back to in-process
    completion of whatever is left."""


@dataclass(frozen=True)
class TriageSpec:
    """Per-batch settings shared by every attempt the scheduler runs.

    ``thread_scoped`` marks batches whose in-process attempts run on a
    worker *thread* sharing the process with concurrent attempts
    (``repro serve``): resource governors and the cache-store binding
    then install thread-locally, because the process-global governor
    and store slots are not reentrant across threads.
    """

    config: EngineConfig | None = None
    telemetry: bool = False
    cache_dir: str | None = None
    incremental: bool = False
    thread_scoped: bool = False


@dataclass(frozen=True)
class TriageTask:
    """One attempt of one report, as handed to a transport."""

    name: str
    attempt: int = 0
    limits: Limits | None = None   # already tightened for this attempt
    trace: dict | None = None      # TraceContext payload for the report


@dataclass
class InlineTransport:
    """Run attempts synchronously in this process.

    The serial triage path and the pool-broke fallback are this
    transport under the shared scheduler core — there is no separate
    serial retry loop any more.  ``submit`` blocks until the attempt
    finishes, so ``done`` is always immediately true and the grace
    window can never fire.
    """

    spec: TriageSpec = field(default_factory=TriageSpec)

    parallelism: int = 1
    broken_exceptions: tuple = ()
    idle_delay: float = 0.005

    def open(self) -> None:
        pass

    def submit(self, task: TriageTask) -> TriageOutcome:
        return _triage_one(
            task.name, self.spec.config, self.spec.telemetry,
            limits=task.limits, attempt=task.attempt,
            cache_dir=self.spec.cache_dir,
            incremental=self.spec.incremental,
            trace=task.trace,
            thread_scoped=self.spec.thread_scoped,
        )

    def done(self, handle: TriageOutcome) -> bool:
        return True

    def result(self, handle: TriageOutcome) -> TriageOutcome:
        return handle

    def cancel(self, handle: TriageOutcome) -> None:
        pass

    def rebuild(self) -> None:
        pass

    def close(self, *, force: bool = False) -> None:
        pass


@dataclass
class LocalPoolTransport:
    """The multiprocessing pool backend (the historical ``triage --jobs``
    path, re-homed from ``batch/driver.py``).

    Attempts are submitted eagerly — the pool queues internally, so the
    grace clock starts at submit time exactly as the old driver's did.
    ``fork`` start keeps each worker's solver/intern/QE caches warm from
    the parent; platforms without it fall back to the default context.
    Pool-machinery failures (``OSError``, ``ProcessError``, ``EOFError``
    out of submit/poll) are breakage; the same exceptions raised *by a
    worker* surface through ``result`` and stay per-report errors.
    """

    jobs: int = 1
    spec: TriageSpec = field(default_factory=TriageSpec)

    broken_exceptions: tuple = (
        OSError, multiprocessing.ProcessError, EOFError)
    idle_delay: float = 0.005

    def __post_init__(self) -> None:
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            self._ctx = multiprocessing.get_context()
        self._pool = None

    @property
    def parallelism(self) -> int:
        return self.jobs

    def open(self) -> None:
        self._pool = self._ctx.Pool(processes=self.jobs)

    def submit(self, task: TriageTask):
        return self._pool.apply_async(
            _triage_one, (task.name, self.spec.config, self.spec.telemetry),
            {"limits": task.limits, "attempt": task.attempt,
             "in_worker": True, "cache_dir": self.spec.cache_dir,
             "incremental": self.spec.incremental,
             "trace": task.trace},
        )

    def done(self, handle) -> bool:
        return handle.ready()

    def result(self, handle) -> TriageOutcome:
        return handle.get()

    def cancel(self, handle) -> None:
        # a pool offers no per-task cancellation; the stuck worker is
        # reclaimed by rebuild() or the forced close
        pass

    def rebuild(self) -> None:
        self._pool.terminate()
        self._pool.join()
        self._pool = self._ctx.Pool(processes=self.jobs)

    def close(self, *, force: bool = False) -> None:
        if self._pool is None:
            return
        # stuck workers would keep a close()/join() hanging forever
        if force:
            self._pool.terminate()
        else:
            self._pool.close()
        self._pool.join()
        self._pool = None
