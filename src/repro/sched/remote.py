"""The remote-worker transport: ``repro serve`` instances as a fleet.

``RemoteTransport`` drives one or more running ``repro serve``
daemons through their existing HTTP surface — ``POST /v1/triage``
submissions and ``GET /v1/jobs/<id>`` polling — so a coordinator
machine can fan a batch out across machines with the *same*
retry/quarantine scheduler that drives the local process pool.

Sharding and stealing.  Each report has a stable shard key derived
from content digests, preferring the judgment digests when a shared
:class:`~repro.cache.store.CacheStore` already resolves them (the
fleet is partitioned by *what the verdict depends on*, not by name),
falling back to the source digest.  The key picks a home worker; when
the home is saturated or unhealthy the task is *stolen* by the
least-loaded healthy worker (``sched.steals``) so one straggler cannot
serialize the batch.

Fault model, mapped onto the scheduler's contract:

* a worker answering 429 (admission control) is merely busy — the
  submit returns "no capacity" and the task stays queued;
* a connection failure marks that worker dead; the attempt comes back
  as an error outcome, so the scheduler's normal retry resubmits it —
  and the shard steal routes it to a surviving worker;
* every worker dead is transport breakage (:class:`TransportBroken`):
  the scheduler finishes the batch in-process;
* a worker that accepted a job and then went silent is caught by the
  scheduler's grace window exactly like a killed pool worker.

Each submission ships the coordinator's per-attempt tightened limits
with ``retries: 0`` — the retry policy lives in the coordinator's
scheduler, never nested inside a worker — and a ``traceparent`` header
carrying the report's trace hop, so worker-side spans, logs and
telemetry join the coordinator's trace.  The new ``attempt`` request
field keeps a retry from coalescing onto the original, possibly
wedged, job on the same worker.

Workers run their triage with telemetry on (serve always does); the
coordinator strips the snapshot when the batch did not ask for
telemetry, keeping envelopes identical to the local backends'.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from .. import obs
from ..cache import open_store
from ..diagnosis.stages import STAGE_VERSION
from ..logic.digest import digest_many, digest_text
from ..obs import context as ocontext
from ..batch.outcomes import TriageOutcome
from ..suite import benchmark_by_name, load_source
from .transports import TransportBroken, TriageSpec, TriageTask

#: Socket timeout for every fleet HTTP call, seconds.
HTTP_TIMEOUT = 10.0

#: Minimum interval between status polls of one remote job, seconds.
POLL_INTERVAL = 0.05


def outcome_from_envelope(env: dict, *, worker: str | None = None,
                          telemetry: bool = True) -> TriageOutcome:
    """Rebuild a :class:`TriageOutcome` from its ``triage_outcome``
    envelope, as returned by a ``repro serve`` worker.

    The worker's own retry bookkeeping is discarded (``attempts`` reset
    to 1, ``degraded`` to False): the coordinator's scheduler is the
    only retry authority, and it re-finalizes every outcome itself.
    """
    return TriageOutcome(
        name=env["name"],
        classification=env["verdict"],
        expected=env.get("expected"),
        num_queries=env.get("num_queries", 0),
        rounds=env.get("rounds", 0),
        elapsed_seconds=env.get("elapsed_seconds", 0.0),
        timed_out=env.get("timed_out", False),
        error=env.get("error"),
        telemetry=env.get("telemetry") if telemetry else None,
        provenance=tuple(env.get("provenance") or ()),
        exhausted_stage=env.get("exhausted_stage"),
        exhausted_kind=env.get("exhausted_kind"),
        resource_spend=env.get("resource_spend"),
        cache=env.get("cache"),
        trace_id=env.get("trace_id"),
        worker=worker,
    )


def _limits_payload(task: TriageTask) -> dict | None:
    """The per-attempt limits shipped to the worker: the coordinator's
    tightened bounds with the retry policy zeroed (retries nest in the
    coordinator only) and the non-serializable token flag dropped."""
    if task.limits is None:
        return None
    payload = task.limits.to_dict()
    payload.pop("cancellable", None)
    payload["retries"] = 0
    return payload


@dataclass
class RemoteWorker:
    """One ``repro serve`` endpoint and its live bookkeeping."""

    url: str
    slots: int = 2                 # submissions kept in flight at once

    inflight: int = 0
    alive: bool = True
    unavailable_until: float = 0.0  # 429 backoff, monotonic deadline

    def __post_init__(self) -> None:
        self.url = self.url.rstrip("/")

    # ------------------------------------------------------------------
    def post_json(self, path: str, payload: dict,
                  headers: dict | None = None) -> tuple[int, dict]:
        request = urllib.request.Request(
            self.url + path,
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json",
                     **(headers or {})},
            method="POST",
        )
        return self._round_trip(request)

    def get_json(self, path: str) -> tuple[int, dict]:
        return self._round_trip(urllib.request.Request(self.url + path))

    @staticmethod
    def _round_trip(request) -> tuple[int, dict]:
        try:
            with urllib.request.urlopen(
                    request, timeout=HTTP_TIMEOUT) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as exc:
            # error statuses still carry a JSON body (e.g. a finished
            # degraded job answers 503 with the full job payload)
            try:
                body = json.loads(exc.read())
            except (ValueError, OSError):
                body = {"error": f"HTTP {exc.code}"}
            return exc.code, body

    # ------------------------------------------------------------------
    def available(self, now: float) -> bool:
        return self.alive and now >= self.unavailable_until \
            and self.inflight < self.slots

    def health(self) -> bool:
        """Probe ``/healthz``; updates and returns :attr:`alive`."""
        try:
            status, _body = self.get_json("/healthz")
            self.alive = status == 200
        except (urllib.error.URLError, OSError, ValueError):
            self.alive = False
        return self.alive


@dataclass
class _RemoteHandle:
    """One submitted attempt: either already resolved (inline answer or
    synthesized failure) or a job the transport keeps polling."""

    worker: RemoteWorker
    name: str
    outcome: TriageOutcome | None = None
    failure: Exception | None = None
    job_id: str | None = None
    next_poll_at: float = 0.0
    counted: bool = False          # holds one of the worker's slots


@dataclass
class RemoteTransport:
    """Drive ``repro serve`` workers through the scheduler protocol."""

    urls: list[str]
    spec: TriageSpec = field(default_factory=TriageSpec)
    slots: int = 2

    broken_exceptions: tuple = ()
    idle_delay: float = 0.02

    def __post_init__(self) -> None:
        if not self.urls:
            raise ValueError("RemoteTransport needs at least one worker URL")
        self.workers = [RemoteWorker(url, slots=self.slots)
                        for url in self.urls]
        self.steals = 0
        self._store = (open_store(self.spec.cache_dir)
                       if self.spec.cache_dir is not None else None)
        self._shards: dict[str, str] = {}

    # ------------------------------------------------------------------
    # scheduler protocol
    # ------------------------------------------------------------------
    @property
    def parallelism(self) -> int:
        healthy = sum(1 for w in self.workers if w.alive)
        return max(1, healthy * self.slots)

    def open(self) -> None:
        for worker in self.workers:
            worker.health()
        if not any(w.alive for w in self.workers):
            raise TransportBroken(
                "no healthy worker among " + ", ".join(self.urls))

    def submit(self, task: TriageTask) -> _RemoteHandle | None:
        worker = self._pick_worker(task.name)
        if worker is None:
            if not any(w.alive for w in self.workers):
                raise TransportBroken("every remote worker is dead")
            return None  # all healthy workers saturated — stay queued
        headers = {}
        if task.trace is not None:
            headers["traceparent"] = ocontext.TraceContext.from_dict(
                task.trace).to_traceparent()
        payload: dict = {"benchmark": task.name}
        limits = _limits_payload(task)
        if limits is not None:
            payload["limits"] = limits
        if task.attempt > 0:
            # a distinct job key per retry: the resubmission must not
            # coalesce onto the original, possibly wedged, job
            payload["attempt"] = task.attempt
        try:
            status, body = worker.post_json("/v1/triage", payload,
                                            headers=headers)
        except (urllib.error.URLError, OSError) as exc:
            worker.alive = False
            return _RemoteHandle(worker, task.name, failure=exc)
        if status == 200:
            return _RemoteHandle(
                worker, task.name,
                outcome=outcome_from_envelope(
                    body["result"], worker=worker.url,
                    telemetry=self.spec.telemetry))
        if status == 202:
            worker.inflight += 1
            return _RemoteHandle(
                worker, task.name, job_id=body["job_id"],
                next_poll_at=time.monotonic() + POLL_INTERVAL,
                counted=True)
        if status == 429:
            worker.unavailable_until = time.monotonic() + float(
                body.get("retry_after", 1.0))
            return None
        return _RemoteHandle(
            worker, task.name,
            failure=RuntimeError(
                f"worker {worker.url} refused {task.name}: "
                f"HTTP {status}: {body.get('error', body)}"))

    def done(self, handle: _RemoteHandle) -> bool:
        if handle.outcome is not None or handle.failure is not None:
            return True
        now = time.monotonic()
        if now < handle.next_poll_at:
            return False
        handle.next_poll_at = now + POLL_INTERVAL
        try:
            status, body = handle.worker.get_json(
                f"/v1/jobs/{handle.job_id}")
        except (urllib.error.URLError, OSError) as exc:
            handle.worker.alive = False
            handle.failure = exc
            self._release(handle)
            return True
        # finished jobs answer 200 (clean) or 503 (degraded), both with
        # the full job body; anything else is a protocol failure
        if status in (200, 503) and body.get("status") == "done":
            self._release(handle)
            result = body.get("result")
            if result is None:
                handle.failure = RuntimeError(
                    f"worker {handle.worker.url} lost job "
                    f"{handle.job_id}: {body.get('error', 'no result')}")
            else:
                handle.outcome = outcome_from_envelope(
                    result, worker=handle.worker.url,
                    telemetry=self.spec.telemetry)
            return True
        if status != 200:
            handle.failure = RuntimeError(
                f"worker {handle.worker.url} job {handle.job_id}: "
                f"HTTP {status}: {body.get('error', body)}")
            self._release(handle)
            return True
        return False

    def result(self, handle: _RemoteHandle) -> TriageOutcome:
        if handle.failure is not None:
            raise handle.failure
        return handle.outcome

    def cancel(self, handle: _RemoteHandle) -> None:
        # the protocol has no job cancellation; free the slot so the
        # retry can be scheduled, and let the worker's own governor
        # reap the abandoned run
        self._release(handle)

    def rebuild(self) -> None:
        """Re-probe the whole fleet and reset slot accounting (the
        scheduler requeues everything that was in flight)."""
        for worker in self.workers:
            worker.inflight = 0
            worker.unavailable_until = 0.0
            worker.health()
        if not any(w.alive for w in self.workers):
            raise TransportBroken("every remote worker is dead")

    def close(self, *, force: bool = False) -> None:
        pass  # the workers are daemons we do not own

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------
    @staticmethod
    def _release(handle: _RemoteHandle) -> None:
        if handle.counted:
            handle.counted = False
            handle.worker.inflight = max(0, handle.worker.inflight - 1)

    def _shard_key(self, name: str) -> str:
        """A stable content shard key: judgment digests when the shared
        store already resolves them, else the source digest, else the
        name (diagnostic programs outside the suite)."""
        key = self._shards.get(name)
        if key is not None:
            return key
        try:
            bench = benchmark_by_name(name)
            source_digest = digest_text(load_source(bench))
        except Exception:  # noqa: BLE001 - sharding must never fail
            key = digest_many("sched.shard", name)
            self._shards[name] = key
            return key
        key = digest_many("sched.shard", source_digest)
        if self._store is not None:
            analyzed = self._store.get("analyze", digest_many(
                "analyze", STAGE_VERSION, bench.name, source_digest))
            if analyzed is not None:
                key = digest_many("sched.shard", analyzed["invariants"],
                                  analyzed["success"])
        self._shards[name] = key
        return key

    def _pick_worker(self, name: str) -> RemoteWorker | None:
        """The report's home shard when it can take work, else steal to
        the least-loaded available worker."""
        now = time.monotonic()
        home = self.workers[
            int(self._shard_key(name)[:8], 16) % len(self.workers)]
        if home.available(now):
            return home
        candidates = [w for w in self.workers
                      if w is not home and w.available(now)]
        if not candidates:
            return None
        thief = min(candidates, key=lambda w: w.inflight)
        self.steals += 1
        obs.inc("sched.steals")
        return thief
