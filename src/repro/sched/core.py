"""The transport-agnostic retry/quarantine scheduler.

One event loop owns everything ``batch/driver.py`` used to hard-wire to
multiprocessing: the work queue, per-report retry with exponential
backoff and deadline tightening, stuck-worker grace-window detection,
quarantine into ``degraded``, wholesale worker rebuild when the fleet
wedges, and serial in-process fallback when the transport machinery
breaks outright.  Serial, process-pool and remote-worker execution are
the *same* loop parameterized by a transport
(:mod:`repro.sched.transports`) — there is exactly one copy of the
retry core.

Hang detection is two-layered, as in the original driver.  The
governor's deadline check inside every solver checkpoint catches hangs
the worker can see, returning a normal ``unknown resource`` outcome
with the *stage* that noticed — that is the attribution path.  The
scheduler's grace window (``deadline * 1.5 + 0.5s``, clocked from
submit) catches workers that never return at all (SIGKILL, hard
hangs); those quarantine without stage attribution because no code ran
to observe one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from .. import obs
from ..obs import logging as olog
from ..limits import Limits
from ..batch.outcomes import (
    TriageOutcome,
    _finalize,
    _is_retryable,
    _max_attempts,
    _stuck_outcome,
)
from .transports import InlineTransport, TransportBroken, TriageSpec, TriageTask


@dataclass
class Scheduler:
    """Drive a set of reports to completion over one transport.

    :meth:`run` returns ``(outcomes, broke)`` with outcomes in input
    order; ``broke`` is True when the transport machinery failed and
    the tail of the batch was completed in-process (the batch still
    finishes — that is the ``degraded`` mode the driver reports).
    """

    transport: object
    limits: Limits | None = None
    spec: TriageSpec = field(default_factory=TriageSpec)

    def run(self, names: list[str],
            traces: dict[str, dict | None] | None = None,
            ) -> tuple[list[TriageOutcome], bool]:
        transport = self.transport
        limits = self.limits
        traces = traces or {}

        attempts_allowed = _max_attempts(limits)
        results: dict[str, TriageOutcome] = {}
        # (eligible_at, name, attempt) — a report waits here between
        # retries, and while the transport reports no capacity
        waiting: list[tuple[float, str, int]] = [(0.0, n, 0) for n in names]
        running: dict[int, tuple[str, int, object, float | None]] = {}
        next_task = 0
        stuck = 0
        ever_stuck = False
        broke = False

        # partial telemetry of failed attempts, kept per report so
        # retried and quarantined reports still contribute to the
        # fleet-wide merge
        partials: dict[str, list[dict]] = {}

        def settle(name: str, attempt: int, outcome: TriageOutcome) -> None:
            if _is_retryable(outcome) and attempt + 1 < attempts_allowed:
                if outcome.telemetry is not None:
                    partials.setdefault(name, []).append(outcome.telemetry)
                obs.inc("batch.retries")
                olog.warning("batch.retry", report=name,
                             attempt=attempt + 1,
                             reason=outcome.error or outcome.exhausted_kind)
                delay = (limits.backoff_for(attempt + 1)
                         if limits is not None else 0.0)
                waiting.append((time.monotonic() + delay, name, attempt + 1))
                return
            if _is_retryable(outcome):
                obs.inc("batch.quarantined")
                olog.error("batch.quarantine", report=name,
                           attempts=attempt + 1,
                           reason=outcome.error or outcome.exhausted_kind)
            if partials.get(name):
                outcome = replace(
                    outcome, prior_telemetry=tuple(partials[name]))
            results[name] = _finalize(outcome, attempt + 1)

        try:
            transport.open()
            while waiting or running:
                now = time.monotonic()

                # submit every attempt whose backoff has elapsed and the
                # transport will take
                still_waiting = []
                for eligible_at, name, attempt in waiting:
                    if eligible_at > now:
                        still_waiting.append((eligible_at, name, attempt))
                        continue
                    tightened = (limits.tightened(attempt)
                                 if limits is not None else None)
                    handle = transport.submit(TriageTask(
                        name=name, attempt=attempt, limits=tightened,
                        trace=traces.get(name),
                    ))
                    if handle is None:
                        # no capacity right now — stay queued, retry the
                        # submit on the next pass
                        still_waiting.append((now, name, attempt))
                        continue
                    grace_at = None
                    if tightened is not None \
                            and tightened.deadline is not None:
                        grace_at = now + tightened.deadline * 1.5 + 0.5
                    running[next_task] = (name, attempt, handle, grace_at)
                    next_task += 1
                waiting = still_waiting

                progressed = False
                for task_id in list(running):
                    name, attempt, handle, grace_at = running[task_id]
                    if transport.done(handle):
                        progressed = True
                        del running[task_id]
                        try:
                            outcome = transport.result(handle)
                        except Exception as exc:  # noqa: BLE001 - worker died
                            outcome = TriageOutcome(
                                name=name,
                                classification="unknown",
                                error=f"{type(exc).__name__}: {exc}",
                            )
                        settle(name, attempt, outcome)
                    elif grace_at is not None and now > grace_at:
                        # worker never returned: killed, or hung somewhere
                        # no checkpoint runs — count it stuck and move on
                        progressed = True
                        del running[task_id]
                        transport.cancel(handle)
                        stuck += 1
                        ever_stuck = True
                        obs.inc("batch.stuck_workers")
                        olog.warning("batch.stuck_worker", report=name,
                                     attempt=attempt)
                        tightened = (limits.tightened(attempt)
                                     if limits is not None else None)
                        settle(name, attempt,
                               _stuck_outcome(name, tightened))

                if stuck >= transport.parallelism and running:
                    # every worker slot may be wedged: rebuild the fleet
                    # and resubmit the in-flight innocents at the same
                    # attempt
                    obs.inc("batch.pool_rebuilds")
                    olog.warning("batch.pool_rebuild", stuck=stuck,
                                 inflight=len(running))
                    transport.rebuild()
                    stuck = 0
                    now = time.monotonic()
                    for task_id in list(running):
                        name, attempt, _handle, _grace = \
                            running.pop(task_id)
                        waiting.append((now, name, attempt))

                if not progressed and (waiting or running):
                    if transport.idle_delay:
                        time.sleep(transport.idle_delay)
        except tuple(transport.broken_exceptions) + (TransportBroken,):
            broke = True
        finally:
            transport.close(force=ever_stuck or broke)

        if broke:
            # the transport broke; finish whatever did not complete,
            # in-process, through the same scheduler core
            olog.error("batch.serial_fallback",
                       remaining=sum(1 for n in names
                                     if n not in results))
            remaining = [n for n in names if n not in results]
            if remaining:
                fallback = Scheduler(
                    InlineTransport(spec=self.spec),
                    limits=limits, spec=self.spec,
                )
                outcomes, _ = fallback.run(remaining, traces)
                results.update({o.name: o for o in outcomes})

        return [results[name] for name in names], broke
