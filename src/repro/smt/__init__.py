"""Lazy SMT solving for linear integer arithmetic (SAT + Omega test)."""

from .incremental import IncrementalContext, IncrementalError
from .solver import (
    SmtResult,
    SmtSolver,
    atom_polarity,
    entails,
    equivalent,
    get_model,
    is_sat,
    is_valid,
)

__all__ = [
    "IncrementalContext",
    "IncrementalError",
    "SmtResult",
    "SmtSolver",
    "atom_polarity",
    "entails",
    "equivalent",
    "get_model",
    "is_sat",
    "is_valid",
]
