"""Lazy SMT solving for linear integer arithmetic (SAT + Omega test)."""

from .solver import (
    SmtResult,
    SmtSolver,
    atom_polarity,
    entails,
    equivalent,
    get_model,
    is_sat,
    is_valid,
)

__all__ = [
    "SmtResult",
    "SmtSolver",
    "atom_polarity",
    "entails",
    "equivalent",
    "get_model",
    "is_sat",
    "is_valid",
]
