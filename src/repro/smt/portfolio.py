"""A racing solver portfolio for boolean (is-sat) queries.

Different queries favour different decision strategies: the lazy
SAT + Omega loop shines on wide propositional structure, the
incremental context wins on long runs of near-identical queries, and
straight Cooper elimination beats both on small dense arithmetic.  The
portfolio runs all three concurrently and takes the first answer.

Every strategy is a sound and complete decision procedure for
Presburger arithmetic, so they agree on every verdict — racing them
changes latency, never answers.  That is what keeps portfolio runs
byte-identical to sequential ones at the verdict level.

Resource governance composes with the existing :mod:`repro.limits`
machinery: each strategy thread installs its *own* governor via
:func:`repro.limits.governed_here`, carrying the ambient run's
remaining deadline and per-stage budgets plus a private
:class:`~repro.limits.CancellationToken`.  The first strategy to finish
cancels the others, which then abort at their next solver-loop tick.
Only the winning strategy's spend is folded back into the ambient
governor, so a governed run books the same cost a sequential solve
would have; the losers' partial spend is surfaced separately through
the ``smt.portfolio.wasted.<stage>`` counters.

The winner is recorded in obs counters (``smt.portfolio.win.<name>``)
and, when provenance tracing is on, as a ``portfolio`` derivation node.
"""

from __future__ import annotations

import threading
from typing import Callable

from .. import obs
from .. import limits as _limits
from ..limits import (
    CancellationToken,
    Limits,
    ResourceExhausted,
    STAGES,
)
from ..logic.formulas import Formula, exists
from ..obs import provenance as prov

__all__ = ["PortfolioSolver", "STRATEGIES"]

#: Strategy names in deterministic priority order (used to break ties
#: when every strategy fails: the first listed failure is re-raised).
STRATEGIES = ("incremental", "fresh", "qe")

#: How long to wait for cancelled losers to notice their token, per
#: thread.  Losers abort at their next solver-loop tick, so this only
#: guards against a pathological strategy that stopped ticking.
_LOSER_JOIN_SECONDS = 1.0


def _qe_first(phi: Formula) -> bool:
    """Decide satisfiability by quantifier elimination alone: close the
    formula existentially and Cooper-eliminate down to a constant."""
    from ..qe import eliminate_quantifiers  # lazy: layering

    free = sorted(phi.free_vars(), key=lambda v: v.name)
    closed = exists(free, phi) if free else phi
    result = eliminate_quantifiers(closed)
    if result.is_true:
        return True
    if result.is_false:
        return False
    # a ground residue the smart constructors did not fold (rare);
    # evaluating it under the empty environment decides it
    return result.evaluate({})


class PortfolioSolver:
    """Races strategy threads per query; first sound answer wins.

    Holds one child solver per strategy so the incremental strategy
    keeps its persistent context across queries.  Not itself
    thread-safe: one portfolio belongs to one (sequential) caller, the
    concurrency lives *inside* :meth:`is_sat`.
    """

    def __init__(self, *, strategies: tuple[str, ...] = STRATEGIES):
        from .solver import SmtSolver  # deferred: solver imports us lazily

        unknown = [s for s in strategies if s not in STRATEGIES]
        if unknown:
            raise ValueError(f"unknown portfolio strategies: {unknown}")
        if not strategies:
            raise ValueError("portfolio needs at least one strategy")
        self._strategies = tuple(strategies)
        self._runners: dict[str, Callable[[Formula], bool]] = {}
        if "incremental" in strategies:
            solver = SmtSolver(incremental=True)
            self._runners["incremental"] = \
                lambda phi: solver.check(phi).sat
        if "fresh" in strategies:
            fresh = SmtSolver(incremental=False)
            self._runners["fresh"] = lambda phi: fresh.check(phi).sat
        if "qe" in strategies:
            self._runners["qe"] = _qe_first
        self.wins: dict[str, int] = {name: 0 for name in self._strategies}

    # ------------------------------------------------------------------
    @staticmethod
    def _child_limits(ambient: "_limits.Governor | None",
                      token: CancellationToken) -> Limits:
        """The limits for one strategy thread: whatever remains of the
        ambient run's deadline and stage budgets, plus a private
        cancellation token."""
        if ambient is None:
            return Limits(token=token)
        base = ambient.limits
        kwargs: dict = {"token": token}
        if base.deadline is not None:
            kwargs["deadline"] = max(
                base.deadline - ambient.elapsed(), 0.05
            )
        for stage in STAGES:
            limit = base.step_limit(stage)
            if limit is not None:
                spent = ambient.spend.get(stage, 0)
                kwargs[f"{stage}_steps"] = max(limit - spent, 1)
        return Limits(**kwargs)

    # ------------------------------------------------------------------
    def is_sat(self, phi: Formula) -> bool:
        """Race every strategy on ``phi``; return the first verdict.

        Raises the (deterministically chosen) first strategy failure
        only when *every* strategy fails — one surviving strategy is
        enough for an answer.
        """
        obs.inc("smt.portfolio.races")
        from ..cache import current_store, use_store_here

        ambient = _limits.current_governor()
        # strategy threads inherit the caller's store explicitly: the
        # caller may have bound it thread-locally (serve worker threads,
        # Pipeline scopes), which a child thread would not see
        store = current_store()
        tokens = {name: CancellationToken()
                  for name in self._strategies}
        lock = threading.Lock()
        answered = threading.Event()
        results: dict[str, tuple[bool, dict[str, int]]] = {}
        errors: dict[str, BaseException] = {}
        winner: list[str] = []

        def run(name: str) -> None:
            runner = self._runners[name]
            limits = self._child_limits(ambient, tokens[name])
            try:
                with use_store_here(store), \
                        _limits.governed_here(limits) as governor:
                    verdict = runner(phi)
                spend = governor.spend_snapshot()
            except BaseException as exc:  # noqa: BLE001 — reported below
                with lock:
                    errors[name] = exc
                    if len(results) + len(errors) == len(self._strategies):
                        answered.set()
                return
            with lock:
                results[name] = (verdict, spend)
                if not winner:
                    winner.append(name)
                    for other, tok in tokens.items():
                        if other != name:
                            tok.cancel()
                answered.set()

        threads = [
            threading.Thread(
                target=run, args=(name,), daemon=True,
                name=f"portfolio-{name}",
            )
            for name in self._strategies
        ]
        for thread in threads:
            thread.start()
        answered.wait()
        for thread in threads:
            thread.join(timeout=_LOSER_JOIN_SECONDS)

        with lock:
            if not winner:
                # every strategy failed: re-raise deterministically, and
                # prefer a real resource verdict over a cancellation echo
                for name in self._strategies:
                    exc = errors.get(name)
                    if isinstance(exc, ResourceExhausted) \
                            and exc.kind != "cancelled":
                        raise exc
                raise errors[self._strategies[0]]
            name = winner[0]
            verdict, spend = results[name]
            # snapshots: a cancelled straggler may still be writing
            seen_errors = dict(errors)
            seen_results = dict(results)

        self.wins[name] += 1
        obs.inc(f"smt.portfolio.win.{name}")
        for loser, exc in seen_errors.items():
            if isinstance(exc, ResourceExhausted) \
                    and exc.kind == "cancelled":
                obs.inc(f"smt.portfolio.cancelled.{loser}")
            else:
                obs.inc(f"smt.portfolio.failed.{loser}")
        if ambient is not None:
            # fold the winner's spend into the ambient governor without
            # re-checking bounds: the next natural tick enforces them
            for stage, n in spend.items():
                ambient.spend[stage] = ambient.spend.get(stage, 0) + n
        for loser, (_, lost) in seen_results.items():
            if loser == name:
                continue
            for stage, n in lost.items():
                obs.inc(f"smt.portfolio.wasted.{stage}", n)
        if prov.is_enabled():
            prov.record(
                "portfolio", strategy=name, sat=verdict,
                formula=prov.fmla(phi),
            )
        return verdict
