"""A persistent, assumption-based solving context for the lazy SMT solver.

:meth:`SmtSolver._check_lazy` builds a fresh CDCL solver and re-encodes
the formula from scratch on every call.  That is wasteful for the
diagnosis engine, whose per-round checks run over monotonically
strengthened invariants: consecutive queries share almost all of their
atoms and subformulas, and every theory conflict learned in one check
(a blocking clause over atom variables) is a *universally valid* theory
lemma that the next check could reuse.

:class:`IncrementalContext` keeps one CDCL solver alive across checks:

* the atom-to-variable map and the Plaisted–Greenbaum gate memo persist,
  so a subformula shared between queries is encoded exactly once;
* each checked formula's root gate becomes an *assumption literal*
  passed to :meth:`SatSolver.solve` instead of a permanent unit clause —
  the one-sided (polarity-positive) encoding of an NNF formula makes
  "assume the root gate" equisatisfiable with the formula itself, and
  leaves the clause database reusable for every other root;
* theory blocking clauses and CDCL-learned clauses accumulate in the
  shared database, pruning future searches.

Soundness notes.  Blocking clauses are negations of theory-unsat cores,
hence valid in every LIA model and safe to share across roots.  Learned
clauses are resolvents of permanent clauses only (assumptions enter the
solver as decisions, never as clauses), so they are implied by the
database and equally safe.  A root-level conflict while adding a
blocking clause is impossible in theory (any integer assignment yields
a consistent atom valuation satisfying every lemma), so it is treated
as an internal error and surfaced as :class:`IncrementalError` — the
calling solver falls back to fresh solving.

The context resets itself (fresh CDCL solver, empty memos) once the
clause database outgrows ``max_clauses``; unbounded accumulation would
eventually slow propagation below the cost of re-encoding.
"""

from __future__ import annotations

from .. import obs
from .. import limits as _limits
from ..lia import Model, OmegaSolver
from ..limits import ResourceExhausted
from ..logic.formulas import And, Atom, Dvd, Formula, Or
from ..sat import SatSolver
from .solver import SmtResult, atom_polarity


class IncrementalError(RuntimeError):
    """The persistent context reached a state it cannot solve from; the
    caller should fall back to a fresh, non-incremental check."""


class IncrementalContext:
    """One persistent CDCL solver + encoding shared by many checks."""

    def __init__(self, theory: OmegaSolver, *,
                 max_theory_rounds: int = 200_000,
                 max_clauses: int = 500_000):
        self._theory = theory
        self._max_rounds = max_theory_rounds
        self._max_clauses = max_clauses
        self.checks = 0
        self.resets = 0
        self.theory_rounds = 0
        self._fresh()

    def _fresh(self) -> None:
        self._sat = SatSolver()
        self._atom_vars: dict[Formula, int] = {}
        self._encoded: dict[Formula, int] = {}

    # ------------------------------------------------------------------
    def check(self, phi: Formula) -> SmtResult:
        """Check satisfiability of a quantifier-free NNF formula.

        ``phi`` must be non-trivial (not TRUE/FALSE) and already in NNF —
        exactly the precondition of ``SmtSolver._check_lazy``.
        """
        # NOTE: the caller (SmtSolver._check_incremental) owns the
        # hit/miss accounting — counting here would book a check that
        # later raises IncrementalError as both an incremental hit and
        # (after the fallback) a fresh-solve miss.
        self.checks += 1
        if self._sat.num_clauses > self._max_clauses:
            self.resets += 1
            obs.inc("smt.incremental.resets")
            self._fresh()

        root = self._encode(phi)
        for _ in range(self._max_rounds):
            _limits.tick("smt")
            if not self._sat.solve([root]):
                return SmtResult(False, None)
            self.theory_rounds += 1
            obs.inc("smt.incremental.theory_rounds")
            assignment = self._sat.model()
            seen: dict[Formula, None] = {}
            self._implicant(phi, assignment, seen, {})
            literals = list(seen)
            model = self._theory.solve_literals(literals)
            if model is not None:
                return SmtResult(True, model)
            core = self._theory.unsat_core(literals)
            blocking = []
            for lit in core:
                base, polarity = atom_polarity(lit)
                var = self._atom_vars[base]
                blocking.append(-var if polarity else var)
            if not self._sat.add_clause(blocking):
                # a valid theory lemma conflicting at the root level means
                # the shared database is corrupt — never expected
                self.resets += 1
                obs.inc("smt.incremental.resets")
                self._fresh()
                raise IncrementalError("blocking clause conflicts at root")
        # deliberately NOT an IncrementalError: a budget overrun would hit
        # the fresh solver just as hard, so it must reach the governor's
        # caller instead of triggering the fallback path
        raise ResourceExhausted(
            "smt", self._max_rounds, self._max_rounds,
            message="incremental SMT exceeded theory-round budget",
        )

    # ------------------------------------------------------------------
    def _literal_var(self, literal: Formula) -> int:
        base, polarity = atom_polarity(literal)
        var = self._atom_vars.get(base)
        if var is None:
            var = self._sat.new_var()
            self._atom_vars[base] = var
        return var if polarity else -var

    def _encode(self, node: Formula) -> int:
        """Plaisted–Greenbaum one-sided encoding into the shared solver.

        The gate memo persists across checks: assuming a gate only
        *activates* its implication clauses, so gates of formulas that are
        not under the current assumption impose no constraints.
        """
        cached = self._encoded.get(node)
        if cached is not None:
            return cached
        if isinstance(node, (Atom, Dvd)):
            gate = self._literal_var(node)
        elif isinstance(node, And):
            gate = self._sat.new_var()
            for child in node.args:
                self._sat.add_clause([-gate, self._encode(child)])
        elif isinstance(node, Or):
            gate = self._sat.new_var()
            self._sat.add_clause(
                [-gate] + [self._encode(child) for child in node.args]
            )
        else:
            raise TypeError(f"unexpected node in NNF formula: {node!r}")
        self._encoded[node] = gate
        return gate

    def _implicant(self, node: Formula, assignment: dict[int, bool],
                   acc: dict[Formula, None],
                   holds_memo: dict[Formula, bool]) -> None:
        """Collect a small literal set making ``node`` true under the
        current assignment (mirrors ``SmtSolver._check_lazy``)."""
        if isinstance(node, (Atom, Dvd)):
            base, polarity = atom_polarity(node)
            value = assignment[self._atom_vars[base]]
            assert value == polarity, "assignment must satisfy formula"
            acc.setdefault(node, None)
            return
        if isinstance(node, And):
            for child in node.args:
                self._implicant(child, assignment, acc, holds_memo)
            return
        assert isinstance(node, Or)
        for child in node.args:
            if self._holds(child, assignment, holds_memo):
                self._implicant(child, assignment, acc, holds_memo)
                return
        raise AssertionError("assignment must satisfy some disjunct")

    def _holds(self, node: Formula, assignment: dict[int, bool],
               memo: dict[Formula, bool]) -> bool:
        cached = memo.get(node)
        if cached is not None:
            return cached
        if isinstance(node, (Atom, Dvd)):
            base, polarity = atom_polarity(node)
            result = assignment[self._atom_vars[base]] == polarity
        elif isinstance(node, And):
            result = all(
                self._holds(child, assignment, memo) for child in node.args
            )
        else:
            assert isinstance(node, Or)
            result = any(
                self._holds(child, assignment, memo) for child in node.args
            )
        memo[node] = result
        return result

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        return {
            "checks": self.checks,
            "resets": self.resets,
            "theory_rounds": self.theory_rounds,
            "sat_vars": self._sat.num_vars,
            "sat_clauses": self._sat.num_clauses,
            "encoded_nodes": len(self._encoded),
            "atoms": len(self._atom_vars),
        }
