"""A lazy SMT solver for quantifier-free linear integer arithmetic.

Architecture (classic lazy / DPLL(T) with offline theory checks):

1. the input formula is put in NNF and its atoms are mapped to boolean
   variables — atom *pairs* related by negation (``t = 0`` / ``t != 0``,
   ``d | t`` / ``d !| t``, and the two integer-tightened sides of an
   inequality) share one variable with opposite polarities;
2. the boolean skeleton is Tseitin/Plaisted–Greenbaum encoded into CNF and
   handed to the CDCL solver of :mod:`repro.sat`;
3. each propositional model induces a conjunction of theory literals that
   the Omega test (:mod:`repro.lia`) checks; theory conflicts come back as
   minimal unsat cores and are blocked with new clauses.

Quantified formulas are handled by first running Cooper quantifier
elimination (imported lazily to keep package layering acyclic).
"""

from __future__ import annotations

from collections import OrderedDict

from .. import obs
from .. import limits as _limits
from ..lia import Model, OmegaSolver
from ..logic.digest import digest
from ..limits import ResourceExhausted
from ..logic.formulas import (
    And,
    Atom,
    Dvd,
    Formula,
    Or,
    Rel,
    atom as make_atom,
    is_quantifier_free,
    neg,
)
from ..logic.normal_forms import nnf
from ..sat import SatSolver


def atom_polarity(literal: Formula) -> tuple[Formula, bool]:
    """Canonicalize a literal into (base atom, polarity).

    The base atom is chosen so that a literal and its negation map to the
    same base with opposite polarities, letting the SAT solver see them as
    one variable.
    """
    if isinstance(literal, Atom):
        if literal.rel is Rel.NE:
            return make_atom(Rel.EQ, literal.term), False
        if literal.rel is Rel.EQ:
            return literal, True
        # LE: the negation of (t <= 0) is (-t + 1 <= 0); pick the side
        # whose first coefficient is positive as the base.
        first_coeff = literal.term.coeffs[0][1]
        if first_coeff > 0:
            return literal, True
        return make_atom(Rel.LE, -literal.term + 1), False
    if isinstance(literal, Dvd):
        if literal.negated_flag:
            return Dvd(literal.divisor, literal.term, False), False
        return literal, True
    raise TypeError(f"not a literal: {literal!r}")


class SmtResult:
    """Outcome of a satisfiability check."""

    __slots__ = ("sat", "model")

    def __init__(self, sat: bool, model: Model | None):
        self.sat = sat
        self.model = model

    def __bool__(self) -> bool:
        return self.sat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SmtResult(sat={self.sat}, model={self.model})"


class SmtSolver:
    """Satisfiability, validity and entailment for QFLIA (and, via Cooper
    quantifier elimination, full Presburger arithmetic)."""

    def __init__(self, *, max_theory_rounds: int = 200_000,
                 cache_size: int = 50_000, incremental: bool = False,
                 portfolio: bool = False):
        self._theory = OmegaSolver()
        self._max_rounds = max_theory_rounds
        # bounded LRU over is_sat verdicts (access order = recency),
        # keyed by content digest so structurally equal formulas hit
        # even after an intern-table clear or a pickle round-trip
        self._cache: OrderedDict[str, bool] = OrderedDict()
        self._cache_size = cache_size
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._incremental = incremental
        self._context = None  # built lazily on the first incremental check
        self._portfolio = None  # built lazily on the first boolean query
        self._want_portfolio = portfolio

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def check(self, phi: Formula) -> SmtResult:
        """Check satisfiability; returns a result carrying a model if SAT."""
        # checkpoint at entry as well as at the lazy round loop: trivial
        # and single-literal formulas short-circuit below, and a governed
        # deadline must still be noticed on those fast paths
        _limits.tick("smt")
        if not obs.is_enabled():
            return self._check(phi)
        # span durations feed the per-stage latency histograms
        with obs.span("smt.check"):
            obs.observe("smt.formula_size", phi.size())
            return self._check(phi)

    def _check(self, phi: Formula) -> SmtResult:
        phi = self._prepare(phi)
        if phi.is_true:
            return SmtResult(True, Model())
        if phi.is_false:
            return SmtResult(False, None)
        if isinstance(phi, (Atom, Dvd)):
            model = self._theory.solve_literals([phi])
            return SmtResult(model is not None, model)
        if self._incremental:
            result = self._check_incremental(phi)
            if result is not None:
                return result
        return self._check_lazy(phi)

    def is_sat(self, phi: Formula) -> bool:
        key = digest(phi)
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            _limits.tick("smt")  # cache hits skip check(); keep the deadline live
            obs.inc("smt.is_sat.hit")
            self._cache.move_to_end(key)
            return cached
        store = self._persistent_store()
        if store is not None:
            artifact = store.get("smt-sat", key)
            if artifact is not None:
                self._hits += 1
                _limits.tick("smt")
                obs.inc("smt.is_sat.hit")
                self._remember(key, bool(artifact["sat"]))
                return bool(artifact["sat"])
        self._misses += 1
        obs.inc("smt.is_sat.miss")
        if self._want_portfolio:
            # boolean queries race the strategy portfolio; model-producing
            # queries (check/get_model) always take the sequential path
            if self._portfolio is None:
                from .portfolio import PortfolioSolver  # lazy: layering

                self._portfolio = PortfolioSolver()
            result = self._portfolio.is_sat(phi)
        else:
            result = self.check(phi).sat
        self._remember(key, result)
        if store is not None:
            store.put("smt-sat", key, {"sat": result})
        return result

    @staticmethod
    def _persistent_store():
        """The active on-disk store, if any (lazy import: layering)."""
        from ..cache import current_store

        return current_store()

    def _remember(self, key: str, result: bool) -> None:
        self._cache[key] = result
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
            self._evictions += 1
            obs.inc("smt.is_sat.evictions")

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters of the is_sat verdict cache."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "entries": len(self._cache),
        }

    def context_stats(self) -> dict[str, int] | None:
        """Stats of the incremental context, if one is active."""
        return self._context.stats() if self._context is not None else None

    def get_model(self, phi: Formula) -> Model | None:
        return self.check(phi).model

    def is_valid(self, phi: Formula) -> bool:
        return not self.is_sat(neg(phi))

    def entails(self, premise: Formula, conclusion: Formula) -> bool:
        """premise |= conclusion."""
        return not self.is_sat(premise & neg(conclusion))

    def equivalent(self, left: Formula, right: Formula) -> bool:
        return self.entails(left, right) and self.entails(right, left)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _prepare(phi: Formula) -> Formula:
        if not is_quantifier_free(phi):
            from ..qe import eliminate_quantifiers  # lazy: layering

            phi = eliminate_quantifiers(phi)
        return nnf(phi)

    def _check_incremental(self, phi: Formula) -> SmtResult | None:
        """Check via the persistent context; None means "fall back"."""
        from .incremental import IncrementalContext, IncrementalError

        if self._context is None:
            self._context = IncrementalContext(
                self._theory, max_theory_rounds=self._max_rounds
            )
        try:
            result = self._context.check(phi)
        except IncrementalError:
            # one logical solve, one miss: the fresh solve that follows
            # does the real work, so the failed incremental attempt must
            # not also be booked as a served check
            obs.inc("smt.incremental.fallbacks")
            obs.inc("smt.incremental.miss")
            return None
        obs.inc("smt.incremental.checks")
        obs.inc("smt.incremental.hit")
        return result

    def _check_lazy(self, phi: Formula) -> SmtResult:
        obs.inc("smt.fresh_checks")
        sat = SatSolver()
        atom_vars: dict[Formula, int] = {}   # base atom -> boolean var
        var_atoms: dict[int, Formula] = {}

        def literal_var(literal: Formula) -> int:
            base, polarity = atom_polarity(literal)
            if base not in atom_vars:
                var = sat.new_var()
                atom_vars[base] = var
                var_atoms[var] = base
            var = atom_vars[base]
            return var if polarity else -var

        encoded: dict[Formula, int] = {}

        def encode(node: Formula) -> int:
            """Plaisted-Greenbaum (one-sided) encoding; returns a literal
            equisatisfiable with the node being true.  Memoized so shared
            subformulas (ubiquitous in guard DAGs) encode once."""
            cached = encoded.get(node)
            if cached is not None:
                return cached
            if isinstance(node, (Atom, Dvd)):
                gate = literal_var(node)
            elif isinstance(node, And):
                gate = sat.new_var()
                for child in node.args:
                    sat.add_clause([-gate, encode(child)])
            elif isinstance(node, Or):
                gate = sat.new_var()
                sat.add_clause(
                    [-gate] + [encode(child) for child in node.args]
                )
            else:
                raise TypeError(f"unexpected node in NNF formula: {node!r}")
            encoded[node] = gate
            return gate

        root = encode(phi)
        sat.add_clause([root])

        def implicant(node: Formula, acc: dict[Formula, None],
                      holds_memo: dict[Formula, bool]) -> None:
            """Collect a small literal set that makes ``node`` true under
            the current propositional assignment (the assignment satisfies
            the formula, so one always exists).  Passing only these
            literals to the theory keeps the conjunctions small and the
            blocking clauses general."""
            if isinstance(node, (Atom, Dvd)):
                base, polarity = atom_polarity(node)
                value = assignment[atom_vars[base]]
                assert value == polarity, "assignment must satisfy formula"
                acc.setdefault(node, None)
                return
            if isinstance(node, And):
                for child in node.args:
                    implicant(child, acc, holds_memo)
                return
            assert isinstance(node, Or)
            for child in node.args:
                if self._holds(child, assignment, atom_vars, holds_memo):
                    implicant(child, acc, holds_memo)
                    return
            raise AssertionError("assignment must satisfy some disjunct")

        for _ in range(self._max_rounds):
            _limits.tick("smt")
            if not sat.solve():
                return SmtResult(False, None)
            assignment = sat.model()
            seen: dict[Formula, None] = {}
            implicant(phi, seen, {})
            literals = list(seen)
            model = self._theory.solve_literals(literals)
            if model is not None:
                return SmtResult(True, model)
            core = self._theory.unsat_core(literals)
            blocking = []
            for lit in core:
                base, polarity = atom_polarity(lit)
                var = atom_vars[base]
                blocking.append(-var if polarity else var)
            sat.add_clause(blocking)
        raise ResourceExhausted(
            "smt", self._max_rounds, self._max_rounds,
            message="SMT solver exceeded theory-round budget",
        )

    @staticmethod
    def _holds(node: Formula, assignment: dict[int, bool],
               atom_vars: dict[Formula, int],
               memo: dict[Formula, bool]) -> bool:
        """Evaluate an NNF node under a propositional atom assignment
        (memoized over the shared-subformula DAG)."""
        cached = memo.get(node)
        if cached is not None:
            return cached
        if isinstance(node, (Atom, Dvd)):
            base, polarity = atom_polarity(node)
            result = assignment[atom_vars[base]] == polarity
        elif isinstance(node, And):
            result = all(
                SmtSolver._holds(child, assignment, atom_vars, memo)
                for child in node.args
            )
        else:
            assert isinstance(node, Or)
            result = any(
                SmtSolver._holds(child, assignment, atom_vars, memo)
                for child in node.args
            )
        memo[node] = result
        return result


# A module-level default solver: callers that do not need isolation share
# its formula cache.
_DEFAULT = SmtSolver()


def is_sat(phi: Formula) -> bool:
    return _DEFAULT.is_sat(phi)


def get_model(phi: Formula) -> Model | None:
    return _DEFAULT.get_model(phi)


def is_valid(phi: Formula) -> bool:
    return _DEFAULT.is_valid(phi)


def entails(premise: Formula, conclusion: Formula) -> bool:
    return _DEFAULT.entails(premise, conclusion)


def equivalent(left: Formula, right: Formula) -> bool:
    return _DEFAULT.equivalent(left, right)
