"""Command-line interface.

Subcommands::

    repro-diagnose analyze FILE            run the analysis, print (I, phi)
    repro-diagnose diagnose FILE           interactive Figure 6 session
    repro-diagnose suite [NAME]            run benchmark(s) w/ ground truth
    repro-diagnose triage [NAME...] --jobs N   batch triage across cores
    repro-diagnose triage --workers URL,URL    batch triage across a
                                               `repro serve` fleet
    repro-diagnose repair NAME             triage + synthesize verified patches
    repro-diagnose stats [NAME...]         triage w/ telemetry + stats table
    repro-diagnose explain NAME            render a report's derivation tree
    repro-diagnose trace export --format chrome|prom|jsonl --out FILE
    repro-diagnose serve --port N          run the triage HTTP daemon
    repro-diagnose userstudy [--seed N]    regenerate Figure 7

Exit codes follow the documented status contract (``repro.schema``):
0 = no real bugs, 1 = at least one real-bug verdict, 2 = usage error,
3 = degraded (a result is ``unknown resource`` or was quarantined).
``suite`` keeps its self-test semantics (1 = ground-truth mismatch)
and ``stats`` its health semantics (1 = misclassification/regression).

``analyze``, ``diagnose`` and ``triage`` accept ``--json`` to emit the
stable machine-readable schema (see docs/API.md) instead of the human
rendering, and — like ``stats`` — accept ``--trace FILE`` to enable the
observability layer and write a ``repro.trace/1`` stream.  ``explain``
runs one report with full provenance recording and prints the
derivation tree behind the verdict; ``trace export`` renders a run (or
an existing ``repro.trace/1`` file via ``--in``) as Chrome trace-event
JSON, Prometheus text, or the versioned JSONL stream; ``stats
--history`` appends the run's telemetry to ``BENCH_obs.json`` and flags
stage-latency regressions (see docs/OBSERVABILITY.md).

``triage`` and ``serve`` also accept ``--log-file FILE``,
``--log-level LEVEL`` and ``--slow-query-ms MS``: structured
``repro.log/1`` JSON logging with the run's trace context attached to
every record, plus a slow-query log for solver calls that exceed the
threshold.  Each CLI invocation mints one trace id, so a batch run's
logs, telemetry snapshots and provenance nodes all correlate.

(Equivalently: ``python -m repro ...``)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import obs
from . import schema
from .obs import context as ocontext
from .obs import history as obs_history
from .obs import logging as olog
from .obs import provenance as prov
from .api import InitialVerdict, Pipeline
from .lang import SourceError
from .diagnosis import (
    EngineConfig,
    ExhaustiveOracle,
    InteractiveOracle,
    SamplingOracle,
    diagnose_error,
)
from .limits import Limits
from .suite import BENCHMARKS, benchmark_by_name, load_analysis


def _limits_from_args(args: argparse.Namespace) -> Limits | None:
    """Build the run's :class:`Limits` from the resource flags."""
    deadline = getattr(args, "deadline", None)
    max_steps = getattr(args, "max_steps", None)
    retries = getattr(args, "retries", None)
    if deadline is None and max_steps is None and retries is None:
        return None
    kwargs: dict = {"deadline": deadline, "max_steps": max_steps}
    if retries is not None:
        kwargs["retries"] = retries
    return Limits(**kwargs)


def _begin_trace(args: argparse.Namespace) -> bool:
    trace = getattr(args, "trace", None)
    if trace is not None:
        obs.enable()
        return True
    return False


def _configure_logging(args: argparse.Namespace) -> None:
    """Honour ``--log-file/--log-level/--slow-query-ms`` (no-op when
    none is given — structured logging stays off by default)."""
    log_file = getattr(args, "log_file", None)
    log_level = getattr(args, "log_level", None)
    slow = getattr(args, "slow_query_ms", None)
    if log_file is None and log_level is None and slow is None:
        return
    olog.configure(file=log_file, level=log_level or "info",
                   slow_query_ms=slow)
    if slow is not None:
        # the slow-query watcher rides span closings, which only exist
        # while the obs layer records
        obs.enable()


def _end_trace(args: argparse.Namespace) -> None:
    trace = getattr(args, "trace", None)
    if trace is None:
        return
    lines = obs.export_jsonl(trace)
    print(f"telemetry trace written to {trace} ({lines} lines)",
          file=sys.stderr)


def _cmd_analyze(args: argparse.Namespace) -> int:
    _begin_trace(args)
    source = Path(args.file).read_text()
    pipeline = Pipeline(auto_annotate=not args.no_annotate)
    outcome = pipeline.analyze(source)
    if args.json:
        print(outcome.to_json(indent=2))
    else:
        print(f"program: {outcome.program.name}")
        print(f"invariants I:      {outcome.invariants}")
        print(f"success cond phi:  {outcome.success}")
        print(f"verdict: {outcome.verdict.value}")
    _end_trace(args)
    return schema.exit_code([outcome.triage_verdict])


def _cmd_diagnose(args: argparse.Namespace) -> int:
    _begin_trace(args)
    source = Path(args.file).read_text()
    config = EngineConfig(max_rounds=args.max_rounds,
                          solver_portfolio=args.solver_portfolio)
    pipeline = Pipeline(
        auto_annotate=not args.no_annotate,
        config=config,
    )
    outcome = pipeline.analyze(source)
    if outcome.verdict is not InitialVerdict.UNCERTAIN:
        if args.json:
            print(outcome.to_json(indent=2))
        elif outcome.verdict is InitialVerdict.VERIFIED:
            print("verified outright: the report is a FALSE ALARM")
        else:
            print("refuted outright: the program has a REAL BUG")
        _end_trace(args)
        return schema.exit_code([outcome.triage_verdict])
    if not args.json:
        print("the analysis cannot decide; starting the query session")
    if args.oracle == "interactive":
        oracle = InteractiveOracle()
    else:
        oracle = SamplingOracle(outcome.program, outcome.analysis)
    result = diagnose_error(outcome.analysis, oracle, config)
    if args.json:
        print(result.to_json(indent=2))
    else:
        print()
        print(f"verdict: {result.classification.upper()} "
              f"after {result.num_queries} queries "
              f"({result.elapsed_seconds:.2f}s)")
    if args.report is not None:
        from .diagnosis import render_report

        Path(args.report).write_text(
            render_report(result, markdown=args.report.endswith(".md"))
        )
        print(f"session report written to {args.report}")
    _end_trace(args)
    return schema.exit_code([result.classification])


def _cmd_suite(args: argparse.Namespace) -> int:
    benches = (
        [benchmark_by_name(args.name)] if args.name else list(BENCHMARKS)
    )
    failures = 0
    for bench in benches:
        program, analysis = load_analysis(bench)
        oracle = ExhaustiveOracle(program, analysis,
                                  radius=bench.oracle_radius)
        result = diagnose_error(analysis, oracle)
        ok = result.classification == bench.classification
        failures += 0 if ok else 1
        marker = "ok " if ok else "FAIL"
        print(f"[{marker}] {bench.name:16s} -> {result.classification:12s}"
              f" ({result.num_queries} queries, "
              f"{result.elapsed_seconds:.2f}s)")
        if args.verbose:
            for interaction in result.interactions:
                print(f"        Q: {interaction.query.text}")
                print(f"        A: {interaction.answer.value}")
    return 1 if failures else 0


def _batch_events(result) -> list[dict]:
    """Every outcome's span events, tagged with their report."""
    return [
        {**event, "report": outcome.name}
        for outcome in result.outcomes
        for event in outcome.events
    ]


def _batch_provenance(result) -> list[dict]:
    """Every outcome's provenance nodes, tagged with their report."""
    return [
        {**node, "report": outcome.name}
        for outcome in result.outcomes
        for node in outcome.provenance
    ]


def _write_batch_trace(result, path: str) -> int:
    """The versioned ``repro.trace/1`` stream for a batch: header, every
    outcome's span events and provenance nodes (each tagged with its
    report), then the merged cross-worker snapshot."""
    return prov.export_trace(
        path,
        events=_batch_events(result),
        prov_nodes=_batch_provenance(result),
        snapshot=result.telemetry or {},
    )


def _cache_from_args(args: argparse.Namespace) -> tuple[str | None, bool]:
    cache_dir = getattr(args, "cache_dir", None)
    incremental = getattr(args, "incremental", False)
    if incremental and cache_dir is None:
        print("error: --incremental requires --cache-dir",
              file=sys.stderr)
        raise SystemExit(2)
    return cache_dir, incremental


def _run_triage(args: argparse.Namespace):
    names = args.names or None
    cache_dir, incremental = _cache_from_args(args)
    config = EngineConfig(solver_portfolio=True) \
        if getattr(args, "solver_portfolio", False) else None
    workers = getattr(args, "workers", None)
    if workers:
        workers = [u.strip() for u in workers.split(",") if u.strip()]
        if not workers:
            print("error: --workers needs at least one URL",
                  file=sys.stderr)
            raise SystemExit(2)
    else:
        workers = None
    result = Pipeline(config=config).triage(names, jobs=args.jobs,
                               limits=_limits_from_args(args),
                               cache_dir=cache_dir,
                               incremental=incremental,
                               workers=workers)
    if args.trace is not None:
        _write_batch_trace(result, args.trace)
        print(f"telemetry trace written to {args.trace}",
              file=sys.stderr)
    return result


def _print_triage_table(result) -> None:
    for outcome in result.outcomes:
        if outcome.degraded:
            marker = "DEGR"
            detail = outcome.error or "resource limits exhausted"
            if outcome.exhausted_stage:
                detail = (f"stage {outcome.exhausted_stage}, "
                          f"{outcome.exhausted_kind or 'steps'}, "
                          f"{outcome.attempts} attempts")
        elif outcome.error is not None:
            marker = "TIME" if outcome.timed_out else "ERR "
            detail = outcome.error
        elif outcome.exhausted_stage is not None:
            marker = "TIME" if outcome.timed_out else "RSRC"
            detail = (f"stage {outcome.exhausted_stage}, "
                      f"{outcome.exhausted_kind or 'steps'}")
        else:
            marker = "ok  " if outcome.correct else "FAIL"
            detail = (f"{outcome.num_queries} queries, "
                      f"{outcome.elapsed_seconds:.2f}s")
        print(f"[{marker}] {outcome.name:16s} -> "
              f"{outcome.classification:12s} ({detail})")
    summary = (f"{result.mode} x{result.jobs}: "
               f"{len(result.outcomes)} reports in "
               f"{result.wall_seconds:.2f}s, "
               f"accuracy {100.0 * result.accuracy:.0f}%")
    if result.degraded:
        summary += f", {len(result.degraded)} degraded"
    print(summary)


def _triage_exit_code(result) -> int:
    """The documented status contract (:func:`repro.schema.exit_code`):
    3 when any result is degraded/quarantined or hit a hard error (the
    answer is incomplete), else 1 when a real-bug verdict is present,
    else 0.  Shared with the daemon's HTTP status mapping."""
    hard_errors = any(
        o.error for o in result.outcomes if not o.degraded
    )
    return schema.exit_code(
        (o.classification for o in result.outcomes),
        degraded=bool(result.degraded) or hard_errors,
    )


def _bench_health_code(result) -> int:
    """``stats`` keeps benchmarking-health semantics: exit 1 only for
    genuine misclassifications or un-quarantined errors, so the CI
    observability gate flags broken triage, not the (expected) real-bug
    verdicts in Figure 7."""
    hard_errors = any(
        o.error for o in result.outcomes if not o.degraded
    )
    return 1 if (result.failures or hard_errors) else 0


def _cmd_triage(args: argparse.Namespace) -> int:
    _begin_trace(args)
    _configure_logging(args)
    # the CLI invocation is an ingress: everything the batch does —
    # spans, logs, per-report worker telemetry — shares this trace id
    with ocontext.bind(ocontext.new_trace("cli")):
        result = _run_triage(args)
    if args.json:
        print(result.to_json(indent=2))
    else:
        _print_triage_table(result)
        if result.telemetry is not None:
            _print_hit_rates(result.telemetry)
    return _triage_exit_code(result)


def _print_hit_rates(snap: dict) -> None:
    parts = []
    for label, prefix in (("qe-elim", "qe.elim"),
                          ("qe-clause-sat", "qe.clause_sat"),
                          ("smt-is-sat", "smt.is_sat"),
                          ("smt-incremental", "smt.incremental"),
                          ("store", "cache.store")):
        rate = obs.hit_rate(snap, prefix)
        if rate is not None:
            parts.append(f"{label} {100.0 * rate:.0f}%")
    if parts:
        print("cache hit rates: " + ", ".join(parts))


def _format_stats(snap: dict) -> str:
    """Render a merged telemetry snapshot as an aligned stats table."""
    lines: list[str] = []
    spans = snap.get("spans", {})
    if spans:
        lines.append("spans:")
        lines.append(f"  {'name':32s} {'count':>8s} {'total_s':>10s} "
                     f"{'mean_ms':>9s} {'max_ms':>9s}")
        for name in sorted(spans, key=lambda n: -spans[n]["total_s"]):
            s = spans[name]
            mean_ms = 1000.0 * s["total_s"] / max(1, s["count"])
            lines.append(
                f"  {name:32s} {s['count']:8d} {s['total_s']:10.3f} "
                f"{mean_ms:9.2f} {1000.0 * s['max_s']:9.2f}"
            )
    hists = snap.get("hists", {})
    if hists:
        lines.append("histograms (span names in seconds):")
        lines.append(f"  {'name':32s} {'count':>8s} {'p50':>10s} "
                     f"{'p95':>10s} {'p99':>10s} {'max':>10s}")
        for name in sorted(hists):
            h = hists[name]
            lines.append(
                f"  {name:32s} {h['count']:8d} {h.get('p50', 0.0):10.4g} "
                f"{h.get('p95', 0.0):10.4g} {h.get('p99', 0.0):10.4g} "
                f"{h.get('max', 0.0):10.4g}"
            )
    counters = snap.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:42s} {counters[name]:>10d}")
    for label, prefix in (("qe.elim", "qe.elim"),
                          ("qe.clause_sat", "qe.clause_sat"),
                          ("smt.is_sat", "smt.is_sat"),
                          ("smt.incremental", "smt.incremental"),
                          ("cache.store", "cache.store")):
        rate = obs.hit_rate(snap, prefix)
        if rate is not None:
            lines.append(f"hit rate {label:33s} {100.0 * rate:9.1f}%")
    return "\n".join(lines)


def _format_cache_stats(result) -> str:
    """Intern-table sizes and persistent-store counters for ``stats``.

    The intern tables are this process's (workers keep their own); the
    store entry count reflects the shared directory, and the hit/miss/
    eviction counters merge every worker's via the telemetry snapshot.
    """
    from .logic.intern import intern_stats

    lines = ["intern tables (driver process):"]
    for table, entries in sorted(intern_stats().items()):
        lines.append(f"  {table:42s} {entries:>10d}")
    store = result.cache
    if store is not None:
        lines.append(f"persistent store ({store['path']}):")
        lines.append(f"  {'entries':42s} {store['entries']:>10d}")
        counters = (result.telemetry or {}).get("counters", {})
        for event, total in (("hit", "hits"), ("miss", "misses"),
                             ("put", "puts"), ("eviction", "evictions"),
                             ("corrupt", "corrupt")):
            count = counters.get(f"cache.store.{event}",
                                 store.get(total, 0))
            lines.append(f"  {total:42s} {count:>10d}")
    return "\n".join(lines)


def _handle_history(args: argparse.Namespace, result) -> int:
    """``stats --history``: check for regressions against the stored
    baseline, append this run, print the trajectory.  Returns the extra
    exit status (1 when ``--fail-on-regression`` fires)."""
    snap = result.telemetry or {}
    path = args.history_file
    history = obs_history.load(path)
    had_baseline = obs_history.baseline_run(history) is not None
    regressions = obs_history.check_regressions(
        history, snap, threshold=args.regress_threshold
    )
    obs_history.append_run(
        path, snap, label="stats",
        meta={
            "accuracy": result.accuracy,
            "wall_seconds": result.wall_seconds,
            "jobs": result.jobs,
            "mode": result.mode,
            "reports": len(result.outcomes),
        },
    )
    print()
    print(obs_history.format_history(obs_history.load(path)))
    if not had_baseline:
        print("no stored baseline yet; this run becomes the baseline")
        return 0
    if not regressions:
        print(f"no stage p95 regressions vs baseline "
              f"(threshold {100.0 * args.regress_threshold:.0f}%)")
        return 0
    for r in regressions:
        print(f"REGRESSION {r['stage']}: p95 "
              f"{1000.0 * r['baseline_p95_s']:.2f}ms -> "
              f"{1000.0 * r['current_p95_s']:.2f}ms "
              f"({100.0 * (r['ratio'] - 1.0):.0f}% slower)")
    return 1 if args.fail_on_regression else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    obs.enable()
    result = _run_triage(args)
    if args.json:
        print(json.dumps(result.telemetry, indent=2, default=str))
        return _handle_history(args, result) if args.history else 0
    _print_triage_table(result)
    print()
    print(_format_stats(result.telemetry or {}))
    print()
    print(_format_cache_stats(result))
    history_status = _handle_history(args, result) if args.history else 0
    return history_status or _bench_health_code(result)


def _cmd_explain(args: argparse.Namespace) -> int:
    """Triage one report with provenance on; print its derivation tree."""
    prov.enable()
    result = Pipeline().triage([args.name], jobs=1,
                               limits=_limits_from_args(args))
    outcome = result.outcomes[0]
    header = f"{outcome.name}: {outcome.classification}"
    if outcome.expected is not None:
        header += f" (expected: {outcome.expected})"
    print(header)
    print()
    print(prov.render_tree(_batch_events(result),
                           _batch_provenance(result),
                           report=outcome.name))
    if args.trace is not None:
        lines = _write_batch_trace(result, args.trace)
        print(f"provenance trace written to {args.trace} ({lines} lines)",
              file=sys.stderr)
    return 0


def _cmd_trace_export(args: argparse.Namespace) -> int:
    """Render a traced run (or an existing ``repro.trace/1`` stream) in
    the requested exporter format."""
    if args.input is not None:
        data = prov.read_trace(args.input)
        events = data["events"]
        nodes = data["nodes"]
        snap = data["snapshot"] or {}
    else:
        prov.enable()
        result = Pipeline().triage(args.names or None, jobs=args.jobs,
                                   limits=_limits_from_args(args))
        events = _batch_events(result)
        nodes = _batch_provenance(result)
        snap = result.telemetry or {}
    if args.format == "chrome":
        doc = obs.export_chrome(args.out, source_events=events)
        detail = f"{len(doc['traceEvents'])} events"
    elif args.format == "prom":
        text = obs.export_prometheus(args.out, snap=snap)
        detail = f"{len(text.splitlines())} lines"
    else:
        lines = prov.export_trace(args.out, events=events,
                                  prov_nodes=nodes, snapshot=snap)
        detail = f"{lines} lines"
    print(f"{args.format} trace written to {args.out} ({detail})",
          file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the triage daemon until SIGTERM/SIGINT (see repro.serve)."""
    from .serve import run

    _configure_logging(args)
    config = EngineConfig(solver_portfolio=True) \
        if args.solver_portfolio else None
    return run(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        config=config,
        limits=_limits_from_args(args),
        max_inflight=args.max_inflight,
        workers=args.workers,
    )


def _cmd_repair(args: argparse.Namespace) -> int:
    _begin_trace(args)
    cache_dir, _ = _cache_from_args(args)
    target = args.name
    path = Path(target)
    if path.suffix == ".err" or path.is_file():
        target = path.read_text()
    pipeline = Pipeline(cache_dir=cache_dir,
                        limits=_limits_from_args(args))
    try:
        result = pipeline.repair(target, max_patches=args.max_patches)
    except SourceError as exc:
        # neither a benchmark name, a file, nor a parseable program:
        # that is a usage error, not a real-bug verdict
        print(f"repair: {exc}", file=sys.stderr)
        _end_trace(args)
        return schema.EXIT_USAGE
    if args.json:
        print(result.to_json(indent=2))
        _end_trace(args)
        return result.exit_status
    print(f"program: {result.program}")
    print(f"verdict: {result.verdict.value}")
    if result.note:
        print(f"note: {result.note}")
    if result.num_queries is not None:
        print(f"queries: {result.num_queries}")
    for patch in result.patches:
        status = ("verified" if patch.verified
                  else f"rejected ({patch.rejected})" if patch.rejected
                  else "unverified")
        print()
        print(f"#{patch.rank} [{status}] {patch.kind}: "
              f"{patch.formula}  "
              f"(cost: {patch.cost[0]} vars, size {patch.cost[1]})")
        for edit in patch.edits:
            where = (f"@post({edit.label})" if edit.kind == "post"
                     else f"assume on {edit.target}"
                     if edit.kind == "assume" else "check guard")
            print(f"    {where} line {edit.line}: {edit.pred}")
    best = result.best
    if best is not None and best.diff:
        print()
        print(best.diff, end="")
    elif not result.patches and not result.already_clean \
            and result.verdict.value != "real bug":
        print("no expressible patch candidate survived verification")
    _end_trace(args)
    return result.exit_status


def _cmd_userstudy(args: argparse.Namespace) -> int:
    from .userstudy import format_figure7, run_user_study

    study = run_user_study(
        seed=args.seed,
        num_recruited=args.participants,
        engine_config=EngineConfig(max_rounds=8),
    )
    print(format_figure7(study))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-diagnose",
        description=(
            "Automated error diagnosis using abductive inference "
            "(PLDI 2012 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_output_flags(p: argparse.ArgumentParser,
                         *, json_flag: bool = True) -> None:
        if json_flag:
            p.add_argument("--json", action="store_true",
                           help="emit the stable JSON schema "
                                "(docs/API.md) instead of text")
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="enable instrumentation and write a JSONL "
                            "telemetry trace to FILE")

    p_analyze = sub.add_parser("analyze", help="run the static analysis")
    p_analyze.add_argument("file")
    p_analyze.add_argument("--no-annotate", action="store_true",
                           help="skip automatic loop-invariant inference")
    add_output_flags(p_analyze)
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_diag = sub.add_parser("diagnose", help="interactive diagnosis")
    p_diag.add_argument("file")
    p_diag.add_argument("--oracle", choices=["interactive", "sampling"],
                        default="interactive")
    p_diag.add_argument("--max-rounds", type=int, default=25)
    p_diag.add_argument("--no-annotate", action="store_true")
    p_diag.add_argument("--report", default=None, metavar="PATH",
                        help="write a session report (.md for Markdown)")
    p_diag.add_argument("--solver-portfolio", action="store_true",
                        help="race incremental/fresh/QE-first solver "
                             "strategies per boolean query (first sound "
                             "answer wins; verdicts are unchanged)")
    add_output_flags(p_diag)
    p_diag.set_defaults(fn=_cmd_diagnose)

    p_suite = sub.add_parser("suite", help="run the Figure 7 benchmarks")
    p_suite.add_argument("name", nargs="?", default=None)
    p_suite.add_argument("--verbose", "-v", action="store_true")
    p_suite.set_defaults(fn=_cmd_suite)

    def add_limit_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-report wall-clock deadline; reports "
                            "that run out come back 'unknown resource'")
        p.add_argument("--max-steps", type=int, default=None,
                       metavar="N",
                       help="per-stage solver step budget "
                            "(see repro.limits)")
        p.add_argument("--retries", type=int, default=None, metavar="N",
                       help="extra attempts (tightened deadline, "
                            "backoff) before quarantining a report")

    def add_log_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--log-file", default=None, metavar="FILE",
                       help="append repro.log/1 structured JSON log "
                            "records to FILE")
        p.add_argument("--log-level", default=None,
                       choices=("debug", "info", "warning", "error"),
                       help="minimum structured-log level "
                            "(default: info when logging is on)")
        p.add_argument("--slow-query-ms", type=float, default=None,
                       metavar="MS",
                       help="log SMT/QE/MSA calls slower than MS "
                            "milliseconds as 'slow_query' warnings")

    def add_cache_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent content-addressed artifact store; "
                            "stage/QE/SMT results are reused across runs")
        p.add_argument("--incremental", action="store_true",
                       help="serve reports whose (I, phi) digest is "
                            "unchanged from recorded verdicts "
                            "(requires --cache-dir)")

    p_triage = sub.add_parser(
        "triage", help="batch-triage benchmark reports across cores"
    )
    p_triage.add_argument("names", nargs="*", metavar="NAME",
                          help="benchmark names (default: all of Figure 7)")
    p_triage.add_argument("--jobs", "-j", type=int, default=None,
                          help="worker processes (default: CPU count)")
    p_triage.add_argument("--workers", default=None,
                          metavar="URL[,URL...]",
                          help="fan out over running `repro serve` "
                               "instances instead of local processes "
                               "(comma-separated base URLs; give the "
                               "fleet a shared --cache-dir)")
    p_triage.add_argument("--solver-portfolio", action="store_true",
                          help="race incremental/fresh/QE-first solver "
                               "strategies per boolean query")
    add_limit_flags(p_triage)
    add_log_flags(p_triage)
    add_cache_flags(p_triage)
    add_output_flags(p_triage)
    p_triage.set_defaults(fn=_cmd_triage)

    p_repair = sub.add_parser(
        "repair",
        help="triage a report and synthesize ranked, verified patches",
    )
    p_repair.add_argument("name", metavar="NAME",
                          help="a Figure 7 benchmark name, or a path "
                               "to a .err source file")
    p_repair.add_argument("--max-patches", type=int, default=None,
                          metavar="N",
                          help="keep at most N ranked patches")
    add_limit_flags(p_repair)
    p_repair.add_argument("--cache-dir", default=None, metavar="DIR",
                          help="persistent content-addressed artifact "
                               "store; stage/QE/SMT/repair results are "
                               "reused across runs")
    add_output_flags(p_repair)
    p_repair.set_defaults(fn=_cmd_repair)

    p_stats = sub.add_parser(
        "stats",
        help="triage with instrumentation on; print the telemetry table",
    )
    p_stats.add_argument("names", nargs="*", metavar="NAME",
                         help="benchmark names (default: all of Figure 7)")
    p_stats.add_argument("--jobs", "-j", type=int, default=None,
                         help="worker processes (default: CPU count)")
    p_stats.add_argument("--history", action="store_true",
                         help="append this run's telemetry to the "
                              "history file and flag p95 stage-latency "
                              "regressions vs the stored baseline")
    p_stats.add_argument("--history-file", default="BENCH_obs.json",
                         metavar="FILE",
                         help="run-history store (default: BENCH_obs.json)")
    p_stats.add_argument("--regress-threshold", type=float, default=0.2,
                         metavar="FRACTION",
                         help="p95 regression threshold (default: 0.2 "
                              "= 20%%)")
    p_stats.add_argument("--fail-on-regression", action="store_true",
                         help="exit 1 when a stage regresses beyond the "
                              "threshold")
    add_limit_flags(p_stats)
    add_cache_flags(p_stats)
    add_output_flags(p_stats)
    p_stats.set_defaults(fn=_cmd_stats)

    p_explain = sub.add_parser(
        "explain",
        help="triage one report with provenance recording and print "
             "the derivation tree behind its verdict",
    )
    p_explain.add_argument("name", metavar="NAME",
                           help="a Figure 7 benchmark name")
    add_limit_flags(p_explain)
    p_explain.add_argument("--trace", default=None, metavar="FILE",
                           help="also write the repro.trace/1 stream")
    p_explain.set_defaults(fn=_cmd_explain)

    p_trace = sub.add_parser(
        "trace", help="export telemetry traces in standard formats"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_export = trace_sub.add_parser(
        "export",
        help="run a traced triage (or convert an existing stream) and "
             "write it as Chrome trace-event JSON, Prometheus text, or "
             "repro.trace/1 JSONL",
    )
    p_export.add_argument("names", nargs="*", metavar="NAME",
                          help="benchmark names (default: all of Figure 7)")
    p_export.add_argument("--format", choices=["chrome", "prom", "jsonl"],
                          default="jsonl",
                          help="output format (default: jsonl)")
    p_export.add_argument("--out", required=True, metavar="FILE",
                          help="destination file")
    p_export.add_argument("--in", dest="input", default=None,
                          metavar="FILE",
                          help="convert an existing repro.trace/1 stream "
                               "instead of re-running the suite")
    p_export.add_argument("--jobs", "-j", type=int, default=None,
                          help="worker processes (default: CPU count)")
    add_limit_flags(p_export)
    p_export.set_defaults(fn=_cmd_trace_export)

    p_serve = sub.add_parser(
        "serve",
        help="run the triage daemon (HTTP/JSON, stdlib only); see "
             "docs/API.md for the endpoint surface",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8184,
                         help="TCP port; 0 binds an ephemeral port "
                              "(default: 8184)")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persistent content-addressed store; "
                              "recorded verdicts are served inline and "
                              "same-judgment sources share work")
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         metavar="N",
                         help="distinct jobs queued-or-running before "
                              "submissions get 429 (default: 8)")
    p_serve.add_argument("--workers", type=int, default=2, metavar="N",
                         help="triage worker threads (default: 2)")
    p_serve.add_argument("--solver-portfolio", action="store_true",
                         help="race solver strategies per boolean query")
    add_limit_flags(p_serve)
    add_log_flags(p_serve)
    p_serve.set_defaults(fn=_cmd_serve)

    p_study = sub.add_parser("userstudy",
                             help="regenerate the Figure 7 user study")
    p_study.add_argument("--seed", type=int, default=2012)
    p_study.add_argument("--participants", type=int, default=56)
    p_study.set_defaults(fn=_cmd_userstudy)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
