"""Command-line interface.

Subcommands::

    repro-diagnose analyze FILE            run the analysis, print (I, phi)
    repro-diagnose diagnose FILE           interactive Figure 6 session
    repro-diagnose suite [NAME]            run benchmark(s) w/ ground truth
    repro-diagnose triage [NAME...] --jobs N   batch triage across cores
    repro-diagnose userstudy [--seed N]    regenerate Figure 7

(Equivalently: ``python -m repro ...``)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .api import InitialVerdict, analyze_source
from .diagnosis import (
    EngineConfig,
    ExhaustiveOracle,
    InteractiveOracle,
    SamplingOracle,
    diagnose_error,
)
from .suite import BENCHMARKS, benchmark_by_name, load_analysis


def _cmd_analyze(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    outcome = analyze_source(source, auto_annotate=not args.no_annotate)
    print(f"program: {outcome.program.name}")
    print(f"invariants I:      {outcome.invariants}")
    print(f"success cond phi:  {outcome.success}")
    print(f"verdict: {outcome.verdict.value}")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    outcome = analyze_source(source, auto_annotate=not args.no_annotate)
    if outcome.verdict is InitialVerdict.VERIFIED:
        print("verified outright: the report is a FALSE ALARM")
        return 0
    if outcome.verdict is InitialVerdict.REFUTED:
        print("refuted outright: the program has a REAL BUG")
        return 0
    print("the analysis cannot decide; starting the query session")
    if args.oracle == "interactive":
        oracle = InteractiveOracle()
    else:
        oracle = SamplingOracle(outcome.program, outcome.analysis)
    result = diagnose_error(outcome.analysis, oracle,
                            EngineConfig(max_rounds=args.max_rounds))
    print()
    print(f"verdict: {result.classification.upper()} "
          f"after {result.num_queries} queries "
          f"({result.elapsed_seconds:.2f}s)")
    if args.report is not None:
        from .diagnosis import render_report

        Path(args.report).write_text(
            render_report(result, markdown=args.report.endswith(".md"))
        )
        print(f"session report written to {args.report}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    benches = (
        [benchmark_by_name(args.name)] if args.name else list(BENCHMARKS)
    )
    failures = 0
    for bench in benches:
        program, analysis = load_analysis(bench)
        oracle = ExhaustiveOracle(program, analysis,
                                  radius=bench.oracle_radius)
        result = diagnose_error(analysis, oracle)
        ok = result.classification == bench.classification
        failures += 0 if ok else 1
        marker = "ok " if ok else "FAIL"
        print(f"[{marker}] {bench.name:16s} -> {result.classification:12s}"
              f" ({result.num_queries} queries, "
              f"{result.elapsed_seconds:.2f}s)")
        if args.verbose:
            for interaction in result.interactions:
                print(f"        Q: {interaction.query.text}")
                print(f"        A: {interaction.answer.value}")
    return 1 if failures else 0


def _cmd_triage(args: argparse.Namespace) -> int:
    from .batch import triage_many

    names = args.names or None
    result = triage_many(names, jobs=args.jobs, timeout=args.timeout)
    for outcome in result.outcomes:
        if outcome.error is not None:
            marker = "TIME" if outcome.timed_out else "ERR "
            detail = outcome.error
        else:
            marker = "ok  " if outcome.correct else "FAIL"
            detail = (f"{outcome.num_queries} queries, "
                      f"{outcome.elapsed_seconds:.2f}s")
        print(f"[{marker}] {outcome.name:16s} -> "
              f"{outcome.classification:12s} ({detail})")
    print(f"{result.mode} x{result.jobs}: "
          f"{len(result.outcomes)} reports in {result.wall_seconds:.2f}s, "
          f"accuracy {100.0 * result.accuracy:.0f}%")
    return 1 if (result.failures or
                 any(o.error for o in result.outcomes)) else 0


def _cmd_userstudy(args: argparse.Namespace) -> int:
    from .userstudy import format_figure7, run_user_study

    study = run_user_study(
        seed=args.seed,
        num_recruited=args.participants,
        engine_config=EngineConfig(max_rounds=8),
    )
    print(format_figure7(study))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-diagnose",
        description=(
            "Automated error diagnosis using abductive inference "
            "(PLDI 2012 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser("analyze", help="run the static analysis")
    p_analyze.add_argument("file")
    p_analyze.add_argument("--no-annotate", action="store_true",
                           help="skip automatic loop-invariant inference")
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_diag = sub.add_parser("diagnose", help="interactive diagnosis")
    p_diag.add_argument("file")
    p_diag.add_argument("--oracle", choices=["interactive", "sampling"],
                        default="interactive")
    p_diag.add_argument("--max-rounds", type=int, default=25)
    p_diag.add_argument("--no-annotate", action="store_true")
    p_diag.add_argument("--report", default=None, metavar="PATH",
                        help="write a session report (.md for Markdown)")
    p_diag.set_defaults(fn=_cmd_diagnose)

    p_suite = sub.add_parser("suite", help="run the Figure 7 benchmarks")
    p_suite.add_argument("name", nargs="?", default=None)
    p_suite.add_argument("--verbose", "-v", action="store_true")
    p_suite.set_defaults(fn=_cmd_suite)

    p_triage = sub.add_parser(
        "triage", help="batch-triage benchmark reports across cores"
    )
    p_triage.add_argument("names", nargs="*", metavar="NAME",
                          help="benchmark names (default: all of Figure 7)")
    p_triage.add_argument("--jobs", "-j", type=int, default=None,
                          help="worker processes (default: CPU count)")
    p_triage.add_argument("--timeout", type=float, default=None,
                          help="per-report timeout in seconds")
    p_triage.set_defaults(fn=_cmd_triage)

    p_study = sub.add_parser("userstudy",
                             help="regenerate the Figure 7 user study")
    p_study.add_argument("--seed", type=int, default=2012)
    p_study.add_argument("--participants", type=int, default=56)
    p_study.set_defaults(fn=_cmd_userstudy)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
