"""A from-scratch CDCL SAT solver (the propositional engine of the SMT
layer)."""

from .cdcl import SatSolver, luby

__all__ = ["SatSolver", "luby"]
