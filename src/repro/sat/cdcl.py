"""A CDCL SAT solver (conflict-driven clause learning).

The propositional engine behind the lazy SMT solver of :mod:`repro.smt`.
Features the standard modern architecture:

* two-watched-literal clause indexing,
* first-UIP conflict analysis with learned-clause minimization,
* VSIDS-style exponential variable activities with phase saving,
* Luby-sequence restarts,
* LBD-guided learned-clause database reduction,
* incremental use: clauses may be added between ``solve()`` calls (the
  SMT layer adds theory-blocking clauses this way).

Literal encoding: variables are positive integers ``1..n``; a literal is
``+v`` or ``-v``.  Internally literals map to indices ``2v`` / ``2v+1``.

Storage layout (the hot-path design):

* clause literals live in one flat *arena*; a clause is a ``(start,
  length)`` pair held in two parallel columns, so propagation walks one
  contiguous sequence instead of chasing per-clause Python list objects
  (the arena is a plain list rather than ``array('i')`` — see the note
  in ``__init__`` on CPython int boxing);
* watch lists are flat interleaved ``[clause, blocker, clause, blocker,
  ...]`` lists per literal index; the *blocker* is the other watched
  literal of the clause — if it is already true the clause is satisfied
  and the visit costs one assignment lookup, never touching the arena
  (MiniSat's blocking-literal trick, which skips most visits);
* assignments/levels/reasons are parallel ``array`` columns indexed by
  variable, plus a per-*literal* truth-value column (``_litval``) so the
  propagation loop tests a literal with one indexed read instead of a
  sign branch and a negation.

Database reduction: learned clauses record their LBD (number of distinct
decision levels in the clause at learning time).  Every
``reduce_interval`` conflicts the worst half of the learned clauses
(highest LBD, break ties towards most recent) is dropped — except
glue clauses (LBD <= ``reduce_keep_lbd``), binary clauses and clauses
currently locked as a propagation reason — and the arena is compacted.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence

from .. import obs
from .. import limits as _limits


def _lit_index(lit: int) -> int:
    """Map a signed literal to a dense array index."""
    return 2 * lit if lit > 0 else -2 * lit + 1


def _index_lit(index: int) -> int:
    return index // 2 if index % 2 == 0 else -(index // 2)


def luby(x: int) -> int:
    """The Luby restart sequence (0-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    """An incremental CDCL SAT solver on a flat clause arena.

    The search-control constants are constructor parameters so callers
    (and benchmarks) can tune them per workload:

    ``luby_unit``
        conflicts per Luby restart unit (budget = unit * luby(i)).
    ``var_decay``
        VSIDS decay factor applied after every conflict.
    ``reduce_interval``
        conflicts between learned-clause database reductions; ``0``
        disables reduction entirely.
    ``reduce_keep_lbd``
        learned clauses at or below this LBD ("glue" clauses) are never
        dropped by a reduction.
    """

    _UNASSIGNED = 0
    _TRUE = 1
    _FALSE = -1

    def __init__(self, *, luby_unit: int = 64, var_decay: float = 0.95,
                 reduce_interval: int = 2000,
                 reduce_keep_lbd: int = 3) -> None:
        if luby_unit <= 0:
            raise ValueError("luby_unit must be positive")
        if not 0.0 < var_decay <= 1.0:
            raise ValueError("var_decay must be in (0, 1]")
        if reduce_interval < 0:
            raise ValueError("reduce_interval must be >= 0")
        self._num_vars = 0
        # clause arena: flat literal storage + per-clause columns.
        # Plain lists, not array('i'): benchmarked both, and in CPython an
        # array read *boxes* any int outside the small-int cache (every
        # negative literal, every arena offset past 256) — a heap
        # allocation per read in the hottest loop.  Lists hold already-
        # boxed ints, so indexing is a pointer fetch.
        self._arena: list[int] = []
        self._clause_start: list[int] = []
        self._clause_len: list[int] = []
        self._clause_lbd = array("i")    # 0 = problem clause, >0 = learned
        self._clause_stamp = array("q")  # learning order, for reduction ties
        self._num_clauses = 0
        self._deleted = 0
        self._watches: list[list[int]] = [[], []]  # per literal index
        self._assign = array("b", [0])             # per variable, 1-based
        self._litval = array("b", [0, 0])          # per literal index
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]             # clause index or -1
        self._phase = array("b", [0])
        self._activity: list[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = var_decay
        self._luby_unit = luby_unit
        self._reduce_interval = reduce_interval
        self._reduce_keep_lbd = reduce_keep_lbd
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._queue_head = 0
        self._ok = True
        self._conflicts = 0
        self._restarts = 0
        self._reductions = 0
        self._next_reduce = reduce_interval

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        self._assign.append(self._UNASSIGNED)
        self._litval.append(0)
        self._litval.append(0)
        self._level.append(0)
        self._reason.append(-1)
        self._phase.append(0)
        self._activity.append(0.0)
        self._watches.append([])
        self._watches.append([])
        return self._num_vars

    def ensure_vars(self, n: int) -> None:
        while self._num_vars < n:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Attached (non-unit) clauses, including learned ones."""
        return self._num_clauses - self._deleted

    @property
    def num_conflicts(self) -> int:
        """Total conflicts across every ``solve()`` call."""
        return self._conflicts

    @property
    def num_restarts(self) -> int:
        """Total Luby restarts across every ``solve()`` call."""
        return self._restarts

    @property
    def num_reductions(self) -> int:
        """Learned-clause database reductions across every ``solve()``."""
        return self._reductions

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat.

        May be called between ``solve()`` invocations; the solver first
        backtracks to the root level.
        """
        if not self._ok:
            return False
        self._backtrack(0)
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0 or abs(lit) > self._num_vars:
                raise ValueError(f"literal {lit} out of range")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value == self._TRUE and self._level[abs(lit)] == 0:
                return True  # already satisfied at root
            if value == self._FALSE and self._level[abs(lit)] == 0:
                continue     # falsified at root: drop the literal
            seen.add(lit)
            clause.append(lit)

        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._ok = False
                return False
            self._ok = self._propagate() == -1
            return self._ok
        self._attach(clause, lbd=0)
        return True

    def _attach(self, clause: Sequence[int], *, lbd: int) -> int:
        index = self._num_clauses
        self._num_clauses = index + 1
        self._clause_start.append(len(self._arena))
        self._clause_len.append(len(clause))
        self._clause_lbd.append(lbd)
        self._clause_stamp.append(self._conflicts)
        self._arena.extend(clause)
        watch0 = self._watches[_lit_index(-clause[0])]
        watch0.append(index)
        watch0.append(_lit_index(clause[1]))
        watch1 = self._watches[_lit_index(-clause[1])]
        watch1.append(index)
        watch1.append(_lit_index(clause[0]))
        return index

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under optional assumptions."""
        if not obs.is_enabled():
            return self._solve(assumptions)
        before_conflicts = self._conflicts
        before_restarts = self._restarts
        try:
            return self._solve(assumptions)
        finally:
            obs.inc("sat.solves")
            obs.inc("sat.conflicts", self._conflicts - before_conflicts)
            obs.inc("sat.restarts", self._restarts - before_restarts)

    def _solve(self, assumptions: Sequence[int] = ()) -> bool:
        if not self._ok:
            return False
        self._backtrack(0)
        if self._propagate() != -1:
            self._ok = False
            return False

        restarts = 0
        budget = self._luby_unit * luby(restarts)
        conflicts_here = 0

        # assumption handling: decide assumption literals first
        while True:
            _limits.tick("sat")
            conflict = self._propagate()
            if conflict != -1:
                self._conflicts += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return False
                if self._decision_level() <= len(assumptions):
                    # conflict depends only on assumptions
                    return False
                learned, backjump, lbd = self._analyze(conflict)
                self._backtrack(max(backjump, len(assumptions)))
                self._learn(learned, lbd)
                self._decay_activities()
                if (self._reduce_interval
                        and self._conflicts >= self._next_reduce
                        and self._decision_level() <= len(assumptions)):
                    self._reduce_db(len(assumptions))
                if conflicts_here >= budget:
                    restarts += 1
                    self._restarts += 1
                    budget = self._luby_unit * luby(restarts)
                    conflicts_here = 0
                    self._backtrack(len(assumptions))
                continue

            # pick the next assumption that is not yet satisfied
            level = self._decision_level()
            if level < len(assumptions):
                lit = assumptions[level]
                value = self._value(lit)
                if value == self._TRUE:
                    # already implied: introduce a dummy level to keep the
                    # level <-> assumption correspondence simple
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == self._FALSE:
                    return False
                self._decide(lit)
                continue

            lit = self._pick_branch()
            if lit == 0:
                return True  # full assignment found
            self._decide(lit)

    def model(self) -> dict[int, bool]:
        """The satisfying assignment found by the last ``solve()``."""
        assign = self._assign
        return {
            v: assign[v] == self._TRUE
            for v in range(1, self._num_vars + 1)
            if assign[v] != self._UNASSIGNED
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _decide(self, lit: int) -> None:
        self._trail_lim.append(len(self._trail))
        enqueued = self._enqueue(lit, -1)
        assert enqueued

    def _enqueue(self, lit: int, reason: int) -> bool:
        var = lit if lit > 0 else -lit
        value = self._assign[var]
        if lit < 0:
            value = -value
        if value == self._FALSE:
            return False
        if value == self._TRUE:
            return True
        litval = self._litval
        if lit > 0:
            self._assign[var] = self._TRUE
            litval[2 * var] = 1
            litval[2 * var + 1] = -1
        else:
            self._assign[var] = self._FALSE
            litval[2 * var] = -1
            litval[2 * var + 1] = 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = 1 if lit > 0 else 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause index or -1.

        This is the dominant cost of every solve, so the loop binds all
        state to locals, checks blockers before touching the arena, and
        inlines the implied-literal enqueue — no clause objects and no
        helper calls on the fast path.
        """
        arena = self._arena
        starts = self._clause_start
        lens = self._clause_len
        assign = self._assign
        litval = self._litval
        levels = self._level
        reasons = self._reason
        phases = self._phase
        watches = self._watches
        trail = self._trail
        level = len(self._trail_lim)  # constant during propagation
        head = self._queue_head
        while head < len(trail):
            lit = trail[head]
            head += 1
            fi = 2 * lit if lit > 0 else -2 * lit + 1  # falsified index
            wl = watches[fi]
            n = len(wl)
            i = 0
            j = 0  # write pointer: the list is compacted in place
            conflict = -1
            while i < n:
                ci = wl[i]
                blocker = wl[i + 1]
                i += 2
                if litval[blocker] == 1:
                    wl[j] = ci
                    wl[j + 1] = blocker
                    j += 2
                    continue
                start = starts[ci]
                # ensure the falsified literal is in slot 1
                first = arena[start]
                if first == -lit:
                    arena[start] = first = arena[start + 1]
                    arena[start + 1] = -lit
                fidx = 2 * first if first > 0 else -2 * first + 1
                if fidx != blocker and litval[fidx] == 1:
                    wl[j] = ci
                    wl[j + 1] = fidx
                    j += 2
                    continue
                # search for a replacement watch
                end = start + lens[ci]
                for k in range(start + 2, end):
                    other = arena[k]
                    if litval[2 * other if other > 0
                              else -2 * other + 1] != -1:
                        arena[k] = arena[start + 1]
                        arena[start + 1] = other
                        moved = watches[-2 * other if other < 0
                                        else 2 * other + 1]
                        moved.append(ci)
                        moved.append(fidx)
                        break
                else:
                    # clause is unit (enqueue first) or conflicting
                    wl[j] = ci
                    wl[j + 1] = fidx
                    j += 2
                    value = litval[fidx]
                    if value == -1:
                        conflict = ci
                        break
                    if value == 0:
                        var = first if first > 0 else -first
                        if first > 0:
                            assign[var] = 1
                            litval[fidx] = 1
                            litval[fidx + 1] = -1
                            phases[var] = 1
                        else:
                            assign[var] = -1
                            litval[fidx] = 1
                            litval[fidx - 1] = -1
                            phases[var] = 0
                        levels[var] = level
                        reasons[var] = ci
                        trail.append(first)
            if conflict != -1:
                while i < n:
                    wl[j] = wl[i]
                    j += 1
                    i += 1
                del wl[j:]
                self._queue_head = len(trail)
                return conflict
            del wl[j:]
        self._queue_head = head
        return -1

    def _analyze(self, conflict: int) -> tuple[list[int], int, int]:
        """First-UIP conflict analysis.

        Returns ``(learned clause, backjump level, lbd)``; the LBD is the
        number of distinct decision levels among the learned literals.
        """
        learned: list[int] = [0]  # slot 0 reserved for the asserting literal
        seen = bytearray(self._num_vars + 1)
        counter = 0
        lit = 0
        index = len(self._trail) - 1
        arena = self._arena
        starts = self._clause_start
        lens = self._clause_len
        trail = self._trail
        current_level = self._decision_level()
        levels = self._level
        ci = conflict

        while True:
            start = starts[ci]
            for j in range(start, start + lens[ci]):
                q = arena[j]
                if q == lit:
                    continue
                var = q if q > 0 else -q
                if not seen[var] and levels[var] > 0:
                    seen[var] = 1
                    self._bump(var)
                    if levels[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # find the next seen literal on the trail
            while not seen[abs(trail[index])]:
                index -= 1
            p = trail[index]
            index -= 1
            var = abs(p)
            seen[var] = 0
            counter -= 1
            if counter == 0:
                learned[0] = -p
                break
            ci = self._reason[var]
            lit = p

        # clause minimization: drop literals implied by the rest
        learned = self._minimize(learned)

        if len(learned) == 1:
            return learned, 0, 1
        # backjump to the second-highest level in the clause; the LBD is
        # the number of distinct levels (the asserting literal sits alone
        # at the current level, hence the +1)
        distinct = set()
        backjump = 0
        for k in range(1, len(learned)):
            qlevel = levels[abs(learned[k])]
            distinct.add(qlevel)
            if qlevel > backjump:
                backjump = qlevel
        # move a literal of the backjump level into slot 1 for watching
        for k in range(1, len(learned)):
            if levels[abs(learned[k])] == backjump:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, backjump, len(distinct) + 1

    def _minimize(self, learned: list[int]) -> list[int]:
        """Cheap recursive minimization of the learned clause."""
        marked = set(abs(q) for q in learned)
        levels = self._level
        arena = self._arena
        starts = self._clause_start
        lens = self._clause_len
        result = [learned[0]]
        reasons = self._reason
        for q in learned[1:]:
            reason = reasons[abs(q)]
            if reason == -1:
                result.append(q)
                continue
            start = starts[reason]
            for j in range(start, start + lens[reason]):
                r = arena[j]
                if r == -q:
                    continue
                var = r if r > 0 else -r
                if var not in marked and levels[var] != 0:
                    result.append(q)  # not implied: keep the literal
                    break
            # else: q is implied by the other clause literals — drop it
        return result

    def _learn(self, learned: list[int], lbd: int) -> None:
        if len(learned) == 1:
            enqueued = self._enqueue(learned[0], -1)
            assert enqueued
            return
        index = self._attach(learned, lbd=max(lbd, 1))
        enqueued = self._enqueue(learned[0], index)
        assert enqueued

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        assign = self._assign
        litval = self._litval
        reasons = self._reason
        for lit in reversed(self._trail[boundary:]):
            var = lit if lit > 0 else -lit
            assign[var] = self._UNASSIGNED
            litval[2 * var] = 0
            litval[2 * var + 1] = 0
            reasons[var] = -1
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    def _pick_branch(self) -> int:
        """The highest-activity unassigned variable (linear scan; lowest
        index wins ties).  A scan beats a heap here: our instances have
        at most a few thousand variables and backtracking is frequent,
        so heap maintenance (a push per unassigned literal) costs more
        than one flat pass over two parallel arrays per decision."""
        best_var = 0
        best_activity = -1.0
        assign = self._assign
        activity = self._activity
        for v in range(1, self._num_vars + 1):
            if assign[v] == 0 and activity[v] > best_activity:
                best_activity = activity[v]
                best_var = v
        if best_var == 0:
            return 0
        return best_var if self._phase[best_var] else -best_var

    def _bump(self, var: int) -> None:
        activity = self._activity
        activity[var] += self._var_inc
        if activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay

    # ------------------------------------------------------------------
    # learned-clause database reduction
    # ------------------------------------------------------------------
    def _reduce_db(self, base_level: int) -> None:
        """Drop the worst half of the learned clauses and compact.

        Must be called at the assumption base level, where the only
        locked clauses (reasons of trail literals) are root-implied.
        Keeps glue clauses (LBD <= ``reduce_keep_lbd``), binary clauses
        and locked clauses; among the rest, drops the half with the
        highest ``(lbd, -stamp)`` — worst LBD first, oldest first on
        ties.
        """
        assert self._decision_level() <= base_level
        self._next_reduce = self._conflicts + self._reduce_interval
        lbds = self._clause_lbd
        lens = self._clause_len
        stamps = self._clause_stamp
        locked = {
            self._reason[abs(lit)] for lit in self._trail
            if self._reason[abs(lit)] != -1
        }
        candidates = [
            ci for ci in range(self._num_clauses)
            if lens[ci] > 0 and lbds[ci] > self._reduce_keep_lbd
            and lens[ci] > 2 and ci not in locked
        ]
        if len(candidates) < 16:
            return
        candidates.sort(key=lambda ci: (lbds[ci], -stamps[ci]),
                        reverse=True)
        drop = set(candidates[:len(candidates) // 2])
        if not drop:
            return
        self._reductions += 1
        obs.inc("sat.reductions")
        self._compact(drop)

    def _compact(self, drop: set[int]) -> None:
        """Rebuild the arena without the dropped clauses, remapping every
        clause index in watch lists and the reason column."""
        arena = self._arena
        starts = self._clause_start
        lens = self._clause_len
        new_arena: list[int] = []
        new_start: list[int] = []
        new_len: list[int] = []
        new_lbd = array("i")
        new_stamp = array("q")
        remap: dict[int, int] = {}
        for ci in range(self._num_clauses):
            if ci in drop or lens[ci] == 0:
                continue
            remap[ci] = len(new_len)
            new_start.append(len(new_arena))
            start = starts[ci]
            new_arena.extend(arena[start:start + lens[ci]])
            new_len.append(lens[ci])
            new_lbd.append(self._clause_lbd[ci])
            new_stamp.append(self._clause_stamp[ci])
        self._arena = new_arena
        self._clause_start = new_start
        self._clause_len = new_len
        self._clause_lbd = new_lbd
        self._clause_stamp = new_stamp
        self._num_clauses = len(new_len)
        self._deleted = 0
        for li in range(len(self._watches)):
            old_list = self._watches[li]
            compacted: list[int] = []
            for j in range(0, len(old_list), 2):
                new_ci = remap.get(old_list[j])
                if new_ci is not None:
                    compacted.append(new_ci)
                    compacted.append(old_list[j + 1])
            self._watches[li] = compacted
        reasons = self._reason
        for var in range(1, self._num_vars + 1):
            if reasons[var] != -1:
                reasons[var] = remap[reasons[var]]
