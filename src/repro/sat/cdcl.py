"""A CDCL SAT solver (conflict-driven clause learning).

The propositional engine behind the lazy SMT solver of :mod:`repro.smt`.
Features the standard modern architecture:

* two-watched-literal clause indexing,
* first-UIP conflict analysis with learned-clause minimization,
* VSIDS-style exponential variable activities with phase saving,
* Luby-sequence restarts,
* incremental use: clauses may be added between ``solve()`` calls (the
  SMT layer adds theory-blocking clauses this way).

Literal encoding: variables are positive integers ``1..n``; a literal is
``+v`` or ``-v``.  Internally literals map to indices ``2v`` / ``2v+1``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .. import obs
from .. import limits as _limits


def _lit_index(lit: int) -> int:
    """Map a signed literal to a dense array index."""
    return 2 * lit if lit > 0 else -2 * lit + 1


def _index_lit(index: int) -> int:
    return index // 2 if index % 2 == 0 else -(index // 2)


def luby(x: int) -> int:
    """The Luby restart sequence (0-based): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    """An incremental CDCL SAT solver."""

    _UNASSIGNED = 0
    _TRUE = 1
    _FALSE = -1

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: list[list[int]] = []
        self._watches: list[list[int]] = [[], []]  # indexed by literal index
        self._assign: list[int] = [0]              # per variable, 1-based
        self._level: list[int] = [0]
        self._reason: list[int] = [-1]             # clause index or -1
        self._phase: list[bool] = [False]
        self._activity: list[float] = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._queue_head = 0
        self._ok = True
        self._conflicts = 0
        self._restarts = 0

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self._num_vars += 1
        self._assign.append(self._UNASSIGNED)
        self._level.append(0)
        self._reason.append(-1)
        self._phase.append(False)
        self._activity.append(0.0)
        self._watches.append([])
        self._watches.append([])
        return self._num_vars

    def ensure_vars(self, n: int) -> None:
        while self._num_vars < n:
            self.new_var()

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Attached (non-unit) clauses, including learned ones."""
        return len(self._clauses)

    @property
    def num_conflicts(self) -> int:
        """Total conflicts across every ``solve()`` call."""
        return self._conflicts

    @property
    def num_restarts(self) -> int:
        """Total Luby restarts across every ``solve()`` call."""
        return self._restarts

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat.

        May be called between ``solve()`` invocations; the solver first
        backtracks to the root level.
        """
        if not self._ok:
            return False
        self._backtrack(0)
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0 or abs(lit) > self._num_vars:
                raise ValueError(f"literal {lit} out of range")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = self._value(lit)
            if value == self._TRUE and self._level[abs(lit)] == 0:
                return True  # already satisfied at root
            if value == self._FALSE and self._level[abs(lit)] == 0:
                continue     # falsified at root: drop the literal
            seen.add(lit)
            clause.append(lit)

        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], -1):
                self._ok = False
                return False
            self._ok = self._propagate() == -1
            return self._ok
        self._attach(clause)
        return True

    def _attach(self, clause: list[int]) -> int:
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches[_lit_index(-clause[0])].append(index)
        self._watches[_lit_index(-clause[1])].append(index)
        return index

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> bool:
        """Decide satisfiability under optional assumptions."""
        if not obs.is_enabled():
            return self._solve(assumptions)
        before_conflicts = self._conflicts
        before_restarts = self._restarts
        try:
            return self._solve(assumptions)
        finally:
            obs.inc("sat.solves")
            obs.inc("sat.conflicts", self._conflicts - before_conflicts)
            obs.inc("sat.restarts", self._restarts - before_restarts)

    def _solve(self, assumptions: Sequence[int] = ()) -> bool:
        if not self._ok:
            return False
        self._backtrack(0)
        if self._propagate() != -1:
            self._ok = False
            return False

        restarts = 0
        budget = 64 * luby(restarts)
        conflicts_here = 0

        # assumption handling: decide assumption literals first
        while True:
            _limits.tick("sat")
            conflict = self._propagate()
            if conflict != -1:
                self._conflicts += 1
                conflicts_here += 1
                if self._decision_level() == 0:
                    self._ok = False
                    return False
                if self._decision_level() <= len(assumptions):
                    # conflict depends only on assumptions
                    return False
                learned, backjump = self._analyze(conflict)
                self._backtrack(max(backjump, len(assumptions)))
                self._learn(learned)
                self._decay_activities()
                if conflicts_here >= budget:
                    restarts += 1
                    self._restarts += 1
                    budget = 64 * luby(restarts)
                    conflicts_here = 0
                    self._backtrack(len(assumptions))
                continue

            # pick the next assumption that is not yet satisfied
            level = self._decision_level()
            if level < len(assumptions):
                lit = assumptions[level]
                value = self._value(lit)
                if value == self._TRUE:
                    # already implied: introduce a dummy level to keep the
                    # level <-> assumption correspondence simple
                    self._trail_lim.append(len(self._trail))
                    continue
                if value == self._FALSE:
                    return False
                self._decide(lit)
                continue

            lit = self._pick_branch()
            if lit == 0:
                return True  # full assignment found
            self._decide(lit)

    def model(self) -> dict[int, bool]:
        """The satisfying assignment found by the last ``solve()``."""
        return {
            v: self._assign[v] == self._TRUE
            for v in range(1, self._num_vars + 1)
            if self._assign[v] != self._UNASSIGNED
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _decide(self, lit: int) -> None:
        self._trail_lim.append(len(self._trail))
        enqueued = self._enqueue(lit, -1)
        assert enqueued

    def _enqueue(self, lit: int, reason: int) -> bool:
        value = self._value(lit)
        if value == self._FALSE:
            return False
        if value == self._TRUE:
            return True
        var = abs(lit)
        self._assign[var] = self._TRUE if lit > 0 else self._FALSE
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause index or -1."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            watch_list = self._watches[_lit_index(lit)]
            new_list: list[int] = []
            conflict = -1
            for position, clause_index in enumerate(watch_list):
                clause = self._clauses[clause_index]
                # ensure the falsified literal is in slot 1
                if clause[0] == -lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == self._TRUE:
                    new_list.append(clause_index)
                    continue
                # search for a replacement watch
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != self._FALSE:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[_lit_index(-clause[1])].append(
                            clause_index
                        )
                        break
                else:
                    new_list.append(clause_index)
                    if not self._enqueue(first, clause_index):
                        conflict = clause_index
                        new_list.extend(watch_list[position + 1:])
                        break
            self._watches[_lit_index(lit)] = new_list
            if conflict != -1:
                self._queue_head = len(self._trail)
                return conflict
        return -1

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learned clause, backjump)."""
        learned: list[int] = [0]  # slot 0 reserved for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        lit = 0
        index = len(self._trail) - 1
        clause = self._clauses[conflict]
        current_level = self._decision_level()

        while True:
            for q in clause:
                if q == lit:
                    continue
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            # find the next seen literal on the trail
            while not seen[abs(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            index -= 1
            var = abs(p)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learned[0] = -p
                break
            clause = self._clauses[self._reason[var]]
            lit = p

        # clause minimization: drop literals implied by the rest
        learned = self._minimize(learned, seen)

        if len(learned) == 1:
            return learned, 0
        # backjump to the second-highest level in the clause
        levels = sorted(
            (self._level[abs(q)] for q in learned[1:]), reverse=True
        )
        backjump = levels[0]
        # move a literal of that level into slot 1 for watching
        for k in range(1, len(learned)):
            if self._level[abs(learned[k])] == backjump:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, backjump

    def _minimize(self, learned: list[int], seen: list[bool]) -> list[int]:
        """Cheap recursive minimization of the learned clause."""
        marked = set(abs(q) for q in learned)
        result = [learned[0]]
        for q in learned[1:]:
            reason = self._reason[abs(q)]
            if reason == -1:
                result.append(q)
                continue
            if all(
                abs(r) in marked or self._level[abs(r)] == 0
                for r in self._clauses[reason]
                if r != -q
            ):
                continue  # q is implied by other clause literals
            result.append(q)
        return result

    def _learn(self, learned: list[int]) -> None:
        if len(learned) == 1:
            enqueued = self._enqueue(learned[0], -1)
            assert enqueued
            return
        index = self._attach(learned)
        enqueued = self._enqueue(learned[0], index)
        assert enqueued

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        boundary = self._trail_lim[level]
        for lit in reversed(self._trail[boundary:]):
            var = abs(lit)
            self._assign[var] = self._UNASSIGNED
            self._reason[var] = -1
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    def _pick_branch(self) -> int:
        best_var = 0
        best_activity = -1.0
        for v in range(1, self._num_vars + 1):
            if self._assign[v] == self._UNASSIGNED:
                if self._activity[v] > best_activity:
                    best_activity = self._activity[v]
                    best_var = v
        if best_var == 0:
            return 0
        return best_var if self._phase[best_var] else -best_var

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self._num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay
