"""Job bookkeeping for the triage daemon: registry, queue, coalescing.

A *job* is one triage computation in flight (or retained after
completion).  The registry is the daemon's only mutable shared state,
so everything here is guarded by a single lock and exposes plain-data
snapshots only — HTTP handler threads and worker threads never share a
live object without going through it.

Coalescing.  Every submission carries a content key (a dg1 digest of
everything its verdict is a pure function of — see
:meth:`repro.serve.service.TriageService._job_key`).  Submitting a key
that is already queued or running does not create a second job: the
new client *joins* the existing one and both read the same envelope
when it completes (``serve.coalesced`` counts the joins).  Submitting
a key whose retained job finished with a clean, cacheable verdict is
answered inline from that envelope (``serve.inline_hits``).

Admission.  The registry enforces ``max_inflight``: distinct jobs
queued-or-running are capped, and :meth:`JobRegistry.submit` refuses
new *work* past the cap (:class:`AdmissionError` → HTTP 429).
Coalesced joins are admitted even at the cap — they add no work.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from .. import obs

__all__ = ["AdmissionError", "Job", "JobRegistry"]

#: Job lifecycle states, in order.
QUEUED, RUNNING, DONE = "queued", "running", "done"


class AdmissionError(RuntimeError):
    """The daemon is at ``max_inflight`` distinct jobs.

    ``retry_after`` is the suggested client backoff in seconds, sized
    from the recent per-job wall time and the queue depth.
    """

    def __init__(self, inflight: int, limit: int, retry_after: float):
        self.inflight = inflight
        self.limit = limit
        self.retry_after = retry_after
        super().__init__(
            f"{inflight} jobs in flight (limit {limit}); "
            f"retry in {retry_after:g}s"
        )


@dataclass
class Job:
    """One triage computation and its lifecycle."""

    id: str
    key: str                       # coalescing digest
    name: str                      # display name (benchmark or program)
    kind: str                      # 'benchmark' | 'source'
    request: dict                  # the validated submission payload
    status: str = QUEUED
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    waiters: int = 1               # clients attached (1 + coalesced)
    events_marker: int = 0         # obs span sequence at run start
    result: dict | None = None     # the repro.result/2 envelope
    exit_code: int | None = None   # the schema.py status contract
    events: tuple = ()             # obs span events of the run
    provenance: tuple = ()         # derivation nodes (explain requests)
    error: str | None = None       # submission-independent failure
    trace: dict | None = None      # TraceContext of the first submitter
    joined_traces: tuple = ()      # trace ids of coalesced joiners

    @property
    def trace_id(self) -> str | None:
        return self.trace.get("trace_id") if self.trace else None

    def to_dict(self) -> dict:
        """Plain-data job status (the ``GET /v1/jobs/<id>`` body,
        minus the live-event tail the service appends)."""
        payload: dict = {
            "job_id": self.id,
            "name": self.name,
            "kind": self.kind,
            "status": self.status,
            "key": self.key,
            "waiters": self.waiters,
            "created": self.created,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.joined_traces:
            payload["joined_traces"] = list(self.joined_traces)
        if self.started is not None:
            payload["started"] = self.started
        if self.finished is not None:
            payload["finished"] = self.finished
        if self.exit_code is not None:
            payload["exit_code"] = self.exit_code
        if self.error is not None:
            payload["error"] = self.error
        if self.result is not None:
            payload["result"] = self.result
        return payload


class JobRegistry:
    """Thread-safe job table with coalescing and bounded retention."""

    def __init__(self, *, max_inflight: int = 8, retain: int = 1024):
        self.max_inflight = max_inflight
        self.retain = retain
        self._lock = threading.Lock()
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._inflight: dict[str, str] = {}   # key -> job id
        self._ids = itertools.count(1)
        # rolling mean of completed-job wall seconds, for Retry-After
        self._done_count = 0
        self._done_seconds = 0.0

    # ------------------------------------------------------------------
    def submit(self, key: str, *, name: str, kind: str,
               request: dict,
               reusable: Callable[[Job], bool] | None = None,
               trace: dict | None = None
               ) -> tuple[Job, bool, bool]:
        """Register one submission under ``key``.

        Returns ``(job, coalesced, inline)``:

        * an in-flight job with the same key → that job, ``coalesced``
          True (the submission attaches as one more waiter);
        * a retained finished job with the same key that ``reusable``
          accepts → that job, ``inline`` True (serve its envelope
          directly);
        * otherwise a fresh queued job — unless the registry is at
          ``max_inflight``, which raises :class:`AdmissionError`.

        ``trace`` is the submitting request's
        :class:`~repro.obs.context.TraceContext` as plain data.  A
        fresh job owns it outright; a coalesced join records its trace
        id in ``joined_traces`` so the shared run stays findable under
        every requester's id.
        """
        with self._lock:
            trace_id = trace.get("trace_id") if trace else None
            active_id = self._inflight.get(key)
            if active_id is not None:
                job = self._jobs[active_id]
                job.waiters += 1
                if trace_id is not None and trace_id != job.trace_id:
                    job.joined_traces = job.joined_traces + (trace_id,)
                obs.inc("serve.coalesced")
                return job, True, False
            finished = self._latest_done(key)
            if finished is not None and (reusable is None
                                         or reusable(finished)):
                obs.inc("serve.inline_hits")
                return finished, False, True
            if len(self._inflight) >= self.max_inflight:
                obs.inc("serve.rejected")
                raise AdmissionError(
                    len(self._inflight), self.max_inflight,
                    self._retry_after_locked(),
                )
            job = Job(
                id=f"j{next(self._ids):06d}",
                key=key, name=name, kind=kind, request=request,
                trace=trace,
            )
            self._jobs[job.id] = job
            self._inflight[key] = job.id
            obs.inc("serve.submitted")
            return job, False, False

    def _latest_done(self, key: str) -> Job | None:
        for job in reversed(self._jobs.values()):
            if job.key == key and job.status == DONE:
                return job
        return None

    def _retry_after_locked(self) -> float:
        mean = (self._done_seconds / self._done_count
                if self._done_count else 1.0)
        return round(max(1.0, mean * max(1, len(self._inflight))), 1)

    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def mark_running(self, job_id: str, events_marker: int) -> Job | None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.status = RUNNING
            job.started = time.time()
            job.events_marker = events_marker
            return job

    def finish(self, job_id: str, *, result: dict | None,
               exit_code: int | None, events: tuple = (),
               provenance: tuple = (), error: str | None = None) -> None:
        """Settle a job: record its envelope, free its key, trim."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return
            job.status = DONE
            job.finished = time.time()
            job.result = result
            job.exit_code = exit_code
            job.events = events
            job.provenance = provenance
            job.error = error
            if job.started is not None:
                self._done_count += 1
                self._done_seconds += job.finished - job.started
            if self._inflight.get(job.key) == job.id:
                del self._inflight[job.key]
            obs.inc("serve.jobs_completed")
            self._trim_locked()

    def _trim_locked(self) -> None:
        """Drop the oldest finished jobs past the retention bound."""
        excess = len(self._jobs) - self.retain
        if excess <= 0:
            return
        for job_id in [jid for jid, j in self._jobs.items()
                       if j.status == DONE][:excess]:
            del self._jobs[job_id]

    # ------------------------------------------------------------------
    def inflight(self) -> int:
        """Distinct jobs queued or running."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> dict:
        with self._lock:
            by_status = {QUEUED: 0, RUNNING: 0, DONE: 0}
            for job in self._jobs.values():
                by_status[job.status] += 1
            return {
                "inflight": len(self._inflight),
                "max_inflight": self.max_inflight,
                "retained": len(self._jobs),
                **by_status,
            }
