"""Triage-as-a-service: the ``repro serve`` daemon.

The ROADMAP's north star is serving the paper's interactive pitch — "is
this error report a real bug or a missing precondition?" — at
production scale.  PRs 1–6 built the ingredients (Pipeline facade, the
``repro.result/2`` envelope, Limits admission control, the
content-addressed CacheStore, the Prometheus exporter); this package
wires them behind a long-running stdlib-only HTTP/JSON daemon:

* :mod:`repro.serve.jobs` — the job registry: coalescing (identical
  in-flight submissions share one computation), bounded retention,
  ``max_inflight`` admission;
* :mod:`repro.serve.service` — the transport-independent core: a work
  queue feeding the existing batch driver, per-request Limits clamped
  to the server-wide budget, the persistent store for cache-hit
  inline answers and cross-source ``(I, phi)`` sharing;
* :mod:`repro.serve.http` — the ThreadingHTTPServer adapter with the
  ``/v1/triage`` / ``/v1/jobs`` / ``/healthz`` / ``/metrics``
  endpoint surface.

Start it from the CLI (``python -m repro serve --port 8184
--cache-dir .repro-cache``) or embed it::

    from repro.serve import TriageServer

    server = TriageServer(port=0, cache_dir=".repro-cache")
    server.start()
    ...  # POST to f"{server.url}/v1/triage"
    server.shutdown()
"""

from .http import TriageServer, run
from .jobs import AdmissionError, Job, JobRegistry
from .service import BadRequest, TriageService

__all__ = [
    "AdmissionError",
    "BadRequest",
    "Job",
    "JobRegistry",
    "TriageServer",
    "TriageService",
    "run",
]
