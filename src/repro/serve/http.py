"""The HTTP/JSON transport for the triage daemon — stdlib only.

A :class:`ThreadingHTTPServer` whose handler is a thin adapter over
:class:`~repro.serve.service.TriageService`: it parses the request,
calls one service method, and writes the JSON reply.  No framework, no
hard dependencies — matching the package's numpy-optional posture.

Endpoint table (full request/response examples in ``docs/API.md``):

========================  ====================================================
``POST /v1/triage``       submit ``{"source": ...}`` or ``{"benchmark": ...}``
                          (+ optional ``limits``, ``explain``, ``repair``);
                          200 with the finished ``repro.result/3`` envelope
                          on a cache hit, 202 with a job handle otherwise,
                          400 for malformed submissions, 429 +
                          ``Retry-After`` past ``max_inflight``
``GET /v1/jobs/<id>``     status + progress events (``?since=N`` resumes);
                          finished jobs map through the shared status
                          contract (200 verdicts, 503 degraded)
``GET /v1/jobs/<id>/explain``  provenance derivation tree as JSON
``GET /v1/jobs/<id>/patches``  ranked verified patches of a ``repair: true``
                          job (409 while running, 404 when none recorded)
``GET /healthz``          liveness + queue stats
``GET /v1/statusz``       live SLOs: per-route latency windows, error
                          rate, queue depth, coalesce rate
``GET /metrics``          Prometheus text (obs exporter + route SLOs +
                          recent-trace info labels)
``GET /debug/traces/<trace_id>``  flight-recorder entry of a completed
                          trace, with its structured log lines
========================  ====================================================

Every request is timed and recorded against a normalized route label
(``/v1/jobs/:id``, not the literal id) in the service's
:class:`~repro.serve.service.RouteStats`, and emits one
``serve.access`` structured log line.  A W3C ``traceparent`` request
header on ``POST /v1/triage`` is adopted as the submission's trace
context; the response's ``trace_id`` echoes it.  SIGUSR1 dumps the
flight recorder to ``REPRO_TRACE_DUMP`` (default
``repro-traces.jsonl``) without stopping the daemon.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..obs import context as ocontext
from .jobs import AdmissionError
from .service import BadRequest, TriageService

__all__ = ["TriageServer", "run"]

#: Request body cap; submissions past it get 413 without being read.
MAX_BODY_BYTES = 4 << 20


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the server's :class:`TriageService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # per-request accounting, (re)set by _timed before dispatch
    _status = 0
    _route = ""
    _trace_id: str | None = None

    # the service is attached to the server object by TriageServer
    @property
    def service(self) -> TriageService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._timed("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._timed("POST", self._route_post)

    def _timed(self, method: str, dispatch) -> None:
        """Dispatch one request, then record its SLO sample and emit
        the ``serve.access`` structured log line."""
        start = time.perf_counter()
        self._status = 0
        self._route = urlsplit(self.path).path
        self._trace_id = None
        try:
            dispatch()
        finally:
            self.service.observe_request(
                method, self._route, self._status,
                time.perf_counter() - start,
                trace_id=self._trace_id,
            )

    def _route_get(self) -> None:
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        if parts.path == "/healthz":
            self._reply(*self.service.health())
        elif parts.path == "/v1/statusz":
            self._reply(*self.service.statusz())
        elif parts.path == "/metrics":
            self._reply_text(200, self.service.metrics_text(),
                             content_type="text/plain; version=0.0.4")
        elif len(segments) == 3 and segments[:2] == ["debug", "traces"]:
            self._route = "/debug/traces/:id"
            self._trace_id = segments[2]
            self._reply(*self.service.debug_trace(segments[2]))
        elif len(segments) == 3 and segments[:2] == ["v1", "jobs"]:
            self._route = "/v1/jobs/:id"
            query = parse_qs(parts.query)
            try:
                since = int(query.get("since", ["0"])[0])
            except ValueError:
                self._reply(400, {"error": "'since' must be an integer"})
                return
            job = self.service.registry.get(segments[2])
            if job is not None:
                self._trace_id = job.trace_id
            self._reply(*self.service.job_status(segments[2],
                                                 since=since))
        elif len(segments) == 4 and segments[:2] == ["v1", "jobs"] \
                and segments[3] == "explain":
            self._route = "/v1/jobs/:id/explain"
            self._reply(*self.service.explain(segments[2]))
        elif len(segments) == 4 and segments[:2] == ["v1", "jobs"] \
                and segments[3] == "patches":
            self._route = "/v1/jobs/:id/patches"
            self._reply(*self.service.patches(segments[2]))
        else:
            self._reply(404, {"error": f"no route {parts.path!r}"})

    def _route_post(self) -> None:
        if urlsplit(self.path).path != "/v1/triage":
            self._reply(404, {"error": f"no route {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._reply(411, {"error": "bad Content-Length"})
            return
        if length > MAX_BODY_BYTES:
            self._reply(413, {"error": "request body too large"})
            return
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, UnicodeDecodeError):
            self._reply(400, {"error": "request body is not JSON"})
            return
        # an upstream proxy's traceparent header becomes this
        # submission's identity; otherwise the service mints one
        trace = ocontext.from_traceparent(
            self.headers.get("traceparent"))
        try:
            status, body = self.service.submit(payload, trace=trace)
        except BadRequest as exc:
            self._reply(400, {"error": str(exc)})
            return
        except AdmissionError as exc:
            self._reply(429, {
                "error": str(exc),
                "inflight": exc.inflight,
                "max_inflight": exc.limit,
                "retry_after": exc.retry_after,
            }, headers={"Retry-After": f"{exc.retry_after:g}"})
            return
        self._trace_id = body.get("trace_id")
        self._reply(status, body)

    # ------------------------------------------------------------------
    def _reply(self, status: int, body: dict,
               headers: dict[str, str] | None = None) -> None:
        self._reply_text(status,
                         json.dumps(body, default=str) + "\n",
                         content_type="application/json",
                         headers=headers)

    def _reply_text(self, status: int, text: str, *,
                    content_type: str,
                    headers: dict[str, str] | None = None) -> None:
        self._status = status
        data = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass
        obs.inc(f"serve.http.{status // 100}xx")

    def log_message(self, fmt: str, *args) -> None:
        """Route access logs through obs instead of stderr noise."""
        obs.inc("serve.http.requests")


class TriageServer:
    """The daemon: one :class:`TriageService` behind a threading HTTP
    server.  ``port=0`` binds an ephemeral port (read ``.port`` after
    construction — the CLI prints it so smoke harnesses can scrape
    it)."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 8184,
                 **service_kwargs):
        self.service = TriageService(**service_kwargs)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start workers + acceptor thread; returns immediately."""
        self.service.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http",
            kwargs={"poll_interval": 0.1}, daemon=True,
        )
        self._serve_thread.start()

    def shutdown(self, timeout: float = 3.0) -> None:
        """Stop accepting, stop the workers, settle queued jobs.

        Bounded: the whole teardown completes within ``timeout`` plus
        the acceptor's poll interval, so a SIGTERM lands well inside
        the 5 s the CI smoke job allows."""
        self._httpd.shutdown()
        self.service.stop(timeout=timeout)
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(1.0)
            self._serve_thread = None

    def serve_forever(self) -> int:
        """Run until SIGTERM/SIGINT; the CLI entry point.

        SIGUSR1 (where available) dumps the flight recorder to
        ``REPRO_TRACE_DUMP`` (default ``repro-traces.jsonl``) without
        interrupting service — the live post-mortem hook.
        """
        stop = threading.Event()

        def _signalled(signum, frame):  # noqa: ARG001
            stop.set()

        def _dump_traces(signum, frame):  # noqa: ARG001
            path = os.environ.get("REPRO_TRACE_DUMP",
                                  "repro-traces.jsonl")
            try:
                count = self.service.dump_traces(path)
            except OSError as exc:
                print(f"repro serve: trace dump failed: {exc}",
                      file=sys.stderr, flush=True)
                return
            print(f"repro serve: dumped {count} trace(s) to {path}",
                  file=sys.stderr, flush=True)

        previous = {}
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _signalled)
        if hasattr(signal, "SIGUSR1"):
            previous[signal.SIGUSR1] = signal.signal(
                signal.SIGUSR1, _dump_traces)
        self.start()
        print(f"repro serve: listening on {self.url}",
              file=sys.stderr, flush=True)
        try:
            stop.wait()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.shutdown()
            print("repro serve: shut down cleanly",
                  file=sys.stderr, flush=True)
        return 0


def run(*, host: str = "127.0.0.1", port: int = 8184,
        **service_kwargs) -> int:
    """Construct a :class:`TriageServer` and block until signalled."""
    server = TriageServer(host=host, port=port, **service_kwargs)
    return server.serve_forever()
