"""The triage service: submissions, workers, status — no HTTP in sight.

:class:`TriageService` is the transport-independent core of ``repro
serve``.  It owns a :class:`~repro.serve.jobs.JobRegistry`, a work
queue, and a small pool of worker threads feeding the existing batch
driver; the HTTP layer (:mod:`repro.serve.http`) is a thin adapter
over its methods (``submit`` / ``job_status`` / ``explain`` /
``patches`` / ``health`` / ``statusz`` / ``debug_trace`` /
``metrics_text``), which makes the whole service unit-testable without
sockets.

Every submission is one *trace*: ``submit`` adopts the transport's
:class:`~repro.obs.context.TraceContext` (or mints one), the run
executes bound to it (spans, provenance, logs, and the batch driver's
forked workers all inherit it), the result envelope carries it as
``trace_id``, and the completed run lands in a bounded
:class:`FlightRecorder` queryable by that id (``GET
/debug/traces/<trace_id>``, SIGUSR1 JSONL dump).  :class:`RouteStats`
keeps the sliding-window per-route latency/error SLOs behind
``/v1/statusz`` and /metrics.

Two submission kinds share one pipeline:

* ``{"benchmark": NAME}`` — or a raw ``{"source": ...}`` whose text is
  byte-identical to a Figure 7 program — runs the exact batch-driver
  path (`triage_with_retries`): ground-truth oracle, retry/quarantine
  policy, persistent store, incremental short-circuit.  Verdicts are
  therefore identical to ``Pipeline.triage``'s.
* ``{"source": ...}`` for unknown programs runs analyze → (if
  undecided) the Figure 6 loop under a :class:`SamplingOracle` — the
  paper's auto-answering future-work mode — and returns the
  ``analysis`` or ``diagnosis`` envelope.

Either kind may add ``"repair": true`` to run :meth:`Pipeline.repair`
instead: triage followed by abductive patch synthesis
(:mod:`repro.repair`), returning the ``repair`` envelope whose ranked
patch list is also served at ``GET /v1/jobs/<id>/patches``.  Repair
jobs coalesce separately from plain triage (the mode is folded into
the job key) and their exit code follows the repair contract: a false
alarm with no surviving patch is a failure, not a success.

Coalescing is two-level, both keyed by dg1 content digests: identical
submissions in flight join one job (`serve.coalesced`), and distinct
sources whose ``(I, phi)`` judgment digests match share work through
the content-addressed store exactly as incremental re-triage does —
the second submission's job resolves to the recorded verdict without
recomputing (see :mod:`repro.batch`).

Admission control derives per-request :class:`~repro.limits.Limits`
from the server-wide defaults: a request may *tighten* the governing
deadline/budgets but never exceed the server's, and distinct jobs
beyond ``max_inflight`` are refused with a Retry-After hint.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from collections import OrderedDict, deque
from typing import Any

from contextlib import nullcontext

from .. import obs
from ..batch.driver import triage_with_retries
from ..batch.outcomes import _report_key
from ..cache import open_store, use_store_here
from ..diagnosis import EngineConfig, SamplingOracle, diagnose_error
from ..diagnosis.stages import STAGE_VERSION, config_fingerprint
from ..limits import Limits, ResourceExhausted
from ..lang import parse_program
from ..logic.digest import digest_many, digest_text
from ..obs import context as ocontext
from ..obs import logging as olog
from ..obs import provenance as prov
from ..obs.core import percentile
from ..schema import (
    EXIT_DEGRADED,
    SCHEMA_VERSION,
    TriageVerdict,
    exit_code,
)
from ..suite import BENCHMARKS, DIAGNOSTICS, benchmark_by_name, load_source

__all__ = ["BadRequest", "FlightRecorder", "RouteStats", "TriageService"]

#: Submission body size cap (the largest Figure 7 source is ~3 KiB).
MAX_SOURCE_BYTES = 1 << 20

#: Schema of a flight-recorder JSONL dump (SIGUSR1 / ``dump_traces``).
FLIGHT_SCHEMA = "repro.flight/1"

#: How many completed traces the flight recorder retains by default.
FLIGHT_CAPACITY = 256

#: Sliding window for the per-route SLO rollups, in seconds.
SLO_WINDOW_S = 300.0


class RouteStats:
    """Per-route sliding-window SLOs: latency quantiles + error rate.

    One bounded deque of ``(ts, dur_s, status)`` per route; reads evict
    entries older than the window, so /metrics and /v1/statusz report
    the *live* service, not its lifetime average.  Small and lock-
    guarded: the handler threads record, the scraper thread reads.
    """

    def __init__(self, *, window_s: float = SLO_WINDOW_S,
                 max_samples: int = 4_096):
        self._window = window_s
        self._lock = threading.Lock()
        self._routes: dict[str, deque] = {}
        self._max = max_samples

    def observe(self, route: str, status: int, dur_s: float) -> None:
        with self._lock:
            samples = self._routes.get(route)
            if samples is None:
                samples = self._routes[route] = deque(maxlen=self._max)
            samples.append((time.monotonic(), dur_s, status))

    def summary(self) -> dict[str, dict]:
        """``{route: {count, error_rate, p50_s, p95_s, p99_s, ...}}``
        over the window (empty routes are omitted)."""
        cutoff = time.monotonic() - self._window
        out: dict[str, dict] = {}
        with self._lock:
            for route, samples in self._routes.items():
                while samples and samples[0][0] < cutoff:
                    samples.popleft()
                if not samples:
                    continue
                durs = [s[1] for s in samples]
                errors = sum(1 for s in samples if s[2] >= 500)
                out[route] = {
                    "count": len(samples),
                    "error_rate": errors / len(samples),
                    "p50_s": percentile(durs, 0.50),
                    "p95_s": percentile(durs, 0.95),
                    "p99_s": percentile(durs, 0.99),
                    "max_s": max(durs),
                    "window_s": self._window,
                }
        return out


class FlightRecorder:
    """A bounded ring of the most recently completed traces.

    Keyed by trace id; coalesced joiners' ids alias to the shared
    entry, so every requester's trace id resolves.  ``dump`` writes the
    ring as a ``repro.flight/1`` JSONL stream (header line first) —
    the SIGUSR1 post-mortem artifact.
    """

    def __init__(self, capacity: int = FLIGHT_CAPACITY):
        self.capacity = max(1, capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self._aliases: dict[str, str] = {}

    def record(self, entry: dict, aliases: tuple = ()) -> None:
        trace_id = entry.get("trace_id")
        if not trace_id:
            return
        with self._lock:
            self._entries[trace_id] = entry
            self._entries.move_to_end(trace_id)
            for alias in aliases:
                if alias and alias != trace_id:
                    self._aliases[alias] = trace_id
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._aliases = {a: t for a, t in self._aliases.items()
                                 if t != evicted}

    def get(self, trace_id: str) -> dict | None:
        with self._lock:
            resolved = self._aliases.get(trace_id, trace_id)
            entry = self._entries.get(resolved)
            return dict(entry) if entry is not None else None

    def recent(self, n: int | None = None) -> list[dict]:
        """Newest first; ``n`` caps the list."""
        with self._lock:
            entries = [dict(e) for e in reversed(self._entries.values())]
        return entries if n is None else entries[:n]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def dump(self, destination: str | os.PathLike) -> int:
        """Write the ring (oldest first) as ``repro.flight/1`` JSONL;
        returns the number of trace entries written."""
        with self._lock:
            entries = [dict(e) for e in self._entries.values()]
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"type": "header", "schema": FLIGHT_SCHEMA}) + "\n")
            for entry in entries:
                handle.write(json.dumps(
                    {"type": "flight", **entry}, default=str) + "\n")
        return len(entries)


class BadRequest(ValueError):
    """A submission the service refuses to queue (HTTP 400)."""


def _clamped_limits(base: Limits | None, requested: dict | None) -> Limits | None:
    """Per-request limits: the request may tighten the server's bounds
    but never relax them (a client cannot buy more budget than the
    operator granted)."""
    if requested is None:
        return base
    if not isinstance(requested, dict):
        raise BadRequest("'limits' must be an object")
    known = {f for f in Limits.__dataclass_fields__ if f != "token"}
    unknown = sorted(set(requested) - known)
    if unknown:
        # Limits.from_dict drops unknown keys, but a typo'd bound in an
        # admission request must not silently grant unlimited budget
        raise BadRequest(
            f"bad limits: unknown bound(s) {', '.join(unknown)}")
    try:
        asked = Limits.from_dict(requested)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"bad limits: {exc}") from None
    if base is None:
        return asked
    merged = {}
    for name in ("deadline", "max_steps", "max_nodes",
                 "qe_steps", "msa_steps", "sat_steps",
                 "smt_steps", "omega_steps"):
        ours, theirs = getattr(base, name), getattr(asked, name)
        if ours is None:
            merged[name] = theirs
        elif theirs is None:
            merged[name] = ours
        else:
            merged[name] = min(ours, theirs)
    merged["retries"] = min(base.retries, asked.retries)
    return Limits(**merged)


class TriageService:
    """The daemon's application core (transport-independent)."""

    def __init__(self, *, cache_dir: str | None = None,
                 config: EngineConfig | None = None,
                 limits: Limits | None = None,
                 max_inflight: int = 8,
                 workers: int = 1,
                 retain: int = 1024,
                 flight_capacity: int = FLIGHT_CAPACITY):
        from .jobs import JobRegistry

        self.cache_dir = cache_dir
        self.config = config or EngineConfig()
        self.limits = limits
        self.registry = JobRegistry(max_inflight=max_inflight,
                                    retain=retain)
        self.slo = RouteStats()
        self.flights = FlightRecorder(capacity=flight_capacity)
        self._queue: "queue.Queue[str | None]" = queue.Queue()
        self._workers = max(1, workers)
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._started = time.time()
        self._fingerprint = config_fingerprint(self.config)
        # byte-identical Figure 7 sources resolve to their benchmark,
        # so HTTP submissions take the exact Pipeline.triage path
        self._known_sources = {
            digest_text(load_source(b)): b.name
            for b in BENCHMARKS + DIAGNOSTICS
        }
        obs.enable()  # /metrics serves the live snapshot

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        for n in range(self._workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-{n}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout: float = 3.0) -> None:
        """Stop the workers; queued jobs settle as degraded."""
        self._stop.set()
        for _ in self._threads:
            self._queue.put(None)
        deadline = time.monotonic() + timeout
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._threads = []
        # jobs still queued will never run — fail them loudly rather
        # than leaving clients polling forever
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                break
            if job_id is not None:
                self.registry.finish(
                    job_id, result=None, exit_code=EXIT_DEGRADED,
                    error="server shut down before the job ran",
                )

    # ------------------------------------------------------------------
    # submissions
    # ------------------------------------------------------------------
    def submit(self, payload: Any, *,
               trace: ocontext.TraceContext | None = None
               ) -> tuple[int, dict]:
        """Queue (or coalesce, or answer inline) one triage request.

        Returns ``(http_status, body)``: 200 with the finished envelope
        on an inline cache hit, 202 with a job handle otherwise.
        :class:`BadRequest` and :class:`AdmissionError` escape for the
        transport to map (400 / 429).

        ``trace`` is the request's ingress context (minted fresh when
        absent — e.g. a ``traceparent`` header the transport parsed).
        The returned body always carries this request's ``trace_id``;
        coalesced joins additionally alias their id onto the shared
        job's flight-recorder entry.
        """
        ctx = trace if trace is not None else ocontext.new_trace("serve")
        request = self._validate(payload)
        key = self._job_key(request)
        job, coalesced, inline = self.registry.submit(
            key,
            name=request["name"],
            kind=request["kind"],
            request=request,
            reusable=self._reusable,
            trace=ctx.to_dict(),
        )
        if inline:
            body = dict(job.to_dict())
            body["served"] = "cache"
            body["trace_id"] = ctx.trace_id
            # the request completed without running: give its trace an
            # entry of its own, pointing at the recorded job
            self.flights.record({
                "trace_id": ctx.trace_id,
                "job_id": job.id,
                "name": job.name,
                "served": "cache",
                "verdict": (job.result or {}).get("verdict"),
                "exit_code": job.exit_code,
                "finished": time.time(),
            })
            olog.info("serve.inline", job=job.id, name=job.name,
                      trace=ctx.trace_id)
            return 200, body
        if not coalesced:
            if request["kind"] == "benchmark" \
                    and not request.get("repair") \
                    and self._recorded(request["name"]):
                # the store already holds this judgment's verdict: the
                # run short-circuits in milliseconds, so answer inline
                self._run_job(job.id)
                body = dict(self.registry.get(job.id).to_dict())
                body["served"] = "store"
                body["trace_id"] = ctx.trace_id
                return 200, body
            self._queue.put(job.id)
        body = {
            "job_id": job.id,
            "status": job.status,
            "name": job.name,
            "coalesced": coalesced,
            "location": f"/v1/jobs/{job.id}",
            "trace_id": ctx.trace_id,
        }
        olog.info("serve.submit", job=job.id, name=job.name,
                  coalesced=coalesced, trace=ctx.trace_id)
        return 202, body

    def _recorded(self, name: str) -> bool:
        """True when the persistent store can resolve this benchmark's
        source digest through the ``analyze`` artifact to a recorded
        ``triage`` verdict (the incremental re-triage chain)."""
        if self.cache_dir is None:
            return False
        store = open_store(self.cache_dir)
        bench = benchmark_by_name(name)
        source_digest = digest_text(load_source(bench))
        analyzed = store.get("analyze", digest_many(
            "analyze", STAGE_VERSION, bench.name, source_digest))
        if analyzed is None:
            return False
        report_key = _report_key(bench, self.config,
                                 analyzed["invariants"],
                                 analyzed["success"])
        return store.get("triage", report_key) is not None

    @staticmethod
    def _reusable(job) -> bool:
        """Only clean verdicts may be served inline from a retained
        job — degraded/errored envelopes depend on the run."""
        return (job.result is not None
                and job.exit_code is not None
                and job.exit_code != EXIT_DEGRADED)

    def _validate(self, payload: Any) -> dict:
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        source = payload.get("source")
        benchmark = payload.get("benchmark")
        if (source is None) == (benchmark is None):
            raise BadRequest(
                "provide exactly one of 'source' or 'benchmark'")
        repair = payload.get("repair", False)
        if not isinstance(repair, bool):
            raise BadRequest("'repair' must be a boolean")
        attempt = payload.get("attempt", 0)
        if not isinstance(attempt, int) or isinstance(attempt, bool) \
                or attempt < 0:
            raise BadRequest("'attempt' must be a non-negative integer")
        request: dict = {
            "limits": payload.get("limits"),
            "explain": bool(payload.get("explain", False)),
            "repair": repair,
            "attempt": attempt,
        }
        _clamped_limits(self.limits, request["limits"])  # validate early
        if benchmark is not None:
            if not isinstance(benchmark, str):
                raise BadRequest("'benchmark' must be a string")
            try:
                bench = benchmark_by_name(benchmark)
            except KeyError:
                raise BadRequest(
                    f"unknown benchmark {benchmark!r}") from None
            request.update(kind="benchmark", name=bench.name)
            return request
        if not isinstance(source, str):
            raise BadRequest("'source' must be a string")
        if len(source.encode()) > MAX_SOURCE_BYTES:
            raise BadRequest("source exceeds the 1 MiB submission cap")
        known = self._known_sources.get(digest_text(source))
        if known is not None:
            request.update(kind="benchmark", name=known)
            return request
        try:
            program = parse_program(source)
        except Exception as exc:  # parse errors are the client's fault
            raise BadRequest(f"source does not parse: {exc}") from None
        request.update(kind="source", name=program.name, source=source)
        return request

    def _job_key(self, request: dict) -> str:
        """The coalescing digest: everything the verdict is a pure
        function of.  Benchmarks key on their (fixed) source through
        the analysis judgment — same key as the incremental triage
        artifact chain — so identical submissions coalesce in flight
        and same-judgment sources share through the store.

        A coordinator retrying a report (``attempt > 0``, see
        :mod:`repro.sched.remote`) gets a fresh key: the retry must
        never coalesce onto the original, possibly wedged, job."""
        mode = "repair" if request.get("repair") else "triage"
        extra = ()
        if request.get("attempt"):
            extra = (f"attempt={request['attempt']}",)
        if request["kind"] == "benchmark":
            return digest_many("serve.bench", STAGE_VERSION, mode,
                               request["name"], self._fingerprint,
                               *extra)
        return digest_many("serve.adhoc", STAGE_VERSION, mode,
                           self._fingerprint,
                           digest_text(request["source"]), *extra)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def job_status(self, job_id: str, *, since: int = 0
                   ) -> tuple[int, dict]:
        """Status + progress events; 404 for unknown ids.

        For a finished job the HTTP status follows the shared contract
        (:func:`repro.schema.http_status`): verdict-bearing results are
        200, degraded results 503.  Running jobs stream the obs event
        buffer accrued since their start marker (``since`` resumes an
        earlier poll by event id).
        """
        from ..schema import http_status

        job = self.registry.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        body = job.to_dict()
        if job.status == "done":
            events = job.events
        else:
            marker = max(job.events_marker, since)
            events = tuple(e for e in obs.events()
                           if e.get("id", 0) >= marker) \
                if job.status == "running" else ()
        body["events"] = [dict(e) for e in events
                          if e.get("id", 0) >= since]
        if job.status != "done":
            return 200, body
        status = 200 if job.exit_code is None \
            else http_status(job.exit_code)
        return status, body

    def explain(self, job_id: str) -> tuple[int, dict]:
        """The derivation tree behind a finished job's verdict."""
        job = self.registry.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        if job.status != "done":
            return 409, {"error": f"job {job_id} is {job.status}; "
                                  "explain needs a finished job"}
        if not job.provenance:
            return 404, {
                "error": "no provenance recorded; submit with "
                         '{"explain": true}'}
        tree = prov.render_tree(list(job.events), list(job.provenance),
                                report=job.name)
        return 200, {
            "job_id": job.id,
            "name": job.name,
            "nodes": [dict(n) for n in job.provenance],
            "tree": tree,
        }

    def patches(self, job_id: str) -> tuple[int, dict]:
        """The ranked patch list of a finished ``repair: true`` job."""
        job = self.registry.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        if job.status != "done":
            return 409, {"error": f"job {job_id} is {job.status}; "
                                  "patches need a finished job"}
        result = job.result or {}
        if result.get("kind") != "repair":
            return 404, {
                "error": "no patches recorded; submit with "
                         '{"repair": true}'}
        return 200, {
            "job_id": job.id,
            "name": job.name,
            "verdict": result.get("verdict"),
            "already_clean": result.get("already_clean", False),
            "verified_patches": result.get("verified_patches", 0),
            "patches": list(result.get("repairs", [])),
        }

    def health(self) -> tuple[int, dict]:
        return 200, {
            "status": "ok",
            "schema": SCHEMA_VERSION,
            "uptime_seconds": round(time.time() - self._started, 3),
            **self.registry.stats(),
        }

    def statusz(self) -> tuple[int, dict]:
        """The live-SLO rollup: per-route latency/error windows, queue
        depth, coalesce rate, flight-recorder occupancy."""
        counters = obs.snapshot().get("counters", {})
        submitted = counters.get("serve.submitted", 0)
        coalesced = counters.get("serve.coalesced", 0)
        attach_total = submitted + coalesced
        return 200, {
            "status": "ok",
            "schema": SCHEMA_VERSION,
            "uptime_seconds": round(time.time() - self._started, 3),
            "queue_depth": self._queue.qsize(),
            "routes": self.slo.summary(),
            "coalesce_rate": (coalesced / attach_total
                              if attach_total else 0.0),
            "inline_hits": counters.get("serve.inline_hits", 0),
            "rejected": counters.get("serve.rejected", 0),
            "flight_recorder": {
                "capacity": self.flights.capacity,
                "recorded": len(self.flights),
            },
            "log": {
                "enabled": olog.is_enabled(),
                "slow_query_ms": olog.slow_query_ms(),
            },
            **self.registry.stats(),
        }

    def debug_trace(self, trace_id: str) -> tuple[int, dict]:
        """The flight-recorder entry for one completed trace, joined
        with that trace's structured log lines still in the ring."""
        entry = self.flights.get(trace_id)
        if entry is None:
            return 404, {"error": f"no recorded trace {trace_id!r} "
                                  "(completed traces only, bounded ring)"}
        entry["logs"] = olog.records(trace=entry.get("trace_id"))
        return 200, entry

    def dump_traces(self, destination: str | os.PathLike) -> int:
        """SIGUSR1 target: write the flight recorder as JSONL."""
        count = self.flights.dump(destination)
        olog.info("serve.flight_dump", path=str(destination),
                  traces=count)
        return count

    def observe_request(self, method: str, route: str, status: int,
                        dur_s: float, trace_id: str | None = None
                        ) -> None:
        """One finished HTTP request: SLO sample + access log line."""
        self.slo.observe(route, status, dur_s)
        obs.observe("serve.request_seconds", dur_s)
        fields: dict[str, Any] = {
            "method": method, "route": route, "status": status,
            "dur_ms": round(1000.0 * dur_s, 3),
        }
        if trace_id is not None:
            fields["trace"] = trace_id
        olog.info("serve.access", **fields)

    def metrics_text(self) -> str:
        obs.gauge("serve.inflight", float(self.registry.inflight()))
        obs.gauge("serve.queue_depth", float(self._queue.qsize()))
        lines = [obs.export_prometheus().rstrip("\n")]
        routes = self.slo.summary()
        if routes:
            lines.append("# HELP repro_route_latency_seconds Sliding-"
                         "window per-route latency quantiles.")
            lines.append("# TYPE repro_route_latency_seconds summary")
            for route in sorted(routes):
                s = routes[route]
                for q, key in (("0.5", "p50_s"), ("0.95", "p95_s"),
                               ("0.99", "p99_s")):
                    lines.append(
                        f'repro_route_latency_seconds{{route="{route}",'
                        f'quantile="{q}"}} {s[key]}')
                lines.append(
                    f'repro_route_latency_seconds_count{{route='
                    f'"{route}"}} {s["count"]}')
            lines.append("# HELP repro_route_error_ratio Error-rate "
                         "(5xx fraction) per route over the window.")
            lines.append("# TYPE repro_route_error_ratio gauge")
            for route in sorted(routes):
                lines.append(
                    f'repro_route_error_ratio{{route="{route}"}} '
                    f'{routes[route]["error_rate"]}')
        recent = self.flights.recent(32)
        if recent:
            lines.append("# HELP repro_trace_info Recently completed "
                         "traces (flight recorder; newest first).")
            lines.append("# TYPE repro_trace_info gauge")
            for entry in recent:
                trace_id = entry.get("trace_id", "")
                name = entry.get("name", "")
                lines.append(
                    f'repro_trace_info{{trace_id="{trace_id}",'
                    f'name="{name}"}} 1')
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job_id = self._queue.get()
            if job_id is None:
                return
            try:
                self._run_job(job_id)
            except Exception as exc:  # noqa: BLE001 - workers must survive
                self.registry.finish(
                    job_id, result=None, exit_code=EXIT_DEGRADED,
                    error=f"{type(exc).__name__}: {exc}",
                )

    def _run_job(self, job_id: str) -> None:
        job = self.registry.mark_running(job_id, obs.span_sequence())
        if job is None:
            return
        # the whole run executes under the submitting request's trace:
        # spans, provenance nodes, log lines and the batch driver's
        # worker processes all inherit (or are handed) this context
        ctx = ocontext.TraceContext.from_dict(job.trace)
        request = job.request
        limits = _clamped_limits(self.limits, request.get("limits"))
        explain = request.get("explain", False)
        prov_was_on = prov.is_enabled()
        if explain:
            prov.enable()
        prov_marker = prov.mark() if explain else None
        code = None
        started = time.time()
        with ocontext.bind(ctx):
            olog.info("serve.job_start", job=job_id, name=job.name,
                      kind=job.kind)
            try:
                if request.get("repair"):
                    envelope, events, code = self._run_repair(
                        request, limits)
                elif request["kind"] == "benchmark":
                    envelope, events = self._run_benchmark(
                        request["name"], limits)
                else:
                    envelope, events = self._run_source(
                        request["source"], limits)
            finally:
                if explain and not prov_was_on:
                    prov.disable()
            nodes = tuple(prov.nodes_since(prov_marker)) \
                if prov_marker is not None else ()
            if code is None:
                degraded = bool(envelope.get("degraded")) \
                    or envelope.get("error") is not None
                code = exit_code([envelope["verdict"]], degraded=degraded)
            if ctx is not None and "trace_id" not in envelope:
                envelope["trace_id"] = ctx.trace_id
            self.registry.finish(job_id, result=envelope, exit_code=code,
                                 events=events, provenance=nodes)
            finished = time.time()
            olog.info("serve.job_done", job=job_id, name=job.name,
                      verdict=envelope.get("verdict"), exit_code=code,
                      dur_ms=round(1000.0 * (finished - started), 3))
        if ctx is not None:
            done = self.registry.get(job_id)
            self.flights.record({
                "trace_id": ctx.trace_id,
                "job_id": job_id,
                "name": job.name,
                "kind": job.kind,
                "verdict": envelope.get("verdict"),
                "exit_code": code,
                "started": started,
                "finished": finished,
                "duration_s": round(finished - started, 6),
                "events": len(events),
                "provenance_nodes": len(nodes),
                "joined_traces": list(done.joined_traces) if done else [],
            }, aliases=tuple(done.joined_traces) if done else ())

    def _run_benchmark(self, name: str, limits: Limits | None
                       ) -> tuple[dict, tuple]:
        """The exact batch-driver path: ground-truth oracle, retries,
        store, incremental short-circuit — verdicts identical to
        ``Pipeline.triage``."""
        outcome = triage_with_retries(
            name, self.config, True, limits,
            cache_dir=self.cache_dir,
            incremental=self.cache_dir is not None,
            thread_scoped=True,
        )
        return outcome.to_dict(), outcome.events

    def _run_repair(self, request: dict, limits: Limits | None
                    ) -> tuple[dict, tuple, int]:
        """A ``repair: true`` submission: triage + patch synthesis via
        ``Pipeline.repair``.  The exit code follows the repair contract
        (0 = verified patch / already clean, 1 = real bug / no patch,
        3 = degraded) rather than the bare-verdict mapping — a false
        alarm without a surviving patch must not read as repaired."""
        from ..api import Pipeline

        marker = obs.span_sequence()
        target = request["name"] if request["kind"] == "benchmark" \
            else request["source"]
        pipeline = Pipeline(config=self.config, limits=limits,
                            cache_dir=self.cache_dir)
        with obs.span("serve.report"):
            result = pipeline.repair(target)
        obs.inc("serve.repair.jobs")
        obs.inc("serve.repair.patches", len(result.patches))
        obs.inc("serve.repair.verified", result.verified_count)
        if result.exit_status == EXIT_DEGRADED:
            obs.inc("serve.repair.degraded")
        events = tuple(e for e in obs.events()
                       if e.get("id", 0) >= marker)
        return result.to_dict(), events, result.exit_status

    def _run_source(self, source: str, limits: Limits | None
                    ) -> tuple[dict, tuple]:
        """Ad-hoc source: analyze, then (if undecided) the Figure 6
        loop under the auto-answering sampling oracle."""
        from ..api import InitialVerdict, Pipeline

        marker = obs.span_sequence()
        # thread-scoped: this runs on a worker thread concurrent with
        # other requests — never touch the process-global store slot
        scoped = use_store_here(open_store(self.cache_dir)) \
            if self.cache_dir is not None else nullcontext()
        pipeline = Pipeline(config=self.config)
        try:
            with obs.span("serve.report"), scoped:
                outcome = pipeline.analyze(source)
                if outcome.verdict is not InitialVerdict.UNCERTAIN:
                    envelope = outcome.to_dict()
                else:
                    oracle = SamplingOracle(outcome.program,
                                            outcome.analysis)
                    result = diagnose_error(outcome.analysis, oracle,
                                            self.config, limits=limits)
                    envelope = result.to_dict()
        except ResourceExhausted as exc:
            envelope = {
                "schema": SCHEMA_VERSION,
                "kind": "diagnosis",
                "verdict": TriageVerdict.UNKNOWN_RESOURCE.value,
                "exhausted_stage": exc.stage,
                "exhausted_kind": exc.kind,
            }
        events = tuple(e for e in obs.events()
                       if e.get("id", 0) >= marker)
        return envelope, events
