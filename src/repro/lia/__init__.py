"""Integer linear arithmetic decision procedures (the Omega test).

Decides satisfiability of *conjunctions* of linear integer literals and
produces integer models and minimal unsat cores.  Full boolean structure
is handled one level up, in :mod:`repro.smt`.
"""

from .omega import (
    BudgetExceeded,
    Model,
    OmegaSolver,
    is_sat_literals,
    solve_literals,
    unsat_core,
)

__all__ = [
    "BudgetExceeded",
    "Model",
    "OmegaSolver",
    "is_sat_literals",
    "solve_literals",
    "unsat_core",
]
