"""Selectable arithmetic backend for the Omega test's elimination steps.

The Omega solver works on *dense rows*: a constraint ``c0*x0 + ... +
c_{n-1}*x_{n-1} + const (<= 0 | = 0)`` is the list ``[c0, ..., c_{n-1},
const]`` over a fixed variable order.  The two batch kernels here are the
inner loops of inequality and equality elimination:

* :func:`shadow_rows` — the Fourier–Motzkin pair products
  ``alpha*b - beta*a (+ dark-shadow slack)`` for every lower/upper bound
  pair, emitted lower-major / upper-minor;
* :func:`substitute_rows` — Gaussian-style elimination of one column by
  an affine replacement row (``row + row[j] * repl``, column j zeroed).

Two implementations produce bit-identical rows:

* ``python`` — list arithmetic over Python's arbitrary-precision ints;
* ``numpy`` — the same products on int64 matrices.  Batches too small to
  amortize array construction (fewer than :data:`MIN_CELLS` output
  cells) and batches whose worst-case magnitude could overflow int64
  fall back to the bigint row path *per call*, so results never depend
  on the backend.

The backend is chosen once at import: numpy when importable, else
python.  Set ``REPRO_LIA_BACKEND=numpy|python|auto`` to override
(``numpy`` raises if numpy is unavailable rather than silently
degrading).  Tests may swap backends at runtime via :func:`use`.
"""

from __future__ import annotations

import os
from typing import Any

Row = list  # list[int]: coefficients then the constant in the last slot

#: Smallest output size (cells = rows x width) worth routing through
#: numpy; below this the array construction overhead dominates.  Tests
#: set this to 0 to force the numpy arithmetic on tiny systems.
MIN_CELLS = 256

#: Worst-case result magnitude must stay below this for the int64 path;
#: the margin below 2**63 - 1 keeps the pre-check simple and safe.
INT64_SAFE = 2 ** 62


# ---------------------------------------------------------------------------
# pure-Python kernels (also the bigint fallback of the numpy backend)
# ---------------------------------------------------------------------------

def _shadow_rows_py(
    lowers: list[Row], betas: list[int],
    uppers: list[Row], alphas: list[int], exact: bool,
) -> list[Row]:
    out: list[Row] = []
    for b, beta in zip(lowers, betas):
        for a, alpha in zip(uppers, alphas):
            row = [alpha * x - beta * y for x, y in zip(b, a)]
            if not exact:
                row[-1] += (alpha - 1) * (beta - 1)
            out.append(row)
    return out


def _substitute_rows_py(rows: list[Row], j: int, repl: Row) -> list[Row]:
    out: list[Row] = []
    for row in rows:
        c = row[j]
        if c == 0:
            out.append(row)
            continue
        new = [x + c * y for x, y in zip(row, repl)]
        new[j] = 0
        out.append(new)
    return out


class _PythonBackend:
    name = "python"

    shadow_rows = staticmethod(_shadow_rows_py)
    substitute_rows = staticmethod(_substitute_rows_py)


# ---------------------------------------------------------------------------
# numpy kernels
# ---------------------------------------------------------------------------

def _abs_max(rows: list[Row]) -> int:
    peak = 0
    for row in rows:
        for x in row:
            if x < 0:
                x = -x
            if x > peak:
                peak = x
    return peak


class _NumpyBackend:
    name = "numpy"

    def __init__(self, np: Any):
        self._np = np

    def shadow_rows(
        self, lowers: list[Row], betas: list[int],
        uppers: list[Row], alphas: list[int], exact: bool,
    ) -> list[Row]:
        if not lowers or not uppers:
            return []
        width = len(lowers[0])
        if len(lowers) * len(uppers) * width < MIN_CELLS:
            return _shadow_rows_py(lowers, betas, uppers, alphas, exact)
        ma, mb = max(alphas), max(betas)
        bound = ma * _abs_max(lowers) + mb * _abs_max(uppers)
        if not exact:
            bound += (ma - 1) * (mb - 1)
        if bound >= INT64_SAFE:
            return _shadow_rows_py(lowers, betas, uppers, alphas, exact)
        np = self._np
        lo = np.asarray(lowers, dtype=np.int64)
        up = np.asarray(uppers, dtype=np.int64)
        al = np.asarray(alphas, dtype=np.int64)
        be = np.asarray(betas, dtype=np.int64)
        # result[i, j] = alphas[j] * lowers[i] - betas[i] * uppers[j]
        prod = (lo[:, None, :] * al[None, :, None]
                - up[None, :, :] * be[:, None, None])
        if not exact:
            prod[:, :, -1] += (al[None, :] - 1) * (be[:, None] - 1)
        return prod.reshape(-1, width).tolist()

    def substitute_rows(self, rows: list[Row], j: int, repl: Row) -> list[Row]:
        if not rows:
            return []
        width = len(repl)
        if len(rows) * width < MIN_CELLS:
            return _substitute_rows_py(rows, j, repl)
        bound = _abs_max(rows) * (1 + _abs_max([repl]))
        if bound >= INT64_SAFE:
            return _substitute_rows_py(rows, j, repl)
        np = self._np
        mat = np.asarray(rows, dtype=np.int64)
        rep = np.asarray(repl, dtype=np.int64)
        mat = mat + mat[:, j, None] * rep[None, :]
        mat[:, j] = 0
        return mat.tolist()


# ---------------------------------------------------------------------------
# selection
# ---------------------------------------------------------------------------

def _load(choice: str) -> Any:
    choice = choice.lower().strip() or "auto"
    if choice not in ("auto", "numpy", "python"):
        raise ValueError(
            f"REPRO_LIA_BACKEND must be auto|numpy|python, got {choice!r}"
        )
    if choice == "python":
        return _PythonBackend()
    try:
        import numpy as np
    except ImportError:
        if choice == "numpy":
            raise RuntimeError(
                "REPRO_LIA_BACKEND=numpy but numpy is not importable"
            ) from None
        return _PythonBackend()
    return _NumpyBackend(np)


_ACTIVE = _load(os.environ.get("REPRO_LIA_BACKEND", "auto"))


def name() -> str:
    """Name of the active backend: ``"numpy"`` or ``"python"``."""
    return _ACTIVE.name


def use(choice: str = "auto") -> str:
    """Re-select the backend at runtime (tests); returns the active name."""
    global _ACTIVE
    _ACTIVE = _load(choice)
    return _ACTIVE.name


def shadow_rows(
    lowers: list[Row], betas: list[int],
    uppers: list[Row], alphas: list[int], exact: bool,
) -> list[Row]:
    """All Fourier–Motzkin pair rows, lower-major / upper-minor order."""
    return _ACTIVE.shadow_rows(lowers, betas, uppers, alphas, exact)


def substitute_rows(rows: list[Row], j: int, repl: Row) -> list[Row]:
    """Eliminate column ``j`` from every row via the replacement row."""
    return _ACTIVE.substitute_rows(rows, j, repl)
