"""The Omega test: exact integer feasibility for conjunctions of linear
constraints, with model extraction.

This is the theory solver underneath :mod:`repro.smt` and the workhorse of
the whole reproduction (the paper used the authors' Mistral solver).  The
implementation follows Pugh's Omega test:

* equalities are eliminated with the "mod-hat" change of variables, which
  keeps all arithmetic exact over the integers;
* inequalities are eliminated variable by variable with Fourier–Motzkin
  shadows: when every bound pair has a unit coefficient the shadow is
  exact; otherwise the *dark shadow* proves satisfiability and, when the
  dark shadow is infeasible, *splinters* (case splits on ``beta*x = b+i``)
  restore completeness;
* every recursive call returns a complete integer model of its subsystem,
  so eliminated variables are reconstructed by exact back-substitution.

Disequalities and (negated) divisibility literals are lowered at the entry
point (:func:`solve_literals`):  ``t != 0`` case-splits into ``t <= -1`` or
``t >= 1``;  ``d | t`` introduces a fresh quotient variable;  ``d !| t``
introduces a quotient and a bounded nonzero remainder.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Sequence

from .. import limits as _limits
from ..limits import ResourceExhausted
from ..logic.formulas import Atom, Dvd, Formula, Rel
from ..logic.terms import LinTerm, Var, VarSupply

_DEFAULT_BUDGET = 5_000_000


class Model(dict):
    """An integer model: a dict from :class:`Var` to ``int``.

    Variables not mentioned are unconstrained; :meth:`value` defaults
    them to 0.
    """

    def value(self, v: Var, default: int = 0) -> int:
        return self.get(v, default)


#: Backwards-compatible alias: the omega step budget now raises the
#: unified :class:`repro.limits.ResourceExhausted` (stage ``"omega"``),
#: so existing ``except BudgetExceeded`` handlers keep working.
BudgetExceeded = ResourceExhausted


def _ceil_div(a: int, b: int) -> int:
    """ceil(a / b) for b > 0."""
    return -((-a) // b)


def _floor_div(a: int, b: int) -> int:
    """floor(a / b) for b > 0."""
    return a // b


def _mod_hat(a: int, m: int) -> int:
    """Pugh's symmetric residue: a modulo m, shifted into [-m/2, m/2)."""
    r = a - m * _floor_div(2 * a + m, 2 * m)
    assert (r - a) % m == 0 and -m <= 2 * r < m
    return r


def _normalize_le(term: LinTerm) -> LinTerm | None | bool:
    """Tighten ``term <= 0``.

    Returns ``None`` when trivially true, ``False`` when trivially false,
    otherwise the gcd-tightened term.
    """
    if term.is_constant:
        return None if term.const <= 0 else False
    g = term.content()
    if g > 1:
        coeffs = [(v, c // g) for v, c in term.coeffs]
        bound = _floor_div(-term.const, g)
        term = LinTerm.make(coeffs, -bound)
    return term


def _normalize_eq(term: LinTerm) -> LinTerm | None | bool:
    """Normalize ``term = 0``; ``None``/``False`` as in :func:`_normalize_le`."""
    if term.is_constant:
        return None if term.const == 0 else False
    g = term.content()
    if g > 1:
        if term.const % g != 0:
            return False
        term = term.exact_div(g)
    return term


class OmegaSolver:
    """Exact integer linear arithmetic solver for conjunctions of literals."""

    def __init__(self, *, budget: int | None = None):
        if budget is not None:
            warnings.warn(
                "OmegaSolver(budget=...) is deprecated; govern runs with "
                "repro.limits.Limits(omega_steps=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self._budget = _DEFAULT_BUDGET if budget is None else budget
        self._steps = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve_literals(self, literals: Iterable[Formula]) -> Model | None:
        """Solve a conjunction of atom literals; return a model or ``None``.

        Accepts :class:`Atom` (LE / EQ / NE) and :class:`Dvd` literals, plus
        the constants TRUE (ignored) / FALSE (unsat).
        """
        literals = list(literals)
        self._steps = 0
        les: list[LinTerm] = []
        eqs: list[LinTerm] = []
        nes: list[LinTerm] = []
        free: set[Var] = set()
        for lit in literals:
            free |= lit.free_vars()
        supply = VarSupply(free, prefix="$w")
        aux: set[Var] = set()

        for lit in literals:
            if lit.is_true:
                continue
            if lit.is_false:
                return None
            if isinstance(lit, Atom):
                if lit.rel is Rel.LE:
                    les.append(lit.term)
                elif lit.rel is Rel.EQ:
                    eqs.append(lit.term)
                else:
                    nes.append(lit.term)
            elif isinstance(lit, Dvd):
                quotient = supply.fresh("$q")
                aux.add(quotient)
                if not lit.negated_flag:
                    # d | t  <=>  exists q. t - d*q = 0
                    eqs.append(lit.term - LinTerm.var(quotient, lit.divisor))
                else:
                    # d !| t  <=>  exists q, r. t = d*q + r  and  1<=r<=d-1
                    remainder = supply.fresh("$r")
                    aux.add(remainder)
                    eqs.append(
                        lit.term
                        - LinTerm.var(quotient, lit.divisor)
                        - LinTerm.var(remainder)
                    )
                    les.append(LinTerm.var(remainder, -1) + 1)   # r >= 1
                    les.append(
                        LinTerm.var(remainder) - (lit.divisor - 1)
                    )                                            # r <= d-1
            else:
                raise TypeError(f"not an atom literal: {lit!r}")

        model = self._solve_with_nes(les, eqs, nes)
        if model is None:
            return None
        # keep only the caller's variables (internal $q/$r/$s vars drop out)
        return Model({v: model.get(v, 0) for v in free})

    def is_sat_literals(self, literals: Iterable[Formula]) -> bool:
        return self.solve_literals(literals) is not None

    def unsat_core(self, literals: Sequence[Formula]) -> list[Formula]:
        """A minimal unsat subset of ``literals`` (deletion-based).

        Precondition: the conjunction of ``literals`` is unsatisfiable.
        """
        core = list(literals)
        if self.is_sat_literals(core):
            raise ValueError("unsat_core called on a satisfiable conjunction")
        index = 0
        while index < len(core):
            candidate = core[:index] + core[index + 1:]
            if not self.is_sat_literals(candidate):
                core = candidate
            else:
                index += 1
        return core

    # ------------------------------------------------------------------
    # disequality splitting
    # ------------------------------------------------------------------
    def _solve_with_nes(
        self,
        les: list[LinTerm],
        eqs: list[LinTerm],
        nes: list[LinTerm],
    ) -> dict[Var, int] | None:
        """Model-guided lazy disequality splitting.

        Solving without the disequalities first and splitting only the
        ones the found model violates avoids the eager 2^k case split:
        in the common case the first model already satisfies every
        ``t != 0`` and no branching happens at all.
        """
        model = self._solve(list(les), list(eqs))
        if model is None:
            return None
        env = _Defaulting(model)
        violated = None
        for term in nes:
            if term.evaluate(env) == 0:
                violated = term
                break
        if violated is None:
            return model
        rest = [t for t in nes if t is not violated]
        # t != 0  <=>  t <= -1  or  -t <= -1
        for branch in (violated + 1, -violated + 1):
            result = self._solve_with_nes(les + [branch], eqs, rest)
            if result is not None:
                return result
        return None

    # ------------------------------------------------------------------
    # core solver: returns a model covering every variable of the system
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        _limits.tick("omega")
        self._steps += 1
        if self._steps > self._budget:
            raise ResourceExhausted("omega", self._steps, self._budget)

    def _solve(
        self, les: list[LinTerm], eqs: list[LinTerm]
    ) -> dict[Var, int] | None:
        """Solve ``les <= 0  and  eqs = 0``; model covers all variables."""
        substitutions: list[tuple[Var, LinTerm]] = []
        supply = VarSupply(
            (v for t in les + eqs for v in t.variables), prefix="$s"
        )

        # ---- phase 1: equality elimination -----------------------------
        while eqs:
            self._tick()
            normalized = _normalize_eq(eqs.pop())
            if normalized is None:
                continue
            if normalized is False:
                return None
            eq = normalized

            unit = next(
                ((v, c) for v, c in eq.coeffs if abs(c) == 1), None
            )
            if unit is not None:
                v, c = unit
                rest = eq - LinTerm.var(v, c)
                replacement = rest.scale(-1) if c == 1 else rest
            else:
                # Pugh's mod-hat reduction: no unit coefficient available.
                v, c = min(eq.coeffs, key=lambda item: abs(item[1]))
                m = abs(c) + 1
                sigma = supply.fresh("$s")
                reduced = LinTerm.make(
                    [(var, _mod_hat(coeff, m)) for var, coeff in eq.coeffs]
                    + [(sigma, -m)],
                    _mod_hat(eq.const, m),
                )
                cv = reduced.coeff(v)
                assert abs(cv) == 1, "mod-hat must give v a unit coefficient"
                rest = reduced - LinTerm.var(v, cv)
                replacement = rest.scale(-1) if cv == 1 else rest
                # the original equality, rewritten, shrinks and goes back in
                eqs.append(eq.substitute({v: replacement}))

            les = [t.substitute({v: replacement}) for t in les]
            eqs = [t.substitute({v: replacement}) for t in eqs]
            substitutions.append((v, replacement))

        # ---- phase 2: inequality elimination ----------------------------
        model = self._solve_inequalities(les)
        if model is None:
            return None

        # ---- back-substitute eliminated variables -----------------------
        for v, replacement in reversed(substitutions):
            model[v] = replacement.evaluate(_Defaulting(model))
        return model

    def _solve_inequalities(
        self, raw: list[LinTerm]
    ) -> dict[Var, int] | None:
        """Solve a pure inequality system; model covers all its variables."""
        # normalize, then drop dominated constraints: for identical
        # coefficient vectors keep only the tightest bound.  Without this
        # the Fourier-Motzkin shadows accumulate quadratically many
        # redundant copies and elimination blows up.
        tightest: dict[tuple, int] = {}
        for term in raw:
            tightened = _normalize_le(term)
            if tightened is False:
                return None
            if tightened is None:
                continue
            key = tightened.coeffs
            prior = tightest.get(key)
            if prior is None or tightened.const > prior:
                tightest[key] = tightened.const
        les = [LinTerm(coeffs, const)
               for coeffs, const in tightest.items()]

        variables: set[Var] = set()
        for term in les:
            variables |= term.variables
        if not variables:
            return {}

        v = self._pick_variable(les, variables)
        lowers: list[tuple[LinTerm, int]] = []  # (b, beta): b <= beta*v
        uppers: list[tuple[LinTerm, int]] = []  # (a, alpha): alpha*v <= a
        others: list[LinTerm] = []
        for term in les:
            c = term.coeff(v)
            if c == 0:
                others.append(term)
            elif c > 0:
                # c*v + rest <= 0  =>  c*v <= -rest
                uppers.append((-(term - LinTerm.var(v, c)), c))
            else:
                # c*v + rest <= 0  =>  (-c)*v >= rest
                lowers.append((term - LinTerm.var(v, c), -c))

        if not lowers or not uppers:
            # one-sided: v can always be chosen once the rest is solved
            model = self._solve_inequalities(others)
            if model is None:
                return None
            self._assign_within_bounds(model, v, lowers, uppers)
            return model

        exact = all(
            beta == 1 or alpha == 1
            for _, beta in lowers
            for _, alpha in uppers
        )

        shadow: list[LinTerm] = []
        for b, beta in lowers:
            for a, alpha in uppers:
                self._tick()
                # real shadow: alpha*b - beta*a <= 0; dark shadow adds slack
                slack = 0 if exact else (alpha - 1) * (beta - 1)
                shadow.append(b.scale(alpha) - a.scale(beta) + slack)

        model = self._solve_inequalities(others + shadow)
        if model is not None:
            self._assign_within_bounds(model, v, lowers, uppers)
            return model
        if exact:
            return None

        # dark shadow infeasible: splinter on beta*v = b + i for completeness
        alpha_max = max(alpha for _, alpha in uppers)
        for b, beta in lowers:
            if beta == 1:
                continue
            limit = _floor_div(beta * alpha_max - alpha_max - beta, alpha_max)
            for i in range(limit + 1):
                self._tick()
                model = self._solve(
                    list(les), [LinTerm.var(v, beta) - b - i]
                )
                if model is not None:
                    return model
        return None

    @staticmethod
    def _pick_variable(les: list[LinTerm], variables: set[Var]) -> Var:
        """Prefer variables whose elimination is exact and cheap.

        The dominant cost driver is the number of shadow constraints a
        step creates (#lower-bounds x #upper-bounds), so that count is
        minimized first among exact candidates.
        """
        best_key: tuple[int, int, int, str] | None = None
        best_var: Var | None = None
        for v in variables:
            lowers = uppers = non_unit = 0
            max_coeff = 1
            for t in les:
                c = t.coeff(v)
                if c == 0:
                    continue
                if c > 0:
                    uppers += 1
                else:
                    lowers += 1
                if abs(c) != 1:
                    non_unit += 1
                    max_coeff = max(max_coeff, abs(c))
            growth = lowers * uppers - (lowers + uppers)
            key = (non_unit, growth, max_coeff, v.name)
            if best_key is None or key < best_key:
                best_key = key
                best_var = v
        assert best_var is not None
        return best_var

    @staticmethod
    def _assign_within_bounds(
        model: dict[Var, int],
        v: Var,
        lowers: list[tuple[LinTerm, int]],
        uppers: list[tuple[LinTerm, int]],
    ) -> None:
        """Pick a value for ``v`` between its bounds under ``model``."""
        env = _Defaulting(model)
        lo = (
            max(_ceil_div(b.evaluate(env), beta) for b, beta in lowers)
            if lowers else None
        )
        hi = (
            min(_floor_div(a.evaluate(env), alpha) for a, alpha in uppers)
            if uppers else None
        )
        if lo is not None and hi is not None:
            assert lo <= hi, "shadow guaranteed an integer solution"
            model[v] = lo
        elif lo is not None:
            model[v] = lo
        elif hi is not None:
            model[v] = hi
        else:
            model[v] = 0


class _Defaulting(dict):
    """Environment wrapper that treats unassigned variables as 0.

    A variable can be genuinely unconstrained in a subsystem (it only
    occurred in constraints dropped by one-sided elimination); defaulting
    keeps back-substitution total and pins the variable to the value used.
    """

    def __init__(self, backing: dict[Var, int]):
        super().__init__()
        self._backing = backing

    def __missing__(self, key: Var) -> int:
        value = self._backing.setdefault(key, 0)
        self[key] = value
        return value

    def __getitem__(self, key: Var) -> int:
        if key in self._backing:
            return self._backing[key]
        return self.__missing__(key)


# A module-level default instance for convenience.
_DEFAULT = OmegaSolver()


def solve_literals(literals: Iterable[Formula]) -> Model | None:
    """Solve a conjunction of literals with a shared default solver."""
    return _DEFAULT.solve_literals(literals)


def is_sat_literals(literals: Iterable[Formula]) -> bool:
    return _DEFAULT.is_sat_literals(literals)


def unsat_core(literals: Sequence[Formula]) -> list[Formula]:
    return _DEFAULT.unsat_core(literals)
