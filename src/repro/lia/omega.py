"""The Omega test: exact integer feasibility for conjunctions of linear
constraints, with model extraction.

This is the theory solver underneath :mod:`repro.smt` and the workhorse of
the whole reproduction (the paper used the authors' Mistral solver).  The
implementation follows Pugh's Omega test:

* equalities are eliminated with the "mod-hat" change of variables, which
  keeps all arithmetic exact over the integers;
* inequalities are eliminated variable by variable with Fourier–Motzkin
  shadows: when every bound pair has a unit coefficient the shadow is
  exact; otherwise the *dark shadow* proves satisfiability and, when the
  dark shadow is infeasible, *splinters* (case splits on ``beta*x = b+i``)
  restore completeness;
* every recursive call returns a complete integer model of its subsystem,
  so eliminated variables are reconstructed by exact back-substitution.

Disequalities and (negated) divisibility literals are lowered at the entry
point (:func:`solve_literals`):  ``t != 0`` case-splits into ``t <= -1`` or
``t >= 1``;  ``d | t`` introduces a fresh quotient variable;  ``d !| t``
introduces a quotient and a bounded nonzero remainder.

Internally the solver runs on *dense rows* — each constraint is a plain
list ``[c0, ..., c_{n-1}, const]`` over a fixed variable order — so the
elimination inner loops are integer array arithmetic instead of sparse
term manipulation.  The batch kernels (Fourier–Motzkin pair products,
equality substitution) are provided by :mod:`repro.lia.backend`, which
selects a numpy int64 implementation when available and falls back to
pure-Python bigint rows; both emit bit-identical rows.  ``LinTerm`` is
still the public interface; conversion happens once per ``_solve`` call.
"""

from __future__ import annotations

import warnings
from math import gcd
from typing import Iterable, Sequence

from .. import limits as _limits
from ..limits import ResourceExhausted
from ..logic.formulas import Atom, Dvd, Formula, Rel
from ..logic.terms import LinTerm, Var, VarSupply
from . import backend as _backend
from .intmath import ceil_div, floor_div, mod_hat

_DEFAULT_BUDGET = 5_000_000

#: Cap on entries in the per-instance ``solve_literals`` verdict memo.
_MEMO_LIMIT = 1 << 14

#: Resource ticks are counted exactly but reported to the governor in
#: batches, so the per-tick cost is an integer add instead of a clock
#: read (mirrors the deadline amortization inside :mod:`repro.limits`).
_TICK_FLUSH = 64


class Model(dict):
    """An integer model: a dict from :class:`Var` to ``int``.

    Variables not mentioned are unconstrained; :meth:`value` defaults
    them to 0.
    """

    def value(self, v: Var, default: int = 0) -> int:
        return self.get(v, default)


#: Backwards-compatible alias: the omega step budget now raises the
#: unified :class:`repro.limits.ResourceExhausted` (stage ``"omega"``),
#: so existing ``except BudgetExceeded`` handlers keep working.
BudgetExceeded = ResourceExhausted

# Backwards-compatible aliases; the shared definitions live in
# :mod:`repro.lia.intmath` now.
_ceil_div = ceil_div
_floor_div = floor_div
_mod_hat = mod_hat


def _normalize_le(term: LinTerm) -> LinTerm | None | bool:
    """Tighten ``term <= 0``.

    Returns ``None`` when trivially true, ``False`` when trivially false,
    otherwise the gcd-tightened term.
    """
    if term.is_constant:
        return None if term.const <= 0 else False
    g = term.content()
    if g > 1:
        coeffs = [(v, c // g) for v, c in term.coeffs]
        bound = floor_div(-term.const, g)
        term = LinTerm.make(coeffs, -bound)
    return term


def _normalize_eq(term: LinTerm) -> LinTerm | None | bool:
    """Normalize ``term = 0``; ``None``/``False`` as in :func:`_normalize_le`."""
    if term.is_constant:
        return None if term.const == 0 else False
    g = term.content()
    if g > 1:
        if term.const % g != 0:
            return False
        term = term.exact_div(g)
    return term


# ---------------------------------------------------------------------------
# dense-row helpers: a row is [c0, ..., c_{n-1}, const] over a var order
# ---------------------------------------------------------------------------

def _term_to_row(term: LinTerm, col: dict[Var, int], width: int) -> list[int]:
    row = [0] * width
    for v, c in term.coeffs:
        row[col[v]] = c
    row[-1] = term.const
    return row


def _row_to_term(row: list[int], order: list[Var]) -> LinTerm:
    return LinTerm.make(
        [(order[k], row[k]) for k in range(len(row) - 1) if row[k]], row[-1]
    )


def _normalize_le_row(row: list[int]) -> list[int] | None | bool:
    """Row form of :func:`_normalize_le` (may return the input row)."""
    g = 0
    for k in range(len(row) - 1):
        c = row[k]
        if c:
            g = gcd(g, c)
    if g == 0:
        return None if row[-1] <= 0 else False
    if g == 1:
        return row
    new = [c // g for c in row]
    new[-1] = ceil_div(row[-1], g)
    return new


def _normalize_eq_row(row: list[int]) -> list[int] | None | bool:
    """Row form of :func:`_normalize_eq` (may return the input row)."""
    g = 0
    for k in range(len(row) - 1):
        c = row[k]
        if c:
            g = gcd(g, c)
    if g == 0:
        return None if row[-1] == 0 else False
    if g == 1:
        return row
    if row[-1] % g != 0:
        return False
    return [c // g for c in row]


def _subst_row(row: list[int], j: int, repl: list[int]) -> list[int]:
    """``row`` with variable ``j`` replaced by the affine row ``repl``."""
    c = row[j]
    if c == 0:
        return row
    new = [x + c * y for x, y in zip(row, repl)]
    new[j] = 0
    return new


def _eval_row(row: list[int], order: list[Var], env) -> int:
    total = row[-1]
    for k in range(len(row) - 1):
        c = row[k]
        if c:
            total += c * env[order[k]]
    return total


class OmegaSolver:
    """Exact integer linear arithmetic solver for conjunctions of literals."""

    def __init__(self, *, budget: int | None = None):
        if budget is not None:
            warnings.warn(
                "OmegaSolver(budget=...) is deprecated; govern runs with "
                "repro.limits.Limits(omega_steps=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        self._budget = _DEFAULT_BUDGET if budget is None else budget
        self._steps = 0
        self._pending = 0
        # per-instance verdict memo keyed on the literal tuple.  The SMT
        # layer's deletion-based unsat_core re-solves the full literal
        # set its caller just proved unsatisfiable, and overlapping
        # subsets recur across theory rounds — both hit here.  Bounded;
        # results are pure functions of the (hash-consed) literals.
        self._memo: dict[tuple, Model | None] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def solve_literals(self, literals: Iterable[Formula]) -> Model | None:
        """Solve a conjunction of atom literals; return a model or ``None``.

        Accepts :class:`Atom` (LE / EQ / NE) and :class:`Dvd` literals, plus
        the constants TRUE (ignored) / FALSE (unsat).
        """
        literals = list(literals)
        key = tuple(literals)
        try:
            cached = self._memo[key]
        except (KeyError, TypeError):  # TypeError: unhashable literal
            pass
        else:
            _limits.tick("omega")  # cached answers keep the deadline live
            return cached
        result = self._solve_literals_uncached(literals)
        if len(self._memo) < _MEMO_LIMIT:
            self._memo[key] = result
        return result

    def _solve_literals_uncached(self, literals: list) -> Model | None:
        self._steps = 0
        self._pending = 0
        les: list[LinTerm] = []
        eqs: list[LinTerm] = []
        nes: list[LinTerm] = []
        free: set[Var] = set()
        for lit in literals:
            free |= lit.free_vars()
        supply = VarSupply(free, prefix="$w")
        aux: set[Var] = set()

        for lit in literals:
            if lit.is_true:
                continue
            if lit.is_false:
                return None
            if isinstance(lit, Atom):
                if lit.rel is Rel.LE:
                    les.append(lit.term)
                elif lit.rel is Rel.EQ:
                    eqs.append(lit.term)
                else:
                    nes.append(lit.term)
            elif isinstance(lit, Dvd):
                quotient = supply.fresh("$q")
                aux.add(quotient)
                if not lit.negated_flag:
                    # d | t  <=>  exists q. t - d*q = 0
                    eqs.append(lit.term - LinTerm.var(quotient, lit.divisor))
                else:
                    # d !| t  <=>  exists q, r. t = d*q + r  and  1<=r<=d-1
                    remainder = supply.fresh("$r")
                    aux.add(remainder)
                    eqs.append(
                        lit.term
                        - LinTerm.var(quotient, lit.divisor)
                        - LinTerm.var(remainder)
                    )
                    les.append(LinTerm.var(remainder, -1) + 1)   # r >= 1
                    les.append(
                        LinTerm.var(remainder) - (lit.divisor - 1)
                    )                                            # r <= d-1
            else:
                raise TypeError(f"not an atom literal: {lit!r}")

        try:
            model = self._solve_with_nes(les, eqs, nes)
        finally:
            self._flush_ticks()
        if model is None:
            return None
        # keep only the caller's variables (internal $q/$r/$s vars drop out)
        return Model({v: model.get(v, 0) for v in free})

    def is_sat_literals(self, literals: Iterable[Formula]) -> bool:
        return self.solve_literals(literals) is not None

    def unsat_core(self, literals: Sequence[Formula]) -> list[Formula]:
        """A minimal unsat subset of ``literals`` (deletion-based).

        Precondition: the conjunction of ``literals`` is unsatisfiable.
        """
        core = list(literals)
        if self.is_sat_literals(core):
            raise ValueError("unsat_core called on a satisfiable conjunction")
        index = 0
        while index < len(core):
            candidate = core[:index] + core[index + 1:]
            if not self.is_sat_literals(candidate):
                core = candidate
            else:
                index += 1
        return core

    # ------------------------------------------------------------------
    # disequality splitting
    # ------------------------------------------------------------------
    def _solve_with_nes(
        self,
        les: list[LinTerm],
        eqs: list[LinTerm],
        nes: list[LinTerm],
    ) -> dict[Var, int] | None:
        """Model-guided lazy disequality splitting.

        Solving without the disequalities first and splitting only the
        ones the found model violates avoids the eager 2^k case split:
        in the common case the first model already satisfies every
        ``t != 0`` and no branching happens at all.
        """
        model = self._solve(list(les), list(eqs))
        if model is None:
            return None
        env = _Defaulting(model)
        violated = None
        for term in nes:
            if term.evaluate(env) == 0:
                violated = term
                break
        if violated is None:
            return model
        rest = [t for t in nes if t is not violated]
        # t != 0  <=>  t <= -1  or  -t <= -1
        for branch in (violated + 1, -violated + 1):
            result = self._solve_with_nes(les + [branch], eqs, rest)
            if result is not None:
                return result
        return None

    # ------------------------------------------------------------------
    # core solver: returns a model covering every variable of the system
    # ------------------------------------------------------------------
    def _tick(self, amount: int = 1) -> None:
        self._steps += amount
        pending = self._pending + amount
        if pending >= _TICK_FLUSH:
            self._pending = 0
            _limits.tick("omega", pending)
        else:
            self._pending = pending
        if self._steps > self._budget:
            raise ResourceExhausted("omega", self._steps, self._budget)

    def _flush_ticks(self) -> None:
        if self._pending:
            pending, self._pending = self._pending, 0
            _limits.tick("omega", pending)

    def _solve(
        self, les: list[LinTerm], eqs: list[LinTerm]
    ) -> dict[Var, int] | None:
        """Solve ``les <= 0  and  eqs = 0``; model covers all variables."""
        variables: set[Var] = set()
        for t in les:
            variables |= t.variables
        for t in eqs:
            variables |= t.variables
        order = sorted(variables, key=lambda v: v.name)
        col = {v: k for k, v in enumerate(order)}
        width = len(order) + 1
        le_rows = [_term_to_row(t, col, width) for t in les]
        eq_rows = [_term_to_row(t, col, width) for t in eqs]
        return self._solve_rows(le_rows, eq_rows, order)

    def _solve_rows(
        self,
        le_rows: list[list[int]],
        eq_rows: list[list[int]],
        order: list[Var],
    ) -> dict[Var, int] | None:
        """Row-level core; ``order`` maps columns to variables.

        The order list is copied (equality elimination may append fresh
        ``$s`` columns); rows are copied too, since elimination widens
        them in place while callers (splinters) reuse their row lists.
        """
        order = list(order)
        le_rows = [r[:] for r in le_rows]
        eq_rows = [r[:] for r in eq_rows]
        occurring = {
            order[k]
            for rows in (le_rows, eq_rows)
            for row in rows
            for k in range(len(row) - 1)
            if row[k]
        }
        supply = VarSupply(occurring, prefix="$s")
        # scan visits columns in variable-name order, matching the sorted
        # coefficient order the sparse-term implementation iterated in
        scan = sorted(range(len(order)), key=lambda k: order[k].name)
        substitutions: list[tuple[int, list[int]]] = []

        # ---- phase 1: equality elimination -----------------------------
        while eq_rows:
            self._tick()
            normalized = _normalize_eq_row(eq_rows.pop())
            if normalized is None:
                continue
            if normalized is False:
                return None
            eq = normalized

            j = -1
            c = 0
            for k in scan:
                ck = eq[k]
                if ck == 1 or ck == -1:
                    j = k
                    c = ck
                    break
            if j >= 0:
                repl = eq[:]
                repl[j] = 0
                if c == 1:
                    repl = [-x for x in repl]
            else:
                # Pugh's mod-hat reduction: no unit coefficient available.
                best = 0
                for k in scan:
                    ck = eq[k]
                    if ck and (best == 0 or abs(ck) < best):
                        best = abs(ck)
                        j = k
                m = best + 1
                sigma = supply.fresh("$s")
                order.append(sigma)
                for row in le_rows:
                    row.insert(-1, 0)
                for row in eq_rows:
                    row.insert(-1, 0)
                eq.insert(-1, 0)
                scan = sorted(range(len(order)), key=lambda k: order[k].name)
                reduced = [mod_hat(x, m) for x in eq]
                reduced[-2] = -m          # the fresh sigma column
                cv = reduced[j]
                assert abs(cv) == 1, "mod-hat must give v a unit coefficient"
                repl = reduced[:]
                repl[j] = 0
                if cv == 1:
                    repl = [-x for x in repl]
                # the original equality, rewritten, shrinks and goes back in
                eq_rows.append(_subst_row(eq, j, repl))

            le_rows = _backend.substitute_rows(le_rows, j, repl)
            eq_rows = _backend.substitute_rows(eq_rows, j, repl)
            substitutions.append((j, repl))

        # ---- phase 2: inequality elimination ----------------------------
        model = self._solve_ineq_rows(le_rows, order)
        if model is None:
            return None

        # ---- back-substitute eliminated variables -----------------------
        for j, repl in reversed(substitutions):
            model[order[j]] = _eval_row(repl, order, _Defaulting(model))
        return model

    def _solve_ineq_rows(
        self, raw: list[list[int]], order: list[Var]
    ) -> dict[Var, int] | None:
        """Solve a pure inequality system; model covers all its variables."""
        # normalize, then drop dominated constraints: for identical
        # coefficient vectors keep only the tightest bound.  Without this
        # the Fourier-Motzkin shadows accumulate quadratically many
        # redundant copies and elimination blows up.
        tightest: dict[tuple[int, ...], int] = {}
        rows: list[list[int]] = []
        for row in raw:
            tightened = _normalize_le_row(row)
            if tightened is False:
                return None
            if tightened is None:
                continue
            key = tuple(tightened[:-1])
            prior = tightest.get(key)
            if prior is None:
                tightest[key] = len(rows)
                rows.append(tightened)
            elif tightened[-1] > rows[prior][-1]:
                rows[prior] = tightened
        if not rows:
            return {}

        ncols = len(order)
        active = [k for k in range(ncols) if any(row[k] for row in rows)]
        j = self._pick_column(rows, active, order)

        lowers: list[list[int]] = []   # (b, beta): b <= beta*v
        betas: list[int] = []
        uppers: list[list[int]] = []   # (a, alpha): alpha*v <= a
        alphas: list[int] = []
        others: list[list[int]] = []
        for row in rows:
            c = row[j]
            if c == 0:
                others.append(row)
            elif c > 0:
                # c*v + rest <= 0  =>  c*v <= -rest
                a = [-x for x in row]
                a[j] = 0
                uppers.append(a)
                alphas.append(c)
            else:
                # c*v + rest <= 0  =>  (-c)*v >= rest
                b = row[:]
                b[j] = 0
                lowers.append(b)
                betas.append(-c)

        if not lowers or not uppers:
            # one-sided: v can always be chosen once the rest is solved
            model = self._solve_ineq_rows(others, order)
            if model is None:
                return None
            self._assign_within_bounds(
                model, j, lowers, betas, uppers, alphas, order
            )
            return model

        # every bound pair needs beta == 1 or alpha == 1 for exactness
        exact = all(b == 1 for b in betas) or all(a == 1 for a in alphas)

        # real shadow: alpha*b - beta*a <= 0; dark shadow adds slack
        self._tick(len(lowers) * len(uppers))
        shadow = _backend.shadow_rows(lowers, betas, uppers, alphas, exact)

        model = self._solve_ineq_rows(others + shadow, order)
        if model is not None:
            self._assign_within_bounds(
                model, j, lowers, betas, uppers, alphas, order
            )
            return model
        if exact:
            return None

        # dark shadow infeasible: splinter on beta*v = b + i for completeness
        alpha_max = max(alphas)
        for b, beta in zip(lowers, betas):
            if beta == 1:
                continue
            limit = floor_div(beta * alpha_max - alpha_max - beta, alpha_max)
            for i in range(limit + 1):
                self._tick()
                eq = [-x for x in b]
                eq[j] = beta
                eq[-1] = -b[-1] - i
                model = self._solve_rows(rows, [eq], order)
                if model is not None:
                    return model
        return None

    @staticmethod
    def _pick_column(
        rows: list[list[int]], active: list[int], order: list[Var]
    ) -> int:
        """Prefer variables whose elimination is exact and cheap.

        The dominant cost driver is the number of shadow constraints a
        step creates (#lower-bounds x #upper-bounds), so that count is
        minimized first among exact candidates.
        """
        best_key: tuple[int, int, int, str] | None = None
        best = -1
        for k in active:
            lowers = uppers = non_unit = 0
            max_coeff = 1
            for row in rows:
                c = row[k]
                if c == 0:
                    continue
                if c > 0:
                    uppers += 1
                else:
                    lowers += 1
                if c != 1 and c != -1:
                    non_unit += 1
                    a = -c if c < 0 else c
                    if a > max_coeff:
                        max_coeff = a
            growth = lowers * uppers - (lowers + uppers)
            key = (non_unit, growth, max_coeff, order[k].name)
            if best_key is None or key < best_key:
                best_key = key
                best = k
        assert best >= 0
        return best

    @staticmethod
    def _assign_within_bounds(
        model: dict[Var, int],
        j: int,
        lowers: list[list[int]],
        betas: list[int],
        uppers: list[list[int]],
        alphas: list[int],
        order: list[Var],
    ) -> None:
        """Pick a value for column ``j`` between its bounds under ``model``."""
        env = _Defaulting(model)
        lo = (
            max(ceil_div(_eval_row(b, order, env), beta)
                for b, beta in zip(lowers, betas))
            if lowers else None
        )
        hi = (
            min(floor_div(_eval_row(a, order, env), alpha)
                for a, alpha in zip(uppers, alphas))
            if uppers else None
        )
        if lo is not None and hi is not None:
            assert lo <= hi, "shadow guaranteed an integer solution"
            model[order[j]] = lo
        elif lo is not None:
            model[order[j]] = lo
        elif hi is not None:
            model[order[j]] = hi
        else:
            model[order[j]] = 0


class _Defaulting(dict):
    """Environment wrapper that treats unassigned variables as 0.

    A variable can be genuinely unconstrained in a subsystem (it only
    occurred in constraints dropped by one-sided elimination); defaulting
    keeps back-substitution total and pins the variable to the value used.
    """

    def __init__(self, backing: dict[Var, int]):
        super().__init__()
        self._backing = backing

    def __missing__(self, key: Var) -> int:
        value = self._backing.setdefault(key, 0)
        self[key] = value
        return value

    def __getitem__(self, key: Var) -> int:
        if key in self._backing:
            return self._backing[key]
        return self.__missing__(key)


# A module-level default instance for convenience.
_DEFAULT = OmegaSolver()


def solve_literals(literals: Iterable[Formula]) -> Model | None:
    """Solve a conjunction of literals with a shared default solver."""
    return _DEFAULT.solve_literals(literals)


def is_sat_literals(literals: Iterable[Formula]) -> bool:
    return _DEFAULT.is_sat_literals(literals)


def unsat_core(literals: Sequence[Formula]) -> list[Formula]:
    return _DEFAULT.unsat_core(literals)
