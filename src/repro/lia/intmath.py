"""Exact integer arithmetic helpers shared across the LIA stack.

These used to live as private near-copies in :mod:`repro.lia.omega` and
the QE layer; they are the primitive operations both Pugh's Omega test
and Cooper elimination build on, so they live here once.  All functions
are exact over arbitrary-precision ints.
"""

from __future__ import annotations


def floor_div(a: int, b: int) -> int:
    """floor(a / b) for b > 0."""
    return a // b


def ceil_div(a: int, b: int) -> int:
    """ceil(a / b) for b > 0."""
    return -((-a) // b)


def mod_hat(a: int, m: int) -> int:
    """Pugh's symmetric residue: a modulo m, shifted into [-m/2, m/2)."""
    r = a - m * ((2 * a + m) // (2 * m))
    assert (r - a) % m == 0 and -m <= 2 * r < m
    return r
