"""repro: a reproduction of "Automated Error Diagnosis Using Abductive
Inference" (Dillig, Dillig, Aiken — PLDI 2012).

The package implements, from scratch:

* a Presburger-arithmetic logic stack (terms, formulas, CDCL SAT, the
  Omega test, lazy SMT, Cooper quantifier elimination, minimum satisfying
  assignments, contextual simplification);
* the paper's source language with parser and concrete interpreter;
* interval/zone abstract interpreters that supply loop postconditions;
* the Section 3 symbolic analysis producing invariants ``I`` and the
  success condition ``phi``;
* the Section 4 abductive error-diagnosis engine (weakest minimum proof
  obligations and failure witnesses, the Figure 6 interaction loop,
  query decomposition);
* the Figure 7 benchmark suite and a simulated user study;
* abductive repair synthesis: the abduced premise placed back into the
  source as ``@assume``/``@post``/guard patches, each re-verified by
  the full front end and ranked by the paper's cost order.

Quickstart::

    from repro import Pipeline, ScriptedOracle

    SRC = '''
    program foo(flag, unsigned n) {
      var k = 1, i = 0, j = 0;
      if (flag != 0) { k = n * n; }
      while (i <= n) { i = i + 1; j = j + i; } @post(i >= 0 && i > n)
      var z = k + i + j;
      assert(z > 2 * n);
    }
    '''
    result = Pipeline().diagnose(SRC, ScriptedOracle(["yes"]))
    print(result.verdict)

Or run it as a service (``python -m repro serve --port 8184``) and
``POST {"source": ...}`` to ``/v1/triage`` — see docs/API.md.
"""

__version__ = "1.0.0"

# Public names are re-exported lazily (PEP 562) so that the subpackages —
# which have a strict layering (logic < lia/sat < smt/qe < msa/simplify <
# lang/abstract < analysis < diagnosis < suite/userstudy) — can be imported
# individually without pulling in the whole stack.
_EXPORTS = {
    "AnalysisOutcome": ("repro.api", "AnalysisOutcome"),
    "Pipeline": ("repro.api", "Pipeline"),
    "InitialVerdict": ("repro.api", "InitialVerdict"),
    "load_benchmark": ("repro.api", "load_benchmark"),
    "run_user_study": ("repro.api", "run_user_study"),
    "TriageVerdict": ("repro.schema", "TriageVerdict"),
    "SCHEMA_VERSION": ("repro.schema", "SCHEMA_VERSION"),
    "read_envelope": ("repro.schema", "read_envelope"),
    "Limits": ("repro.limits", "Limits"),
    "ResourceExhausted": ("repro.limits", "ResourceExhausted"),
    "CancellationToken": ("repro.limits", "CancellationToken"),
    "BatchResult": ("repro.batch", "BatchResult"),
    "TriageOutcome": ("repro.batch", "TriageOutcome"),
    "RepairResult": ("repro.repair", "RepairResult"),
    "RepairPatch": ("repro.repair", "RepairPatch"),
    "synthesize_repairs": ("repro.repair", "synthesize_repairs"),
    "obs": ("repro.obs", None),
    "DiagnosisResult": ("repro.diagnosis.engine", "DiagnosisResult"),
    "Verdict": ("repro.diagnosis.engine", "Verdict"),
    "diagnose_error": ("repro.diagnosis.engine", "diagnose_error"),
    "Oracle": ("repro.diagnosis.oracles", "Oracle"),
    "ScriptedOracle": ("repro.diagnosis.oracles", "ScriptedOracle"),
    "InteractiveOracle": ("repro.diagnosis.oracles", "InteractiveOracle"),
    "SamplingOracle": ("repro.diagnosis.oracles", "SamplingOracle"),
    "ExhaustiveOracle": ("repro.diagnosis.oracles", "ExhaustiveOracle"),
    "ChainOracle": ("repro.diagnosis.oracles", "ChainOracle"),
    "render_report": ("repro.diagnosis.report", "render_report"),
    "UnrollingOracle": ("repro.bmc", "UnrollingOracle"),
    "parse_program": ("repro.lang", "parse_program"),
    "run_program": ("repro.lang", "run_program"),
    "annotate_program": ("repro.abstract", "annotate_program"),
    "analyze_program": ("repro.analysis", "analyze_program"),
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = module if attr is None else getattr(module, attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
