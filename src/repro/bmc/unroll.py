"""Bounded loop unrolling.

Transforms a program into a loop-free one that exactly simulates every
execution with at most ``k`` iterations per loop visit, and *detects*
executions that would need more:

* each ``while (c) { s }`` becomes ``k`` nested ``if (c) { s ... }``
  levels, with an innermost ``if (c) { $ovfL = 1; }`` marking bound
  overflow;
* after the unrolled construct, every loop-modified variable ``v`` is
  snapshotted into a fresh local ``$exitL_v`` — the exact value of ``v``
  at the loop's exit point, which is what the original analysis's loop
  abstraction variables denote.

Because the Section 3 analysis is exact on loop-free code, analyzing the
unrolled program yields an *exact* symbolic characterization of all
bounded executions — the static underapproximation the paper's Section 8
proposes for deciding queries automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.ast import (
    Assign,
    Block,
    Const,
    If,
    Name,
    Program,
    Stmt,
    While,
)


@dataclass(frozen=True)
class UnrollInfo:
    """Metadata tying unrolled artifacts back to the original loops."""

    bound: int
    overflow_vars: dict[int, str]       # loop label -> $ovfL
    snapshot_vars: dict[tuple[int, str], str]  # (label, var) -> $exitL_v


def unroll_program(program: Program, bound: int) -> tuple[Program, UnrollInfo]:
    """Unroll every loop ``bound`` times; returns the loop-free program
    plus the bookkeeping needed to interpret its results."""
    if bound < 0:
        raise ValueError("unroll bound must be non-negative")
    overflow_vars: dict[int, str] = {}
    snapshot_vars: dict[tuple[int, str], str] = {}
    new_locals: list[str] = []

    def unroll_block(block: Block) -> Block:
        statements: list[Stmt] = []
        for stmt in block.body:
            statements.extend(unroll_stmt(stmt))
        return Block(tuple(statements), block.span)

    def unroll_stmt(stmt: Stmt) -> list[Stmt]:
        if isinstance(stmt, While):
            return unroll_while(stmt)
        if isinstance(stmt, If):
            return [If(stmt.cond, unroll_block(stmt.then_branch),
                       unroll_block(stmt.else_branch), stmt.span)]
        if isinstance(stmt, Block):
            return [unroll_block(stmt)]
        return [stmt]

    def unroll_while(loop: While) -> list[Stmt]:
        body = unroll_block(loop.body)
        label = loop.label

        ovf = f"$ovf{label}"
        if label not in overflow_vars:
            overflow_vars[label] = ovf
            new_locals.append(ovf)

        # innermost level: the bound was not enough
        nested: Stmt = If(
            loop.cond,
            Block((Assign(ovf, Const(1), loop.span),), loop.span),
            Block((), loop.span),
            loop.span,
        )
        for _ in range(bound):
            nested = If(
                loop.cond,
                Block(body.body + (nested,), loop.span),
                Block((), loop.span),
                loop.span,
            )

        snapshots: list[Stmt] = []
        for name in sorted(loop.modified_vars()):
            snap = f"$exit{label}_{name}"
            if (label, name) not in snapshot_vars:
                snapshot_vars[(label, name)] = snap
                new_locals.append(snap)
            snapshots.append(Assign(snap, Name(name), loop.span))
        return [nested, *snapshots]

    unrolled_body = unroll_block(program.body)
    unrolled = Program(
        name=f"{program.name}$unrolled{bound}",
        params=program.params,
        locals=program.locals + tuple(new_locals),
        body=unrolled_body,
        check=program.check,
        span=program.span,
        source=program.source,
    )
    return unrolled, UnrollInfo(bound, overflow_vars, snapshot_vars)
