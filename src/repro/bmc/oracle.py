"""The bounded-unrolling oracle: answering queries by *static*
underapproximation (the paper's Section 8 proposal).

The oracle analyzes the unrolled program (exact, since it is loop-free)
and answers:

* **witness queries "yes"** when some bounded execution realizes the
  queried condition — sound unconditionally, because every bounded
  execution is a real execution;
* **invariant queries "no"** when some bounded execution violates the
  condition — sound for the same reason;
* when no loop can exceed the bound on *any* input (the overflow marker
  is unreachable), the bounded analysis is complete, so "no witness"
  hardens into **witness "no"** and "no violation" into **invariant
  "yes"**;
* otherwise it answers "unknown" and defers to the next oracle (pair it
  with a human via :class:`repro.diagnosis.ChainOracle`).
"""

from __future__ import annotations

from ..analysis import AnalysisResult, analyze_program
from ..diagnosis.oracles import Oracle
from ..diagnosis.queries import Answer, Query
from ..lang.ast import Program
from ..logic.formulas import Formula, conj, disj, eq, neg
from ..logic.terms import LinTerm, Var, VarKind
from ..smt import SmtSolver
from .unroll import unroll_program


class UnrollingOracle(Oracle):
    """Decides queries against all executions with <= ``bound`` loop
    iterations, exactly."""

    def __init__(self, program: Program, analysis: AnalysisResult,
                 *, bound: int = 6, solver: SmtSolver | None = None):
        self._program = program
        self._analysis = analysis
        self._bound = bound
        self._solver = solver or SmtSolver()
        self._prepared = False
        self._bounded_state: Formula | None = None
        self._exact = False
        self._binding_vars: dict[Var, Var] = {}

    # ------------------------------------------------------------------
    def _prepare(self) -> None:
        if self._prepared:
            return
        self._prepared = True
        unrolled, info = unroll_program(self._program, self._bound)
        bounded = analyze_program(unrolled)

        constraints: list[Formula] = [bounded.invariants]

        def bind(term_sets, fresh: Var) -> Formula:
            return disj(*(
                conj(eq(LinTerm.var(fresh), pi), guard)
                for pi, guard in term_sets
            ))

        # overflow markers must be 0 (the execution stayed in bounds)
        overflow_free: list[Formula] = []
        for label, ovf_name in info.overflow_vars.items():
            fresh = Var(f"$OVF{label}", VarKind.AUX)
            constraints.append(bind(bounded.store[ovf_name], fresh))
            overflow_free.append(eq(LinTerm.var(fresh), 0))
        constraints.extend(overflow_free)

        # bind each original loop abstraction to its snapshot's value
        for var, meta in self._analysis.info.items():
            if meta.kind != "loop":
                continue
            key = (meta.label, meta.program_var)
            snap_name = info.snapshot_vars.get(key)  # type: ignore[arg-type]
            if snap_name is None:
                continue
            constraints.append(bind(bounded.store[snap_name], var))
            self._binding_vars[var] = var

        # original input variables coincide with the unrolled program's
        # (same parameter names), so no renaming is needed
        self._bounded_state = conj(*constraints)

        # completeness: can any input overflow the bound?
        with_overflow = conj(
            bounded.invariants,
            *(
                bind(bounded.store[name], Var(f"$OVF{label}", VarKind.AUX))
                for label, name in info.overflow_vars.items()
            ),
            neg(conj(*overflow_free)) if overflow_free else neg(conj()),
        )
        if not info.overflow_vars:
            self._exact = True
        else:
            self._exact = not self._solver.is_sat(with_overflow)

    # ------------------------------------------------------------------
    def answer(self, query: Query) -> Answer:
        self._prepare()
        assert self._bounded_state is not None

        supported = self._analysis.input_vars.values()
        for v in query.formula.free_vars():
            meta = self._analysis.info.get(v)
            if v in set(supported):
                continue
            if meta is not None and meta.kind == "loop" \
                    and v in self._binding_vars:
                continue
            return Answer.UNKNOWN  # havoc/product abstractions: no map

        realizable = self._solver.is_sat(
            conj(self._bounded_state, query.formula)
        )
        if query.kind == "witness":
            if realizable:
                return Answer.YES
            return Answer.NO if self._exact else Answer.UNKNOWN
        # invariant query
        violated = self._solver.is_sat(
            conj(self._bounded_state, neg(query.formula))
        )
        if violated:
            return Answer.NO
        return Answer.YES if self._exact else Answer.UNKNOWN
