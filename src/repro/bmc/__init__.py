"""Bounded model checking: loop unrolling + the static-underapproximation
oracle (the paper's Section 8 future-work direction)."""

from .oracle import UnrollingOracle
from .unroll import UnrollInfo, unroll_program

__all__ = ["UnrollingOracle", "UnrollInfo", "unroll_program"]
