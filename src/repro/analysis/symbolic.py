"""Symbolic value sets and stores (Figures 2–4 of the paper).

A program variable's value is a *symbolic value set* — a set of pairs
``(pi, phi)`` where ``pi`` is a symbolic expression (a linear term over
input and abstraction variables) and ``phi`` is the path constraint under
which the variable takes that value.  On loop-free code this
representation is exact: the guards of a well-formed value set partition
the state space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..logic.formulas import TRUE, Formula, conj, disj
from ..logic.terms import LinTerm, Var


@dataclass(frozen=True)
class ValueSet:
    """A symbolic value set ``{(pi_1, phi_1), ..., (pi_k, phi_k)}``."""

    entries: tuple[tuple[LinTerm, Formula], ...]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def of(entries: Iterable[tuple[LinTerm, Formula]]) -> "ValueSet":
        pruned = tuple(
            (pi, phi) for pi, phi in entries if not phi.is_false
        )
        return ValueSet(pruned)

    @staticmethod
    def constant(value: int) -> "ValueSet":
        return ValueSet(((LinTerm.constant(value), TRUE),))

    @staticmethod
    def term(term: LinTerm) -> "ValueSet":
        return ValueSet(((term, TRUE),))

    @staticmethod
    def var(v: Var) -> "ValueSet":
        return ValueSet(((LinTerm.var(v), TRUE),))

    def __iter__(self) -> Iterator[tuple[LinTerm, Formula]]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # ------------------------------------------------------------------
    # Figure 2: operations on symbolic value sets
    # ------------------------------------------------------------------
    def combine(self, other: "ValueSet",
                op: Callable[[LinTerm, LinTerm], LinTerm]) -> "ValueSet":
        """Pointwise arithmetic: cross product of entries, guards conjoined."""
        result = []
        for pi1, phi1 in self.entries:
            for pi2, phi2 in other.entries:
                guard = conj(phi1, phi2)
                if guard.is_false:
                    continue
                result.append((op(pi1, pi2), guard))
        return ValueSet.of(_merge_equal_terms(result))

    def add(self, other: "ValueSet") -> "ValueSet":
        return self.combine(other, lambda a, b: a + b)

    def sub(self, other: "ValueSet") -> "ValueSet":
        return self.combine(other, lambda a, b: a - b)

    def negate(self) -> "ValueSet":
        return ValueSet.of((-pi, phi) for pi, phi in self.entries)

    def scale(self, factor: int) -> "ValueSet":
        return ValueSet.of(
            (pi.scale(factor), phi) for pi, phi in self.entries
        )

    def compare(self, other: "ValueSet",
                builder: Callable[[LinTerm, LinTerm], Formula]) -> Formula:
        """Figure 2's comparison rule: a constraint describing when the
        comparison holds, as a disjunction over entry pairs."""
        parts = []
        for pi1, phi1 in self.entries:
            for pi2, phi2 in other.entries:
                parts.append(conj(builder(pi1, pi2), phi1, phi2))
        return disj(*parts)

    def guard(self, phi: Formula) -> "ValueSet":
        """Figure 2's third rule: conjoin ``phi`` onto every guard."""
        if phi.is_true:
            return self
        if phi.is_false:
            return ValueSet(())
        return ValueSet.of(
            (pi, conj(g, phi)) for pi, g in self.entries
        )

    def join(self, other: "ValueSet") -> "ValueSet":
        """The paper's exact join: same term merges guards with ``or``."""
        merged: dict[LinTerm, Formula] = {}
        order: list[LinTerm] = []
        for pi, phi in list(self.entries) + list(other.entries):
            if pi in merged:
                merged[pi] = disj(merged[pi], phi)
            else:
                merged[pi] = phi
                order.append(pi)
        return ValueSet.of((pi, merged[pi]) for pi in order)

    # ------------------------------------------------------------------
    def variables(self) -> frozenset[Var]:
        result: frozenset[Var] = frozenset()
        for pi, phi in self.entries:
            result |= pi.variables | phi.free_vars()
        return result

    def domain_constraint(self) -> Formula:
        """The disjunction of all guards (should be valid on loop-free
        code: some entry always applies)."""
        return disj(*(phi for _, phi in self.entries))

    def __str__(self) -> str:
        inner = ", ".join(f"({pi}, {phi})" for pi, phi in self.entries)
        return "{" + inner + "}"


def _merge_equal_terms(
    entries: list[tuple[LinTerm, Formula]]
) -> list[tuple[LinTerm, Formula]]:
    merged: dict[LinTerm, Formula] = {}
    order: list[LinTerm] = []
    for pi, phi in entries:
        if pi in merged:
            merged[pi] = disj(merged[pi], phi)
        else:
            merged[pi] = phi
            order.append(pi)
    return [(pi, merged[pi]) for pi in order]


class Store(dict):
    """A symbolic store: program variable name -> :class:`ValueSet`.

    Figures 2 and 5's store operations (conjunction with a constraint and
    the exact join) are methods here.
    """

    def guard(self, phi: Formula) -> "Store":
        return Store({name: vs.guard(phi) for name, vs in self.items()})

    def join(self, other: "Store") -> "Store":
        result = Store()
        for name in set(self) | set(other):
            left = self.get(name, ValueSet(()))
            right = other.get(name, ValueSet(()))
            result[name] = left.join(right)
        return result

    def copy(self) -> "Store":
        return Store(self)
