"""The static analysis of Section 3 (Figure 5's transformers).

Runs *after* loop postconditions have been annotated (by hand or by
:mod:`repro.abstract`) and produces the pair ``(I, phi)``:

* ``I``    — everything known about the abstraction/input variables
  (loop postconditions, havoc assumptions, non-linear product facts,
  unsignedness of inputs), and
* ``phi``  — the exact success condition of the final ``check``.

Lemma 1:  ``I |= phi``      implies the program is error-free.
Lemma 2:  ``I |= not phi``  implies the program is buggy.

The analysis is exact on loop-free code; its only information losses are
named by abstraction variables:

* loops havoc their modified variables to fresh ``alpha``s constrained by
  the ``@post`` annotation;
* ``havoc`` statements (library-call models) produce an ``alpha``
  constrained by their ``@assume``;
* non-linear products produce an ``alpha`` (with the square-nonnegativity
  fact when the operands coincide, as in the paper's ``n*n`` example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..lang.ast import (
    Assign,
    BinOp,
    Block,
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Havoc,
    If,
    Name,
    NotPred,
    Pred,
    Program,
    Skip,
    Stmt,
    While,
)
from ..lang.diagnostics import AnalysisError, Span
from ..logic.formulas import (
    FALSE,
    TRUE,
    Formula,
    conj,
    disj,
    eq,
    ge,
    gt,
    implies,
    le,
    lt,
    ne,
    neg,
)
from ..logic.terms import LinTerm, Var, VarKind, VarSupply
from .symbolic import Store, ValueSet

_CMP_BUILDERS: dict[str, Callable[[LinTerm, LinTerm], Formula]] = {
    "<": lt, ">": gt, "<=": le, ">=": ge, "==": eq, "!=": ne,
}


@dataclass(frozen=True)
class AbstractionInfo:
    """Provenance of an analysis variable, used to phrase user queries."""

    var: Var
    kind: str                      # 'input' | 'loop' | 'havoc' | 'mul'
    description: str               # human-readable phrase
    program_var: str | None = None
    label: int | None = None       # loop label for 'loop' abstractions
    span: Span | None = None


@dataclass
class AnalysisResult:
    """The judgment ``|- P : I, phi`` plus provenance metadata."""

    program: Program
    invariants: Formula            # I
    success: Formula               # phi
    store: Store
    input_vars: dict[str, Var]
    info: dict[Var, AbstractionInfo] = field(default_factory=dict)

    def describe(self, v: Var) -> str:
        meta = self.info.get(v)
        if meta is not None:
            return meta.description
        return f"the value of {v.name}"

    @property
    def all_vars(self) -> frozenset[Var]:
        return self.invariants.free_vars() | self.success.free_vars()


class SymbolicAnalyzer:
    """Implements the transformers of Figure 5.

    ``prune_infeasible`` drops value-set entries whose guard is
    unsatisfiable (checked with the SMT stack).  This is semantics
    preserving — an entry with an unsatisfiable guard describes no
    execution — and prevents the exponential accumulation of dead
    path combinations on branch-heavy (e.g. loop-unrolled) code.
    """

    def __init__(self, *, prune_infeasible: bool = True) -> None:
        self._facts: list[Formula] = []
        self._info: dict[Var, AbstractionInfo] = {}
        self._supply: VarSupply | None = None
        self._prune = prune_infeasible
        self._solver = None
        if prune_infeasible:
            from ..smt import SmtSolver  # analysis sits above smt

            self._solver = SmtSolver()

    def _prune_store(self, store: Store) -> Store:
        if self._solver is None:
            return store
        pruned = Store()
        for name, value_set in store.items():
            entries = tuple(
                (pi, guard)
                for pi, guard in value_set
                if guard.is_true or self._solver.is_sat(guard)
            )
            pruned[name] = ValueSet(entries)
        return pruned

    # ------------------------------------------------------------------
    def analyze(self, program: Program) -> AnalysisResult:
        """Produce the judgment ``|- P : I, phi``."""
        self._facts = []
        self._info = {}
        self._supply = VarSupply(prefix="$a")

        store = Store()
        input_vars: dict[str, Var] = {}
        for param in program.params:
            nu = Var(param.name, VarKind.INPUT, origin=("input", param.name))
            input_vars[param.name] = nu
            self._info[nu] = AbstractionInfo(
                nu, "input", f"the program input {param.name!r}",
                program_var=param.name, span=param.span,
            )
            store[param.name] = ValueSet.var(nu)
            if param.unsigned:
                self._facts.append(ge(nu, 0))
        self._supply.reserve(input_vars.values())
        for name in program.locals:
            store[name] = ValueSet.constant(0)

        store, facts = self._block(program.body, store)
        self._facts.extend(facts)
        success = self._pred(program.check.pred, store)
        invariants = conj(*self._facts)
        return AnalysisResult(
            program=program,
            invariants=invariants,
            success=success,
            store=store,
            input_vars=input_vars,
            info=dict(self._info),
        )

    # ------------------------------------------------------------------
    # statements: return (new store, new facts)
    # ------------------------------------------------------------------
    def _block(self, block: Block, store: Store
               ) -> tuple[Store, list[Formula]]:
        facts: list[Formula] = []
        for stmt in block.body:
            store, new = self._stmt(stmt, store)
            facts.extend(new)
        return store, facts

    def _stmt(self, stmt: Stmt, store: Store
              ) -> tuple[Store, list[Formula]]:
        if isinstance(stmt, Skip):
            return store, []
        if isinstance(stmt, Assign):
            facts: list[Formula] = []
            value = self._expr(stmt.value, store, facts)
            new_store = store.copy()
            new_store[stmt.target] = value
            return new_store, facts
        if isinstance(stmt, Havoc):
            return self._havoc(stmt, store)
        if isinstance(stmt, Block):
            return self._block(stmt, store)
        if isinstance(stmt, If):
            return self._if(stmt, store)
        if isinstance(stmt, While):
            return self._while(stmt, store)
        raise AnalysisError(
            f"statement not supported by the analysis: {stmt!r}", stmt.span
        )

    def _havoc(self, stmt: Havoc, store: Store
               ) -> tuple[Store, list[Formula]]:
        alpha = self._fresh_abstraction(
            f"{stmt.target}@havoc_l{stmt.span.line}",
            kind="havoc",
            description=(
                f"the value of {stmt.target!r} produced by the library "
                f"call at line {stmt.span.line}"
            ),
            program_var=stmt.target,
            span=stmt.span,
        )
        new_store = store.copy()
        new_store[stmt.target] = ValueSet.var(alpha)
        facts: list[Formula] = []
        if stmt.assume is not None:
            facts.append(self._pred(stmt.assume, new_store, facts))
        return new_store, facts

    def _if(self, stmt: If, store: Store) -> tuple[Store, list[Formula]]:
        facts: list[Formula] = []
        cond = self._pred(stmt.cond, store, facts)
        then_store, then_facts = self._block(stmt.then_branch, store.copy())
        else_store, else_facts = self._block(stmt.else_branch, store.copy())
        joined = self._prune_store(
            then_store.guard(cond).join(else_store.guard(neg(cond)))
        )
        facts.extend(implies(cond, f) for f in then_facts)
        facts.extend(implies(neg(cond), f) for f in else_facts)
        return joined, facts

    def _while(self, stmt: While, store: Store
               ) -> tuple[Store, list[Formula]]:
        new_store = store.copy()
        for name in sorted(stmt.modified_vars()):
            alpha = self._fresh_abstraction(
                f"{name}@loop{stmt.label}",
                kind="loop",
                description=(
                    f"the value of {name!r} immediately after the loop at "
                    f"line {stmt.span.line}"
                ),
                program_var=name,
                label=stmt.label,
                span=stmt.span,
            )
            new_store[name] = ValueSet.var(alpha)
        facts: list[Formula] = []
        if stmt.post is not None:
            facts.append(self._pred(stmt.post, new_store, facts))
        return new_store, facts

    # ------------------------------------------------------------------
    # expressions and predicates (Figures 3 and 4)
    # ------------------------------------------------------------------
    def _expr(self, expr: Expr, store: Store,
              facts: list[Formula]) -> ValueSet:
        if isinstance(expr, Const):
            return ValueSet.constant(expr.value)
        if isinstance(expr, Name):
            try:
                return store[expr.name]
            except KeyError:
                raise AnalysisError(
                    f"unbound variable {expr.name!r}", expr.span
                )
        if isinstance(expr, BinOp):
            left = self._expr(expr.left, store, facts)
            right = self._expr(expr.right, store, facts)
            if expr.op == "+":
                return left.add(right)
            if expr.op == "-":
                return left.sub(right)
            if expr.op == "*":
                return self._mul(expr, left, right, facts)
            raise AnalysisError(f"unknown operator {expr.op!r}", expr.span)
        raise TypeError(f"unexpected expression node {expr!r}")

    def _mul(self, expr: BinOp, left: ValueSet, right: ValueSet,
             facts: list[Formula]) -> ValueSet:
        """Multiplication: exact when linear, abstracted otherwise."""
        entries: list[tuple[LinTerm, Formula]] = []
        nonlinear_guards: list[Formula] = []
        for pi1, phi1 in left:
            for pi2, phi2 in right:
                guard = conj(phi1, phi2)
                if guard.is_false:
                    continue
                if pi1.is_constant:
                    entries.append((pi2.scale(pi1.const), guard))
                elif pi2.is_constant:
                    entries.append((pi1.scale(pi2.const), guard))
                else:
                    nonlinear_guards.append(guard)
        if nonlinear_guards:
            alpha = self._fresh_abstraction(
                f"mul_l{expr.span.line}",
                kind="mul",
                description=(
                    f"the value of the non-linear product "
                    f"{expr.left} * {expr.right} at line {expr.span.line}"
                ),
                span=expr.span,
            )
            entries.append((LinTerm.var(alpha), disj(*nonlinear_guards)))
            if expr.left == expr.right:
                # x*x >= 0 — the fact the paper derives for n*n
                facts.append(ge(alpha, 0))
        return ValueSet.of(entries)

    def _pred(self, pred: Pred, store: Store,
              facts: list[Formula] | None = None) -> Formula:
        if facts is None:
            facts = []
        if isinstance(pred, BoolConst):
            return TRUE if pred.value else FALSE
        if isinstance(pred, Cmp):
            left = self._expr(pred.left, store, facts)
            right = self._expr(pred.right, store, facts)
            return left.compare(right, _CMP_BUILDERS[pred.op])
        if isinstance(pred, BoolOp):
            parts = [self._pred(p, store, facts) for p in pred.parts]
            return conj(*parts) if pred.op == "&&" else disj(*parts)
        if isinstance(pred, NotPred):
            return neg(self._pred(pred.arg, store, facts))
        raise TypeError(f"unexpected predicate node {pred!r}")

    # ------------------------------------------------------------------
    def _fresh_abstraction(self, hint: str, *, kind: str, description: str,
                           program_var: str | None = None,
                           label: int | None = None,
                           span: Span | None = None) -> Var:
        assert self._supply is not None
        base = Var(hint, VarKind.ABSTRACTION)
        if base.name not in {v.name for v in self._info}:
            alpha = base
            self._supply.reserve([alpha])
        else:
            alpha = self._supply.fresh(hint, VarKind.ABSTRACTION)
        self._info[alpha] = AbstractionInfo(
            alpha, kind, description, program_var=program_var,
            label=label, span=span,
        )
        return alpha


def analyze_program(program: Program) -> AnalysisResult:
    """Run the Section 3 analysis on an (annotated) program."""
    return SymbolicAnalyzer().analyze(program)
