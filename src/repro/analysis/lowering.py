"""Lowering of surface predicates/expressions into logic formulas.

Used where a predicate must be interpreted over *plain variables* rather
than symbolic value sets: concretized havoc assumptions, loop
postconditions produced by the abstract interpreters, and test oracles.
(The symbolic analysis itself evaluates predicates over value sets — see
:mod:`repro.analysis.symbolic`.)
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..lang.ast import (
    BinOp,
    BoolConst,
    BoolOp,
    Cmp,
    Const,
    Expr,
    Name,
    NotPred,
    Pred,
)
from ..lang.diagnostics import AnalysisError
from ..logic.formulas import (
    FALSE,
    TRUE,
    Formula,
    conj,
    disj,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
    neg,
)
from ..logic.terms import LinTerm, Var

_CMP_BUILDERS = {"<": lt, ">": gt, "<=": le, ">=": ge, "==": eq, "!=": ne}


class NonLinearError(AnalysisError):
    """Raised when lowering meets a product of two non-constant operands."""


def lower_expr(expr: Expr, env: Mapping[str, LinTerm]) -> LinTerm:
    """Lower an expression to a linear term, mapping names via ``env``.

    Raises :class:`NonLinearError` on a non-linear product — callers that
    tolerate non-linearity (the symbolic analysis) catch it and abstract.
    """
    if isinstance(expr, Const):
        return LinTerm.constant(expr.value)
    if isinstance(expr, Name):
        try:
            return env[expr.name]
        except KeyError:
            raise AnalysisError(f"unbound variable {expr.name!r}", expr.span)
    if isinstance(expr, BinOp):
        left = lower_expr(expr.left, env)
        right = lower_expr(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if left.is_constant:
                return right.scale(left.const)
            if right.is_constant:
                return left.scale(right.const)
            raise NonLinearError(
                f"non-linear product {expr}", expr.span
            )
        raise AnalysisError(f"unknown operator {expr.op!r}", expr.span)
    raise TypeError(f"unexpected expression node {expr!r}")


def lower_pred(pred: Pred, env: Mapping[str, LinTerm]) -> Formula:
    """Lower a predicate to a formula over the terms ``env`` provides."""
    if isinstance(pred, BoolConst):
        return TRUE if pred.value else FALSE
    if isinstance(pred, Cmp):
        builder = _CMP_BUILDERS[pred.op]
        return builder(lower_expr(pred.left, env),
                       lower_expr(pred.right, env))
    if isinstance(pred, BoolOp):
        parts = [lower_pred(p, env) for p in pred.parts]
        return conj(*parts) if pred.op == "&&" else disj(*parts)
    if isinstance(pred, NotPred):
        return neg(lower_pred(pred.arg, env))
    raise TypeError(f"unexpected predicate node {pred!r}")


def lower_pred_concrete(pred: Pred, env: Mapping[str, int],
                        free: Iterable[str]) -> Formula:
    """Lower a predicate where all names are concrete except ``free``.

    The free names become logic variables named after themselves.
    """
    free = set(free)
    mapping: dict[str, LinTerm] = {
        name: LinTerm.var(Var(name)) for name in free
    }
    for name, value in env.items():
        if name not in free:
            mapping[name] = LinTerm.constant(value)
    return lower_pred(pred, mapping)
