"""The Section 3 symbolic analysis: value sets, stores, transformers."""

from .lowering import (
    NonLinearError,
    lower_expr,
    lower_pred,
    lower_pred_concrete,
)
from .symbolic import Store, ValueSet
from .transformer import (
    AbstractionInfo,
    AnalysisResult,
    SymbolicAnalyzer,
    analyze_program,
)

__all__ = [
    "NonLinearError",
    "lower_expr",
    "lower_pred",
    "lower_pred_concrete",
    "Store",
    "ValueSet",
    "AbstractionInfo",
    "AnalysisResult",
    "SymbolicAnalyzer",
    "analyze_program",
]
