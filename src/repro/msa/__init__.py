"""Minimum satisfying assignments (the CAV 2012 companion algorithm)."""

from .engine import CostMap, MsaResult, MsaSolver, find_msa

__all__ = ["CostMap", "MsaResult", "MsaSolver", "find_msa"]
